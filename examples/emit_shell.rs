//! Compile a pipeline to a *portable parallel shell script* — the
//! artifact the paper's system deploys: the generated pipeline "executes
//! directly in the same environment and with the same program and data
//! locations as the original sequential command" (§1).
//!
//! The emitted script uses the real `tr`/`sort`/`uniq` binaries plus awk
//! translations of the synthesized combiners; run it with `sh` next to an
//! `access.log` to see it work outside this process entirely.
//!
//! ```sh
//! cargo run --release --example emit_shell > parallel_topurls.sh
//! printf 'GET /a\nGET /b\nGET /a\n' > access.log   # toy input
//! sh parallel_topurls.sh
//! ```

use kq_cli::{emit_script, EmitOptions};
use kumquat::coreutils::ExecContext;
use kumquat::pipeline::parse::parse_script;
use kumquat::pipeline::plan::Planner;
use kumquat::synth::SynthesisConfig;
use std::collections::HashMap;

fn main() {
    // Top requested URLs from a web access log.
    let script_text = "cat access.log | cut -d ' ' -f 2 | sort | uniq -c | sort -rn";

    // Plan against a representative sample (synthesis probes the command
    // implementations; the real input file is only needed at run time).
    let sample: String = (0..200)
        .map(|i| format!("GET /page{}?x={} HTTP/1.1\n", i % 17, i))
        .collect();
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(script_text, &env).expect("script parses");
    let ctx = ExecContext::default();
    ctx.vfs.write("access.log", &sample);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, &sample);

    let emitted = emit_script(
        &script,
        &plan,
        &EmitOptions {
            workers: 8,
            honor_elimination: true,
        },
    );
    for (si, stage, combiner) in &emitted.degraded {
        eprintln!("note: statement {si} stage {stage}: {combiner} kept sequential");
    }
    eprintln!(
        "# emitted parallel script for: {script_text}\n# required input files: {:?}",
        emitted.required_files
    );
    print!("{}", emitted.script);
}
