//! The classic Unix spell checker (Bentley's Programming Pearls column,
//! the paper's `oneliners/spell.sh`): normalize a document to one
//! lower-case word per line, dedupe, and report words missing from the
//! dictionary — parallelized end to end by KumQuat.
//!
//! This is the paper's hardest pipeline shape: eight stages mixing
//! per-line maps (combiner `concat`, eliminated by Theorem 5), a rerun
//! stage (`tr -cs`), sorted merges, `uniq`'s stitch, and a two-input
//! `comm` against the dictionary.
//!
//! ```sh
//! cargo run --release --example spell_checker
//! ```

use kq_workloads::inputs::{dictionary, gutenberg_text};
use kumquat::Kumquat;

fn main() {
    let mut kq = Kumquat::new();

    // A synthetic "book" plus a dictionary that misses a few of its words.
    let book = format!(
        "{}\nThe qymirth of zorblat weather, a phlogiston qymirth!\n",
        gutenberg_text(128 * 1024, 7)
    );
    kq.write_file("/in/book.txt", book);
    kq.write_file("/in/dict.sorted", dictionary());
    kq.set_var("IN", "/in/book.txt");
    kq.set_var("DICT", "/in/dict.sorted");

    let script = "cat $IN | iconv -f utf-8 -t ascii//translit | col -bx | \
                  tr A-Z a-z | tr -d '[:punct:]' | tr -cs A-Za-z '\\n' | \
                  sort | uniq | comm -23 - $DICT";
    println!("spell pipeline:\n  {script}\n");

    // Plan first so we can show the per-stage decisions.
    let parsed = kq.parse(script).expect("script parses");
    let plan = kq.plan(&parsed).expect("planning succeeds");
    for (statement, planned) in parsed.statements.iter().zip(&plan.statements) {
        for (stage, ps) in statement.stages.iter().zip(&planned.stages) {
            use kumquat::pipeline::plan::StageMode;
            let mode = match &ps.mode {
                StageMode::Sequential => "sequential".to_owned(),
                StageMode::Parallel {
                    combiner,
                    eliminated: true,
                } => format!("parallel, {} (eliminated)", combiner.primary()),
                StageMode::Parallel {
                    combiner,
                    eliminated: false,
                } => format!("parallel, {}", combiner.primary()),
            };
            println!("  {:32} {mode}", stage.command.display());
        }
    }

    // Run with 8-way parallelism; output is verified against serial.
    let run = kq.parallelize_and_run(script, 8).expect("pipeline runs");
    println!("\nmisspelled words found:");
    for line in run.output.lines().take(10) {
        println!("  {line}");
    }
    let (k, n) = run.parallelized;
    println!(
        "\nparallelized {k}/{n} stages, {} combiner(s) eliminated",
        run.eliminated
    );
    assert!(run.output.lines().any(|w| w == "qymirth"));
    assert!(run.output.lines().any(|w| w == "zorblat"));
}
