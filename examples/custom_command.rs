//! The paper's headline extension claim: KumQuat "immediately work[s]
//! with new commands (or new combinations of command flags) that require
//! new combiners without the need to manually develop new combiners" (§5).
//!
//! This example defines a brand-new stream command nobody has written a
//! combiner for — a CSV "running total" annotator — wraps it as a black
//! box, and lets the synthesizer discover how to parallelize it.
//!
//! ```sh
//! cargo run --release --example custom_command
//! ```

use kumquat::coreutils::{Bytes, CmdError, Command, ExecContext, UnixCommand};
use kumquat::dsl::eval::CommandEnv;
use kumquat::synth::{synthesize, SynthesisConfig};

/// `csvtotal` — a made-up domain command: each input line is `label,value`;
/// the output annotates each line with the running total of `value`.
///
/// The command is implemented as an ordinary sequential stream function —
/// no thought given to parallelism. Its divide-and-conquer structure
/// (later totals are earlier totals shifted by the boundary sum) is
/// exactly what the DSL's `offset` operator captures.
struct CsvTotal;

impl UnixCommand for CsvTotal {
    fn display(&self) -> String {
        "csvtotal".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        // `input` is a refcounted slice of the pipeline's shared buffer;
        // viewing it as text borrows in place.
        let input = input
            .to_str()
            .map_err(|_| CmdError::new("csvtotal", "input is not valid UTF-8"))?;
        let mut total: i64 = 0;
        let mut out = String::with_capacity(input.len());
        for line in input.lines() {
            let value: i64 = line
                .rsplit(',')
                .next()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            total += value;
            out.push_str(&format!("{total},{line}\n"));
        }
        Ok(Bytes::from(out))
    }
}

fn main() {
    // Wrap the new command as a black box.
    let command = Command::custom(vec!["csvtotal".into()], Box::new(CsvTotal));
    let ctx = ExecContext::default();

    // Synthesize: KumQuat probes the command with generated inputs and
    // searches its combiner DSL.
    let report = synthesize(&command, &ctx, &SynthesisConfig::default());
    println!("command:      {}", report.command);
    println!(
        "search space: {} candidates, {} observations, {:.0?}",
        report.space.total(),
        report.observations,
        report.elapsed
    );
    match report.combiner() {
        Some(c) => {
            println!("combiner:     {}", c.primary());
            for p in &c.plausible {
                println!("  plausible:  {p}");
            }

            // Use it: split a fresh input, run the command per piece in
            // parallel fashion, combine, and verify against serial.
            let input: Bytes = (0..12)
                .map(|i| format!("item{},{}\n", i, (i * 7) % 20))
                .collect::<String>()
                .into();
            let serial = command.run(input.clone(), &ctx).unwrap();
            // Splitting is zero-copy: each piece is a refcounted slice.
            let pieces: Vec<Bytes> = input
                .split_stream(4)
                .into_iter()
                .map(|p| command.run(p, &ctx).unwrap())
                .collect();
            let env = CommandEnv {
                command: &command,
                ctx: &ctx,
            };
            let combined = c.combine_all(&pieces, &env).unwrap();
            assert_eq!(combined, serial, "combiner must reproduce serial output");
            println!("\n4-way parallel output verified against serial:");
            for line in combined.as_str().lines().take(6) {
                println!("  {line}");
            }
        }
        None => println!("combiner:     NONE — not divide-and-conquer expressible"),
    }
}
