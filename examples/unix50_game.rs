//! A tour of the unix50 suite: parallelize a selection of the Bell Labs
//! Unix 50 game pipelines and verify every parallel output against the
//! serial baseline.
//!
//! ```sh
//! cargo run --release --example unix50_game
//! ```

use kq_coreutils::ExecContext;
use kq_pipeline::exec::{run_parallel, run_serial};
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale, Suite};

fn main() {
    let picks = [
        "4.sh", "7.sh", "10.sh", "12.sh", "17.sh", "21.sh", "34.sh", "36.sh",
    ];
    let scale = Scale {
        input_bytes: 128 * 1024,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    for script in corpus()
        .iter()
        .filter(|s| s.suite == Suite::Unix50 && picks.contains(&s.id))
    {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 2026);
        let parsed = kq_pipeline::parse::parse_script(script.text, &env).expect("parses");
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(32 * 1024)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);

        let serial = run_serial(&parsed, &ctx).expect("serial");
        let par = run_parallel(&parsed, &plan, &ctx, 6, true).expect("parallel");
        assert_eq!(serial.output, par.output, "{} diverged", script.id);

        let (k, n) = plan.parallelized_counts();
        let first = serial.output.as_str().lines().next().unwrap_or("<empty>");
        println!(
            "{:6} {:38} {k}/{n} parallel, answer: {first:?}",
            script.id, script.name
        );
    }
    println!("\nall parallel outputs matched the serial baselines");
}
