//! The paper's §2 running example in full: the word-frequency pipeline,
//! its per-stage combiners, the Theorem 5 optimization, and the measured
//! unoptimized-vs-optimized virtual speedup curve (the Figure 5 story).
//!
//! ```sh
//! cargo run --release --example word_frequency
//! ```

use kq_pipeline::exec::{run_parallel_measured, run_serial};
use kq_pipeline::plan::{Planner, StageMode};
use kq_pipeline::sim::{optimized_time, pipelined_time, staged_time, SimParams};
use kq_synth::SynthesisConfig;
use kq_workloads::inputs::gutenberg_text;
use kumquat::coreutils::ExecContext;
use std::collections::HashMap;

fn main() {
    let ctx = ExecContext::default();
    let input = gutenberg_text(4 * 1024 * 1024, 7);
    ctx.vfs.write("/in/book.txt", input.clone());
    let env: HashMap<String, String> = [("IN".to_owned(), "/in/book.txt".to_owned())].into();

    let text = r"cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn";
    let script = kq_pipeline::parse::parse_script(text, &env).expect("parses");

    let mut planner = Planner::new(SynthesisConfig::default());
    let cut = input[..input.len().min(64 * 1024)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(input.len());
    let plan = planner.plan(&script, &ctx, &input[..cut]);

    println!("stage plan for wf.sh:");
    for (stage, planned) in script.statements[0]
        .stages
        .iter()
        .zip(&plan.statements[0].stages)
    {
        let mode = match &planned.mode {
            StageMode::Sequential => "sequential".to_owned(),
            StageMode::Parallel {
                combiner,
                eliminated,
            } => {
                let extra = if *eliminated { ", eliminated" } else { "" };
                format!("parallel (combiner {}{extra})", combiner.primary())
            }
        };
        println!("  {:22} {mode}", stage.command.display());
    }

    // Serial baseline and the pipelined "original" estimate.
    let serial = run_serial(&script, &ctx).expect("serial run");
    let params1 = SimParams::with_workers(1);
    let u1 = staged_time(&serial.timings, &params1);
    let torig = pipelined_time(&serial.timings, &params1);
    println!("\nvirtual times (measured pieces on simulated workers):");
    println!(
        "  T_orig (pipelined shell): {:>9.1?}   u_1 (staged serial): {:>9.1?}",
        torig.wall, u1.wall
    );

    println!("\n  w   unoptimized u_w    speedup   optimized T_w    speedup");
    for w in [1usize, 2, 4, 8, 16] {
        let params = SimParams::with_workers(w);
        let unopt = run_parallel_measured(&script, &plan, &ctx, w, false).expect("unopt run");
        let opt = run_parallel_measured(&script, &plan, &ctx, w, true).expect("opt run");
        assert_eq!(unopt.output, serial.output, "unoptimized output diverged");
        assert_eq!(opt.output, serial.output, "optimized output diverged");
        let uw = staged_time(&unopt.timings, &params);
        let tw = optimized_time(&opt.timings, &params);
        println!(
            "  {w:>2}   {:>12.1?}   {:>6.1}x   {:>12.1?}   {:>6.1}x",
            uw.wall,
            u1.wall.as_secs_f64() / uw.wall.as_secs_f64(),
            tw.wall,
            u1.wall.as_secs_f64() / tw.wall.as_secs_f64(),
        );
    }
    println!("\n(the paper reports 10.7x unoptimized / 14.4x optimized at w = 16 on 3 GB)");
}
