//! Quickstart: synthesize combiners for the paper's Figure 1 pipeline and
//! run it with 8-way data parallelism.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kq_workloads::inputs::gutenberg_text;
use kumquat::Kumquat;

fn main() {
    let mut kq = Kumquat::new();

    // The Figure 1 word-frequency pipeline over a synthetic book.
    kq.write_file("/in/book.txt", gutenberg_text(256 * 1024, 42));
    kq.set_var("IN", "/in/book.txt");
    let script = r"cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn";

    println!("pipeline: {script}\n");

    // Synthesize a combiner for each stage, as KumQuat does internally.
    for stage in [
        "tr -cs A-Za-z '\\n'",
        "tr A-Z a-z",
        "sort",
        "uniq -c",
        "sort -rn",
    ] {
        let report = kq.synthesize_command(stage).expect("command parses");
        let verdict = match report.combiner() {
            Some(c) => format!("combiner {}", c.primary()),
            None => "no combiner".to_owned(),
        };
        println!(
            "  {:22} space {:>6}  {:>3} observations  {verdict}",
            report.command,
            report.space.total(),
            report.observations,
        );
    }

    // Parallelize the whole pipeline; the output is verified against the
    // serial run internally.
    let run = kq.parallelize_and_run(script, 8).expect("pipeline runs");
    let (k, n) = run.parallelized;
    println!(
        "\nparallelized {k}/{n} stages, {} combiner(s) eliminated",
        run.eliminated
    );
    println!("top five words:");
    for line in run.output.lines().take(5) {
        println!("  {line}");
    }
}
