//! Combiner-synthesis walkthrough: watch Algorithm 1 work over a spread of
//! commands, printing the Table 10-style rows — search space breakdown,
//! synthesis time, and the surviving plausible combiners — plus the
//! Table 9-style rows for commands where no combiner exists.
//!
//! ```sh
//! cargo run --release --example synthesize_combiner
//! ```

use kumquat::Kumquat;

fn main() {
    let mut kq = Kumquat::new();
    let commands = [
        // Counting commands: (back '\n' add).
        "wc -l",
        "grep -c light",
        // Mapping commands: concat.
        "tr A-Z a-z",
        "cut -d ',' -f 1",
        "awk 'length >= 16'",
        // Sorting commands: merge with matching flags.
        "sort",
        "sort -rn",
        // Selection commands: stitch / stitch2.
        "uniq",
        "uniq -c",
        // Boundary-sensitive squeezing: rerun only.
        "tr -cs A-Za-z '\\n'",
        "sed 100q",
        // Table 9: no combiner exists.
        "sed 1d",
        "tail +2",
    ];

    println!(
        "{:<24} {:>26} {:>9} {:>6}  plausible combiners",
        "command", "search space", "time", "obs"
    );
    for line in commands {
        let report = kq.synthesize_command(line).expect("command parses");
        let plausible = report.plausible();
        let shown: Vec<String> = plausible.iter().take(3).map(|c| c.to_string()).collect();
        let suffix = if plausible.len() > 3 {
            format!(" … ({} total)", plausible.len())
        } else {
            String::new()
        };
        let verdict = if plausible.is_empty() {
            "— no combiner exists".to_owned()
        } else {
            format!("{}{suffix}", shown.join(", "))
        };
        println!(
            "{:<24} {:>26} {:>8.0?} {:>6}  {verdict}",
            report.command,
            report.space.to_string(),
            report.elapsed,
            report.observations,
        );
    }
}
