//! Corpus-wide divergence probe at larger scale (kept as a maintenance
//! tool; the CI-sized equivalent lives in tests/corpus_parallel.rs).
use kq_coreutils::ExecContext;
use kq_pipeline::exec::{run_parallel_measured, run_serial};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale};

fn main() {
    let scale = Scale {
        input_bytes: 1024 * 1024,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    let mut bad = 0;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xBE7C);
        let parsed = parse_script(script.text, &env).unwrap();
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(48_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);
        let serial = run_serial(&parsed, &ctx).unwrap();
        for w in [4usize, 16] {
            for honor in [false, true] {
                let par = run_parallel_measured(&parsed, &plan, &ctx, w, honor).unwrap();
                if par.output != serial.output {
                    println!(
                        "DIVERGE {}/{} w={w} honor={honor}",
                        script.suite.dir(),
                        script.id
                    );
                    bad += 1;
                }
            }
        }
        eprint!(".");
    }
    eprintln!();
    println!("divergences: {bad}");
}
