//! The analytics-mts suite: the paper's motivating real-world workload —
//! COVID-era bus telemetry analytics — run end to end on synthetic
//! telemetry with verified 8-way parallel execution.
//!
//! ```sh
//! cargo run --release --example mass_transit
//! ```

use kq_coreutils::ExecContext;
use kq_pipeline::exec::{run_parallel_measured, run_serial};
use kq_pipeline::plan::Planner;
use kq_pipeline::sim::{optimized_time, staged_time, SimParams};
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale, Suite};

fn main() {
    let scale = Scale {
        input_bytes: 512 * 1024,
    };
    for script in corpus().iter().filter(|s| s.suite == Suite::AnalyticsMts) {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 99);
        let parsed = kq_pipeline::parse::parse_script(script.text, &env).expect("parses");

        let mut planner = Planner::new(SynthesisConfig::default());
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(64 * 1024)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);

        let serial = run_serial(&parsed, &ctx).expect("serial");
        let opt = run_parallel_measured(&parsed, &plan, &ctx, 8, true).expect("parallel");
        assert_eq!(serial.output, opt.output, "{} diverged", script.id);

        let u1 = staged_time(&serial.timings, &SimParams::with_workers(1));
        let t8 = optimized_time(&opt.timings, &SimParams::with_workers(8));
        let (k, n) = plan.parallelized_counts();
        println!(
            "{:5} ({:24}) parallelized {k}/{n}, eliminated {}, u1 {:>9.1?} -> T8 {:>9.1?} ({:.1}x)",
            script.id,
            script.name,
            plan.eliminated_count(),
            u1.wall,
            t8.wall,
            u1.wall.as_secs_f64() / t8.wall.as_secs_f64(),
        );
        println!(
            "   sample output: {:?}",
            serial.output.as_str().lines().next().unwrap_or("")
        );
    }
}
