//! Out-of-core ingest probe: maps a (large) file with `kq-io`, validates
//! it as text, and splits it — printing the process's resident set after
//! each step so the demand-paging behavior is visible.
//!
//! ```text
//! cargo run --release --example out_of_core -- /path/to/big.txt
//! ```
//!
//! Expected shape on a multi-hundred-MiB file: RSS stays flat at map and
//! split time (no page is touched), and bounded — far below the file size
//! — through validation (the windowed scan releases pages behind itself).

use kq_io::{IngestOptions, MmapMode};

fn rss_kib() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmRSS"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let path = std::env::args().nth(1).expect("usage: out_of_core <file>");
    let base = rss_kib();
    println!("baseline               rss = {base} KiB");

    let mapped = kq_io::read_path(&path, &IngestOptions::with_mode(MmapMode::On)).unwrap();
    println!(
        "mapped {:>12} B   rss = {} KiB (+{} KiB)  mmap-backed: {}",
        mapped.len(),
        rss_kib(),
        rss_kib().saturating_sub(base),
        mapped.is_mmap_backed()
    );

    let pieces = mapped.split_stream(8);
    println!(
        "split into {} pieces    rss = {} KiB (+{} KiB)",
        pieces.len(),
        rss_kib(),
        rss_kib().saturating_sub(base)
    );
    drop(pieces);

    let text = mapped.into_text().expect("file must be UTF-8");
    println!(
        "validated as text       rss = {} KiB (+{} KiB)",
        rss_kib(),
        rss_kib().saturating_sub(base)
    );
    drop(text);
    println!("dropped (unmapped)      rss = {} KiB", rss_kib());
}
