//! Integration tests for the tracing & metrics plane: the `--trace-out`
//! JSONL/Chrome exports, the span-identity determinism contract, graph
//! coverage, and the `trace report` critical path.
//!
//! These tests live in their own binary on purpose: the kq-trace recorder
//! is process-global (one `TraceSession` at a time), and a dedicated
//! binary keeps its serialization away from the rest of the suite.

use kq_cli::run_cli;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn call(words: &[&str]) -> kq_cli::CliOutput {
    let v: Vec<String> = words.iter().map(|s| (*s).to_owned()).collect();
    run_cli(&v).expect("cli invocation failed")
}

/// A fresh scratch dir with a word-frequency input and a two-statement
/// script (the second statement reads the first's redirect target, so the
/// dataflow graph has a cross-statement dependency).
struct Scratch {
    dir: PathBuf,
    script: String,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("kq-trace-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let words = ["apple", "dog", "cat", "bird", "fox", "kiwi"];
        let mut text = String::new();
        for i in 0..4000 {
            text.push_str(words[i % words.len()]);
            text.push(' ');
            text.push_str(words[(i * 7 + 3) % words.len()]);
            text.push('\n');
        }
        std::fs::write(&input, text).unwrap();
        let script = format!(
            "cat {inp} | cut -d ' ' -f 1 | sort > {mid}\ncat {mid} | uniq -c | sort -rn",
            inp = input.display(),
            mid = dir.join("mid.txt").display()
        );
        Scratch { dir, script }
    }

    fn trace_path(&self, name: &str) -> String {
        self.dir.join(name).display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn run_traced(s: &Scratch, trace: &str, workers: &str) -> Vec<kq_trace::Record> {
    let out = call(&[
        "run",
        &s.script,
        "--exec",
        "dataflow",
        "--workers",
        workers,
        "--chunk-kb",
        "4",
        "--trace-out",
        trace,
    ]);
    assert!(
        out.notes.iter().any(|n| n.starts_with("trace:")),
        "missing trace note: {:?}",
        out.notes
    );
    let text = std::fs::read_to_string(trace).unwrap();
    kq_trace::parse_jsonl(&text).expect("trace JSONL must parse")
}

#[test]
fn jsonl_schema_round_trips_every_record() {
    let s = Scratch::new("schema");
    let trace = s.trace_path("t.json");
    let records = run_traced(&s, &trace, "2");
    assert!(records.len() > 20, "suspiciously small trace");
    // Field-for-field: re-serializing each parsed record and parsing it
    // again must be the identity.
    for r in &records {
        let again = kq_trace::Record::from_json(&r.to_json()).unwrap();
        assert_eq!(*r, again, "round-trip changed a record");
    }
    // Required fields: every record names its kind, category, and name;
    // spans have an interval.
    for r in &records {
        assert!(!r.cat.is_empty() && !r.name.is_empty());
        if r.kind == kq_trace::Kind::Span {
            assert!(r.t1 >= r.t0, "span ends before it starts");
        }
    }
}

/// The determinism contract: span identities (everything except
/// timestamps, thread ids, and measured values) form the same multiset
/// across repeated runs and across worker counts. The script has no
/// prefix-bounded stage, so no early-exit cancellation perturbs the
/// chunk count.
#[test]
fn span_identities_are_stable_across_runs_and_workers() {
    let s = Scratch::new("determinism");

    let identity_multiset = |records: &[kq_trace::Record]| {
        let mut m: BTreeMap<String, usize> = BTreeMap::new();
        for r in records {
            // Skip ingest/release + synth records: cache state and page
            // release cadence are process-history dependent, not part of
            // the per-run contract.
            if r.cat == "synth" || r.cat == "cache" || r.cat == "ingest" || r.cat == "chunk" {
                continue;
            }
            let key = format!(
                "{}/{}/{}/{:?}/{:?}/{:?}/{}",
                r.kind.as_str(),
                r.cat,
                r.name,
                r.si,
                r.ni,
                r.seq,
                r.label
            );
            *m.entry(key).or_default() += 1;
        }
        m
    };

    let a = identity_multiset(&run_traced(&s, &s.trace_path("a.json"), "2"));
    let b = identity_multiset(&run_traced(&s, &s.trace_path("b.json"), "2"));
    assert_eq!(a, b, "same config, different span identities");

    let c = identity_multiset(&run_traced(&s, &s.trace_path("c.json"), "4"));
    assert_eq!(a, c, "worker count changed span identities");
}

/// Every node of every statement's dataflow graph appears in the trace:
/// as a graph meta, and with at least one task-level span attributed to
/// it.
#[test]
fn dataflow_run_emits_spans_for_every_graph_node() {
    let s = Scratch::new("coverage");
    let trace = s.trace_path("t.json");
    let records = run_traced(&s, &trace, "2");

    let mut graph_nodes = Vec::new();
    for r in &records {
        if r.kind == kq_trace::Kind::Meta && r.cat == "graph" && r.name != "dep" {
            graph_nodes.push((r.si.unwrap(), r.ni.unwrap()));
        }
    }
    assert!(
        graph_nodes.len() >= 6,
        "two 3-node statements expected, got {graph_nodes:?}"
    );
    for (si, ni) in graph_nodes {
        let has_span = records.iter().any(|r| {
            r.kind == kq_trace::Kind::Span
                && r.cat == "dataflow"
                && r.si == Some(si)
                && r.ni == Some(ni)
        });
        assert!(has_span, "graph node s{si} n{ni} has no task span");
    }
}

/// `trace report` finds a critical path whose windows tile the trace:
/// the path total equals the trace extent (well within the 10% criterion
/// against the run's wall clock, which the extent measures).
#[test]
fn critical_path_total_matches_trace_extent() {
    let s = Scratch::new("critpath");
    let trace = s.trace_path("t.json");
    let records = run_traced(&s, &trace, "2");

    let analysis = kq_trace::report::analyze(&records);
    assert!(!analysis.path.is_empty(), "no critical path found");
    assert!(analysis.extent_ns > 0);
    let ratio = analysis.path_total_ns as f64 / analysis.extent_ns as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "critical path total {} vs extent {} (ratio {ratio})",
        analysis.path_total_ns,
        analysis.extent_ns
    );

    // The subcommand renders the same analysis.
    let out = call(&["trace", "report", &trace, "--top", "3"]);
    assert!(out.stdout.contains("critical path:"), "{}", out.stdout);
    assert!(out.stdout.contains("top busy nodes:"), "{}", out.stdout);
}

/// The Chrome export is well-formed JSON with one metadata-named track
/// per dataflow graph node and complete-event spans on worker tracks.
#[test]
fn chrome_trace_has_a_track_per_dataflow_node() {
    let s = Scratch::new("chrome");
    let trace = s.trace_path("t.json");
    let records = run_traced(&s, &trace, "2");
    let chrome_path = s.trace_path("t.chrome.json");
    let chrome = std::fs::read_to_string(&chrome_path).expect("chrome companion file");

    // Count graph nodes in the JSONL; each must have a named track (a
    // thread_name metadata event) in the Chrome file.
    let nodes: Vec<(u64, u64, String)> = records
        .iter()
        .filter(|r| r.kind == kq_trace::Kind::Meta && r.cat == "graph" && r.name != "dep")
        .map(|r| (r.si.unwrap(), r.ni.unwrap(), r.name.clone()))
        .collect();
    assert!(chrome.contains("thread_name"), "no track metadata");
    for (si, ni, kind) in &nodes {
        let track = format!("s{} n{ni} {kind}", si + 1);
        assert!(
            chrome.contains(&track),
            "chrome trace missing node track {track:?}"
        );
    }
    assert!(chrome.contains("\"ph\":\"X\""), "no complete events");
}

/// `--metrics` prints the aggregated block through the shared note
/// channel, and a run without tracing flags prints none of it.
#[test]
fn metrics_flag_controls_the_metrics_block() {
    let s = Scratch::new("metrics");
    let with = call(&[
        "run",
        &s.script,
        "--exec",
        "dataflow",
        "--workers",
        "2",
        "--metrics",
    ]);
    assert!(
        with.notes
            .iter()
            .any(|n| n.starts_with("metrics: span dataflow/")),
        "missing dataflow span metrics: {:?}",
        with.notes
    );
    assert!(
        with.notes
            .iter()
            .any(|n| n.starts_with("metrics: counter dataflow/")),
        "missing dataflow counters: {:?}",
        with.notes
    );
    let without = call(&["run", &s.script, "--exec", "dataflow", "--workers", "2"]);
    assert!(
        !without.notes.iter().any(|n| n.starts_with("metrics:")),
        "metrics block leaked without --metrics: {:?}",
        without.notes
    );
}
