//! Cross-crate property tests: total-function behaviour of the DSL
//! evaluator, strategy-independence of k-way combining, shell-quoting
//! round trips, CLI-parser robustness, and heap-versus-mmap backing
//! equivalence for the `Bytes` data plane.

use kq_coreutils::split_words;
use kq_dsl::ast::{Candidate, Combiner, RecOp, StructOp};
use kq_dsl::eval::{eval, NoRunEnv};
use kq_dsl::{combine_all_with, CombineStrategy, Delim};
use proptest::prelude::*;

/// Strategy producing arbitrary small RecOp trees.
fn rec_op(depth: u32) -> BoxedStrategy<RecOp> {
    let leaf = prop_oneof![
        Just(RecOp::Add),
        Just(RecOp::Concat),
        Just(RecOp::First),
        Just(RecOp::Second),
    ];
    leaf.prop_recursive(depth, 8, 1, |inner| {
        (any_delim(), inner).prop_flat_map(|(d, b)| {
            prop_oneof![
                Just(RecOp::Front(d, Box::new(b.clone()))),
                Just(RecOp::Back(d, Box::new(b.clone()))),
                Just(RecOp::Fuse(d, Box::new(b))),
            ]
        })
    })
    .boxed()
}

fn any_delim() -> BoxedStrategy<Delim> {
    prop_oneof![
        Just(Delim::Newline),
        Just(Delim::Tab),
        Just(Delim::Space),
        Just(Delim::Comma),
    ]
    .boxed()
}

/// Strategy producing arbitrary combiners (RecOp and StructOp; RunOp needs
/// a command environment and is exercised elsewhere).
fn any_combiner() -> BoxedStrategy<Combiner> {
    prop_oneof![
        rec_op(2).prop_map(Combiner::Rec),
        rec_op(1).prop_map(|b| Combiner::Struct(StructOp::Stitch(b))),
        (any_delim(), rec_op(1), rec_op(1))
            .prop_map(|(d, b1, b2)| Combiner::Struct(StructOp::Stitch2(d, b1, b2))),
        (any_delim(), rec_op(1)).prop_map(|(d, b)| Combiner::Struct(StructOp::Offset(d, b))),
    ]
    .boxed()
}

/// True when the combiner applies `fuse` anywhere in its tree (see
/// `eval_succeeds_on_domain_members` for why fuse is special).
fn contains_fuse(op: &Combiner) -> bool {
    fn rec_has_fuse(b: &RecOp) -> bool {
        match b {
            RecOp::Fuse(..) => true,
            RecOp::Front(_, inner) | RecOp::Back(_, inner) => rec_has_fuse(inner.as_ref()),
            _ => false,
        }
    }
    match op {
        Combiner::Rec(b) => rec_has_fuse(b),
        Combiner::Struct(StructOp::Stitch(b)) => rec_has_fuse(b),
        Combiner::Struct(StructOp::Stitch2(_, b1, b2)) => rec_has_fuse(b1) || rec_has_fuse(b2),
        Combiner::Struct(StructOp::Offset(_, b)) => rec_has_fuse(b),
        Combiner::Run(_) => false,
    }
}

/// Writes `content` to a fresh temp file and ingests it as a mapped
/// `Bytes` (forced `MmapMode::On`; empty inputs legitimately fall back to
/// heap). The file is unlinked immediately — the mapping keeps the inode
/// alive, which doubles as a lifecycle check.
#[cfg(unix)]
fn mmap_bytes(content: &str, tag: &str) -> kq_stream::Bytes {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "kq-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, content).unwrap();
    let bytes = kq_io::read_path(&path, &kq_io::IngestOptions::with_mode(kq_io::MmapMode::On))
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    std::fs::remove_file(&path).ok();
    bytes
}

/// `compact()` must release an oversized backing the same way whether the
/// backing is a heap buffer or a mapped file: a tiny slice of a big mapped
/// input copies onto the heap (dropping the last map reference unmaps),
/// while a slice covering most of the map stays shared.
#[cfg(unix)]
#[test]
fn compact_releases_mapped_backings_like_heap_ones() {
    let content = "line of corpus text\n".repeat(1024); // 20 KiB
    let mapped = mmap_bytes(&content, "compact");
    let heap = kq_stream::Bytes::from(content.as_str());
    assert!(mapped.is_mmap_backed());

    let tiny_m = mapped.slice(0..20).compact();
    let tiny_h = heap.slice(0..20).compact();
    assert_eq!(tiny_m, tiny_h);
    assert!(
        !tiny_m.is_mmap_backed(),
        "a compacted small slice must not pin the map"
    );
    assert!(!tiny_m.shares_buffer(&mapped));

    let most_m = mapped.slice(0..content.len() - 20).compact();
    assert!(
        most_m.shares_buffer(&mapped),
        "a slice covering most of the map stays shared"
    );
    assert!(most_m.is_mmap_backed());

    // into_string out of a *shared* mapped view copies; out of the last
    // reference it copies then unmaps — both equal the heap result.
    assert_eq!(mapped.clone().into_string(), content);
    drop(most_m);
    drop(tiny_m);
    assert_eq!(mapped.into_string(), content);
}

/// The fuse caveat, pinned concretely: both arguments lie in
/// `L(fuse ' ' concat)` (Definition B.1 is per-string), yet evaluation
/// fails because their space counts differ — the equal-count side
/// condition the paper derives only implicitly (Lemma B.3).
#[test]
fn fuse_domain_membership_does_not_imply_evaluation_success() {
    let op = Combiner::Rec(RecOp::Fuse(Delim::Space, Box::new(RecOp::Concat)));
    let y1 = "a b\n"; // one space: two fuse segments
    let y2 = "x y z\n"; // two spaces: three fuse segments
    assert!(kq_dsl::domain::in_domain(&op, y1));
    assert!(kq_dsl::domain::in_domain(&op, y2));
    assert!(eval(&op, y1, y2, &NoRunEnv).is_err());
    // With matching counts the evaluation succeeds as B.1 promises:
    // piecewise concat of ["a", "b\n"] and ["x", "y\n"], re-joined by ' '.
    assert_eq!(eval(&op, "a b\n", "x y\n", &NoRunEnv).unwrap(), "ax b\ny\n");
}

proptest! {
    /// The evaluator is a total function modulo `Result`: arbitrary
    /// combiners applied to arbitrary strings either produce a value or a
    /// domain error — never a panic, never an infinite loop.
    #[test]
    fn eval_never_panics(
        op in any_combiner(),
        y1 in ".{0,40}",
        y2 in ".{0,40}",
    ) {
        let _ = eval(&op, &y1, &y2, &NoRunEnv);
    }

    /// Evaluation succeeds when both arguments are in the combiner's
    /// legal domain `L(g)` (Definition B.1) — with the fuse caveat the
    /// paper leaves implicit: `L(fuse d b)` is a per-string predicate, but
    /// the Figure 6 fuse rules additionally require the two arguments to
    /// carry the *same* delimiter count (the paper derives that equality
    /// from evaluation success in Lemma B.3, so Definition B.1's "for any
    /// y1, y2 ∈ L(g), the evaluation succeeds" is loose for fuse). This
    /// property pins the honest statement; EXPERIMENTS.md records the
    /// nuance.
    #[test]
    fn eval_succeeds_on_domain_members(
        op in any_combiner(),
        y1 in "[a-z0-9 \t\n,]{1,30}\n",
        y2 in "[a-z0-9 \t\n,]{1,30}\n",
    ) {
        let in_domain = kq_dsl::domain::in_domain(&op, &y1)
            && kq_dsl::domain::in_domain(&op, &y2);
        let result = eval(&op, &y1, &y2, &NoRunEnv);
        if in_domain && !contains_fuse(&op) {
            prop_assert!(
                result.is_ok(),
                "op {op:?} rejected domain members {y1:?} / {y2:?}: {result:?}"
            );
        }
    }

    /// Strategy independence: for associative-on-adjacent-pieces
    /// combiners (everything the corpus synthesizes), the three k-way
    /// strategies agree byte for byte on piece lists produced by
    /// splitting a stream.
    #[test]
    fn combine_strategies_agree_on_split_pieces(
        lines in proptest::collection::vec("[a-c]{1,3}", 1..24),
        k in 2usize..7,
    ) {
        let stream: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let pieces: Vec<kq_stream::Bytes> = kq_stream::Bytes::from(stream.as_str()).split_stream(k);
        for cand in [
            Candidate::rec(RecOp::Concat),
            Candidate::structural(StructOp::Stitch(RecOp::First)),
        ] {
            let flat = combine_all_with(CombineStrategy::Flat, &cand, &pieces, &NoRunEnv);
            let tree = combine_all_with(CombineStrategy::TreeFold, &cand, &pieces, &NoRunEnv);
            let fold = combine_all_with(CombineStrategy::FoldLeft, &cand, &pieces, &NoRunEnv);
            prop_assert_eq!(&flat, &tree, "{} tree", &cand);
            prop_assert_eq!(&flat, &fold, "{} fold", &cand);
        }
    }

    /// Shell quoting round-trips through the shell-words splitter for any
    /// printable word: `split_words(quote_sh(w)) == [w]`.
    #[test]
    fn quote_sh_round_trips(word in "[ -~]{1,24}") {
        let quoted = kq_cli::quote_sh(&word);
        let words = split_words(&quoted).expect("quoted word must re-split");
        prop_assert_eq!(words, vec![word]);
    }

    /// The CLI argument parser never panics, whatever the argv.
    #[test]
    fn cli_args_never_panic(argv in proptest::collection::vec("[ -~]{0,12}", 0..8)) {
        let _ = kq_cli::args::ParsedArgs::parse(&argv);
    }

    /// Chunk splitting partitions the input exactly and cuts only at line
    /// boundaries, for both the borrowed `&str` splitter and the zero-copy
    /// `Bytes` splitter — and the two agree chunk for chunk. Exercises
    /// pathological targets (0, tiny, larger than the input) and inputs
    /// with and without a trailing newline.
    #[test]
    fn split_chunks_partitions_and_aligns(
        lines in proptest::collection::vec("[a-z]{0,10}", 0..40),
        target in 0usize..96,
        terminated in 0u8..2,
    ) {
        let mut input: String = lines.iter().map(|l| format!("{l}\n")).collect();
        if terminated == 0 {
            // Drop the final newline to exercise the unterminated tail.
            input.pop();
        }
        let chunks = kq_stream::split_chunks(&input, target);
        // Exact partition.
        prop_assert_eq!(chunks.concat(), input.clone());
        if !input.is_empty() {
            prop_assert!(!chunks.is_empty(), "non-empty input must chunk");
        }
        // Line alignment: every boundary between adjacent chunks falls
        // just after a newline.
        for c in &chunks[..chunks.len().saturating_sub(1)] {
            prop_assert!(c.ends_with('\n'), "interior chunk {c:?} not line-aligned");
        }
        // The zero-copy splitter agrees chunk for chunk and shares the
        // source buffer.
        let owned = kq_stream::Bytes::from(input.as_str());
        let byte_chunks = owned.split_chunks(target);
        prop_assert_eq!(chunks.len(), byte_chunks.len());
        for (a, b) in chunks.iter().zip(&byte_chunks) {
            prop_assert_eq!(*a, b.as_str());
            prop_assert!(b.shares_buffer(&owned), "chunk copied instead of sliced");
        }
    }

    /// The incremental chunker's contract, for arbitrary segmentations of
    /// arbitrary line material and arbitrary targets: (1) concatenating
    /// every yielded chunk reproduces the concatenated input exactly;
    /// (2) every chunk boundary is line-aligned (all but the final chunk
    /// end with '\n', and the final chunk is unterminated only when the
    /// input is); (3) no chunk exceeds the target unless a single line
    /// forces it — the bytes past the target contain no interior newline.
    #[test]
    fn incremental_chunker_partitions_and_aligns(
        segments in proptest::collection::vec("[a-z\n]{0,24}", 0..12),
        target in 1usize..48,
        terminated in 0u8..2,
    ) {
        let mut input: String = segments.concat();
        if terminated == 1 && !input.ends_with('\n') {
            input.push('\n');
        }
        // Re-segment the (possibly adjusted) input at arbitrary points so
        // pushed segments need not be line-aligned.
        let mut chunker = kq_stream::IncrementalChunker::new(target);
        let mut chunks = Vec::new();
        let mut rest = input.as_str();
        for seg in &segments {
            let take = seg.len().min(rest.len());
            let (head, tail) = rest.split_at(take);
            rest = tail;
            chunks.extend(chunker.push(kq_stream::Bytes::from(head)));
        }
        chunks.extend(chunker.push(kq_stream::Bytes::from(rest)));
        chunks.extend(chunker.finish());

        // (1) Exact partition.
        let rebuilt: String = chunks.iter().map(|c| c.as_str().to_owned()).collect();
        prop_assert_eq!(rebuilt, input.clone());
        // (2) Line-aligned boundaries.
        for c in &chunks[..chunks.len().saturating_sub(1)] {
            prop_assert!(c.ends_with_newline(), "interior chunk {c:?} not line-aligned");
        }
        if let Some(last) = chunks.last() {
            prop_assert_eq!(last.ends_with_newline(), input.ends_with('\n'));
        }
        // (3) Oversize only from a single long line.
        for c in &chunks {
            if c.len() > target {
                let overflow = &c.as_bytes()[target - 1..c.len() - 1];
                prop_assert!(
                    !overflow.contains(&b'\n'),
                    "chunk {c:?} exceeds target {target} without a forcing line"
                );
            }
            prop_assert!(!c.is_empty(), "chunker must not emit empty chunks");
        }
    }

    /// Backing-store transparency: for arbitrary line material (with and
    /// without a trailing newline), a heap-backed and an mmap-backed
    /// `Bytes` over the same content are indistinguishable through the
    /// whole observable surface — equality, `split_stream`,
    /// `split_chunks`, `compact()`, and `into_string` — and mapped pieces
    /// are still zero-copy slices of the map.
    #[cfg(unix)]
    #[test]
    fn heap_and_mmap_backings_behave_identically(
        lines in proptest::collection::vec("[a-z]{0,12}", 0..30),
        k in 1usize..8,
        target in 1usize..64,
        terminated in 0u8..2,
    ) {
        let mut input: String = lines.iter().map(|l| format!("{l}\n")).collect();
        if terminated == 0 {
            input.pop();
        }
        let heap = kq_stream::Bytes::from(input.as_str());
        let mapped = mmap_bytes(&input, "equiv");
        prop_assert_eq!(&heap, &mapped);
        if !input.is_empty() {
            prop_assert!(mapped.is_mmap_backed(), "non-empty forced map");
        }

        let hp = heap.split_stream(k);
        let mp = mapped.split_stream(k);
        prop_assert_eq!(hp.len(), mp.len());
        for (a, b) in hp.iter().zip(&mp) {
            prop_assert_eq!(a, b);
            prop_assert!(b.shares_buffer(&mapped), "mapped piece copied");
        }

        let hc = heap.split_chunks(target);
        let mc = mapped.split_chunks(target);
        prop_assert_eq!(hc.len(), mc.len());
        for (a, b) in hc.iter().zip(&mc) {
            prop_assert_eq!(a, b);
            let (ca, cb) = (a.clone().compact(), b.clone().compact());
            prop_assert_eq!(ca, cb);
        }

        prop_assert_eq!(heap.into_string(), mapped.clone().into_string());
        // And once more as the sole surviving reference (unmap path).
        drop(mp);
        drop(mc);
        prop_assert_eq!(mapped.into_string(), input);
    }

    /// Same partition/alignment contract for the k-way stream splitter,
    /// plus the piece-count bound.
    #[test]
    fn split_stream_partitions_and_aligns(
        lines in proptest::collection::vec("[a-z]{0,10}", 0..40),
        k in 1usize..12,
    ) {
        let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let pieces = kq_stream::split_stream(&input, k);
        prop_assert_eq!(pieces.concat(), input.clone());
        prop_assert!(pieces.len() <= k);
        for p in &pieces {
            prop_assert!(p.ends_with('\n'));
        }
        let owned = kq_stream::Bytes::from(input.as_str());
        let byte_pieces = owned.split_stream(k);
        prop_assert_eq!(pieces.len(), byte_pieces.len());
        for (a, b) in pieces.iter().zip(&byte_pieces) {
            prop_assert_eq!(*a, b.as_str());
            prop_assert!(b.shares_buffer(&owned), "piece copied instead of sliced");
        }
    }
}
