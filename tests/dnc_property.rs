//! The soundness property behind everything: a synthesized combiner `g`
//! must satisfy `f(x1 ++ x2) = g(f(x1), f(x2))` on inputs the synthesizer
//! never saw. For every supported command family we synthesize once, then
//! hammer the combiner with hundreds of fresh random stream pairs.

use kq_coreutils::{parse_command, ExecContext};
use kq_dsl::eval::CommandEnv;
use kq_synth::{synthesize, SynthesisConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random newline-terminated stream whose lines come from a small pool
/// (so duplicates hit the uniq/stitch paths) mixed with fresh noise.
fn random_stream(rng: &mut SmallRng, max_lines: usize) -> String {
    const POOL: [&str; 9] = [
        "alpha",
        "beta",
        "beta beta",
        "42",
        "9 lives",
        "",
        "zz top",
        "0",
        "mid dle",
    ];
    let n = rng.gen_range(1..=max_lines);
    let mut out = String::new();
    for _ in 0..n {
        if rng.gen_bool(0.7) {
            out.push_str(POOL[rng.gen_range(0..POOL.len())]);
        } else {
            for _ in 0..rng.gen_range(1..=3) {
                out.push((b'a' + rng.gen_range(0..26)) as char);
            }
        }
        out.push('\n');
    }
    out
}

/// Synthesizes a combiner for `cmd`, then checks the divide-and-conquer
/// equation on `trials` random stream pairs. `sorted` pre-sorts the pairs
/// (for commands whose domain is sorted streams).
fn check_dnc(cmd: &str, trials: usize, sorted: bool) {
    let command = parse_command(cmd).unwrap();
    let ctx = ExecContext::default();
    let report = synthesize(&command, &ctx, &SynthesisConfig::default());
    let combiner = report
        .combiner()
        .unwrap_or_else(|| panic!("{cmd}: synthesis failed"));
    let env = CommandEnv {
        command: &command,
        ctx: &ctx,
    };
    let mut rng = SmallRng::seed_from_u64(0xD1CE);
    let mut checked = 0;
    for _ in 0..trials {
        let mut combined = random_stream(&mut rng, 14);
        if sorted {
            let mut lines: Vec<&str> = combined.lines().collect();
            lines.sort_unstable();
            combined = lines.iter().map(|l| format!("{l}\n")).collect();
        }
        let Some((x1, x2)) =
            kq_stream::split::split_at_line_boundary(&combined, rng.gen_range(0..combined.len()))
        else {
            continue;
        };
        let (Ok(y1), Ok(y2), Ok(y12)) = (
            command.run_str(x1, &ctx),
            command.run_str(x2, &ctx),
            command.run_str(&combined, &ctx),
        ) else {
            continue;
        };
        let got = combiner
            .combine2(&y1, &y2, &env)
            .unwrap_or_else(|e| panic!("{cmd}: combiner failed on {x1:?}/{x2:?}: {e}"));
        assert_eq!(
            got,
            y12,
            "{cmd}: D&C violated for x1={x1:?} x2={x2:?} (combiner {})",
            combiner.primary()
        );
        checked += 1;
    }
    assert!(
        checked > trials / 2,
        "{cmd}: too few checked pairs ({checked})"
    );
}

#[test]
fn dnc_holds_for_mapping_commands() {
    check_dnc("tr a-z A-Z", 150, false);
    check_dnc("grep a", 150, false);
    check_dnc("cut -d ' ' -f 1", 150, false);
    check_dnc("sed s/a/A/", 150, false);
    check_dnc("rev", 150, false);
    check_dnc("awk 'length >= 3'", 150, false);
}

#[test]
fn dnc_holds_for_counting_commands() {
    check_dnc("wc -l", 200, false);
    check_dnc("wc -c", 200, false);
    check_dnc("grep -c beta", 200, false);
}

#[test]
fn dnc_holds_for_sorting_commands() {
    check_dnc("sort", 150, false);
    check_dnc("sort -rn", 150, false);
    check_dnc("sort -u", 150, false);
}

#[test]
fn dnc_holds_for_selection_commands() {
    check_dnc("uniq", 250, false);
    check_dnc("uniq -c", 250, false);
    check_dnc("head -n 1", 150, false);
    check_dnc("tail -n 1", 150, false);
}

#[test]
fn dnc_holds_for_rerun_commands() {
    check_dnc(r"tr -cs A-Za-z '\n'", 120, false);
    check_dnc("sed 100q", 120, false);
    check_dnc("uniq -c", 120, true); // sorted inputs exercise long runs
}

/// The extension commands (beyond the paper's corpus): the swapped
/// concat (`tac`), the offset representative (`cat -n`, `nl -b a`), the
/// top-level reducer (`awk END` sum), and per-line maps.
#[test]
fn dnc_holds_for_extension_commands() {
    check_dnc("tac", 150, false);
    check_dnc("cat -n", 150, false);
    check_dnc("nl -b a", 120, false);
    check_dnc("awk '{s += $1} END {print s}'", 150, false);
    check_dnc("fold -w5", 120, false);
    check_dnc("expand", 120, false);
}

/// k-way generalization (paper §3.5): the combiner applied across many
/// substreams equals the serial run over the concatenation.
#[test]
fn dnc_generalizes_to_k_substreams() {
    let mut rng = SmallRng::seed_from_u64(0xACE);
    for cmd in ["uniq -c", "wc -l", "sort", "tr a-z A-Z", "cat -n", "tac"] {
        let command = parse_command(cmd).unwrap();
        let ctx = ExecContext::default();
        let report = synthesize(&command, &ctx, &SynthesisConfig::default());
        let combiner = report.combiner().unwrap();
        let env = CommandEnv {
            command: &command,
            ctx: &ctx,
        };
        for _ in 0..40 {
            let combined = kq_stream::Bytes::from(random_stream(&mut rng, 30));
            let k = rng.gen_range(2..=7);
            // Zero-copy splitting: pieces are refcounted slices.
            let outputs: Vec<kq_stream::Bytes> = combined
                .split_stream(k)
                .into_iter()
                .map(|p| command.run(p, &ctx).unwrap())
                .collect();
            let got = combiner.combine_all(&outputs, &env).unwrap();
            let expect = command.run(combined.clone(), &ctx).unwrap();
            assert_eq!(got, expect, "{cmd} at k={k} on {combined:?}");
        }
    }
}
