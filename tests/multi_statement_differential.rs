//! Multi-statement differential suite: scripts with three or more
//! statements — including chains of `> file` redirects that later
//! statements read back — must produce identical results under every
//! executor.
//!
//! This is the shape the dataflow scheduler exists for: statements linked
//! by redirect targets must serialize (RAW/WAW/WAR over the VFS), while
//! independent statements overlap on the shared pool. Equality covers
//! both the concatenated stdout *and* the final contents of every
//! redirect target, at chunk sizes bracketing the inputs and w ∈ {1, 4}.

use kq_coreutils::ExecContext;
use kq_pipeline::chunked::{run_chunked, ChunkedOptions};
use kq_pipeline::exec::{run_parallel, run_serial};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;

/// (name, script text). Inputs live at `/in.txt`; redirect targets under
/// `/out/...` are part of the differential comparison.
fn scripts() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "redirect-chain",
            // Three statements, each reading the previous one's target:
            // the classic word-frequency split into checkpointed steps.
            "cat /in.txt | tr -cs 'A-Za-z' '\\n' | sort > /out/words\n\
             cat /out/words | uniq -c | sort -rn > /out/freq\n\
             cat /out/freq | head -n 5",
        ),
        (
            "fan-in",
            // Two independent statements whose targets a third gathers:
            // the middle pair may overlap; the join must wait for both.
            "cat /in.txt | grep apple > /out/hits\n\
             cat /in.txt | grep -v apple > /out/misses\n\
             cat /out/hits /out/misses | sort | uniq -c | head -n 8",
        ),
        (
            "overwrite",
            // /out/t is written, read, then *overwritten* (WAR + WAW) and
            // read again: executor ordering bugs scramble the final read.
            "cat /in.txt | head -n 40 > /out/t\n\
             cat /out/t | tr a-z A-Z > /out/u\n\
             cat /in.txt | tail -n 20 > /out/t\n\
             cat /out/t /out/u | wc -l",
        ),
        (
            "independent",
            // Three statements with no dependencies at all: pure overlap;
            // stdout order must still follow statement order.
            "cat /in.txt | cut -d ' ' -f 1 | sort -u\n\
             cat /in.txt | grep bird | wc -l\n\
             cat /in.txt | tr a-z A-Z | head -n 3",
        ),
    ]
}

fn make_input(lines: usize) -> String {
    let words = ["apple", "dog", "cat", "apple", "bird", "fox", "emu"];
    (0..lines)
        .map(|i| {
            format!(
                "{} {} field{}\n",
                words[i % words.len()],
                words[(i * 3 + 1) % words.len()],
                i % 17
            )
        })
        .collect()
}

/// Fresh context per run: redirect targets are outputs under test, so no
/// state may leak between executors.
fn fresh_ctx(input: &str) -> ExecContext {
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", input);
    ctx
}

/// The redirect targets a script writes, in statement order.
fn targets(parsed: &kq_pipeline::Script) -> Vec<String> {
    parsed
        .statements
        .iter()
        .filter_map(|st| st.output.clone())
        .collect()
}

#[test]
fn multi_statement_scripts_agree_across_all_executors() {
    let input = make_input(600);
    let env: HashMap<String, String> = HashMap::new();
    let mut planner = Planner::new(SynthesisConfig::default());
    for (name, text) in scripts() {
        let parsed = parse_script(text, &env).unwrap_or_else(|e| panic!("{name} parse: {e}"));
        assert!(
            parsed.statements.len() >= 3,
            "{name}: suite promises >= 3 statements"
        );
        let outs = targets(&parsed);

        let sample = make_input(80);
        let plan = planner.plan(&parsed, &fresh_ctx(&input), &sample);

        // Oracle: serial on a fresh context, stdout + every target.
        let serial_ctx = fresh_ctx(&input);
        let serial =
            run_serial(&parsed, &serial_ctx).unwrap_or_else(|e| panic!("{name} serial: {e}"));
        let serial_targets: Vec<Option<String>> = outs
            .iter()
            .map(|t| serial_ctx.vfs.read(t).map(|s| s.to_owned()))
            .collect();

        let check = |exec_name: &str, ctx: &ExecContext, output: kq_coreutils::Bytes| {
            assert_eq!(
                output, serial.output,
                "{name}: {exec_name} stdout diverged from serial"
            );
            for (t, expect) in outs.iter().zip(&serial_targets) {
                assert_eq!(
                    ctx.vfs.read(t).map(|s| s.to_owned()).as_deref(),
                    expect.as_deref(),
                    "{name}: {exec_name} left wrong bytes in {t}"
                );
            }
        };

        for workers in [1usize, 4] {
            let ctx = fresh_ctx(&input);
            let got = run_parallel(&parsed, &plan, &ctx, workers, true)
                .unwrap_or_else(|e| panic!("{name} parallel (w={workers}): {e}"));
            check(&format!("parallel w={workers}"), &ctx, got.output);

            for chunk_bytes in [1usize, 700, 16 << 20] {
                let ctx = fresh_ctx(&input);
                let copts = ChunkedOptions {
                    workers,
                    chunk_bytes,
                    honor_elimination: true,
                };
                let got = run_chunked(&parsed, &plan, &ctx, &copts).unwrap_or_else(|e| {
                    panic!("{name} chunked (w={workers}, c={chunk_bytes}): {e}")
                });
                check(
                    &format!("chunked w={workers} c={chunk_bytes}"),
                    &ctx,
                    got.output,
                );

                let ctx = fresh_ctx(&input);
                let sopts = StreamingOptions {
                    workers,
                    chunk_bytes,
                    queue_depth: 2,
                    fuse_streamable: true,
                    spill: None,
                };
                let got = run_streaming(&parsed, &plan, &ctx, &sopts).unwrap_or_else(|e| {
                    panic!("{name} streaming (w={workers}, c={chunk_bytes}): {e}")
                });
                check(
                    &format!("streaming w={workers} c={chunk_bytes}"),
                    &ctx,
                    got.output,
                );

                let ctx = fresh_ctx(&input);
                let dopts = DataflowOptions {
                    workers,
                    chunk: ChunkSizing::Fixed(chunk_bytes),
                    queue: QueueCredit::Fixed(2),
                    fuse_streamable: true,
                    spill: None,
                };
                let got = run_dataflow(&parsed, &plan, &ctx, &dopts).unwrap_or_else(|e| {
                    panic!("{name} dataflow (w={workers}, c={chunk_bytes}): {e}")
                });
                check(
                    &format!("dataflow w={workers} c={chunk_bytes}"),
                    &ctx,
                    got.output,
                );
            }
        }
    }
}

/// The dataflow scheduler must not reorder dependent statements even when
/// the dependency is only visible through an argv word (a file operand
/// rather than the `cat` input list).
#[test]
fn argv_file_operands_count_as_reads_for_statement_ordering() {
    let env: HashMap<String, String> = HashMap::new();
    let text = "cat /in.txt | cut -d ' ' -f 1 | sort -u > /out/left\n\
                cat /in.txt | cut -d ' ' -f 2 | sort -u > /out/right\n\
                comm -12 /out/left /out/right";
    let parsed = parse_script(text, &env).unwrap();
    let input = make_input(300);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&parsed, &fresh_ctx(&input), &make_input(60));

    let serial_ctx = fresh_ctx(&input);
    let serial = run_serial(&parsed, &serial_ctx).unwrap();
    assert!(!serial.output.is_empty(), "comm should find shared words");

    for workers in [1usize, 4] {
        let ctx = fresh_ctx(&input);
        let opts = DataflowOptions {
            workers,
            chunk: ChunkSizing::Fixed(256),
            queue: QueueCredit::Fixed(2),
            fuse_streamable: true,
            spill: None,
        };
        let got = run_dataflow(&parsed, &plan, &ctx, &opts).unwrap();
        assert_eq!(
            got.output, serial.output,
            "comm ran before its inputs existed?"
        );
    }
}
