//! Empirical verification of the paper's theorems.
//!
//! The theorems characterize when filtering is guaranteed to land on the
//! correct combiner (or an equivalent). These tests build observation sets
//! from real command executions, check the sufficiency predicates `E`,
//! filter the *entire* candidate space, and verify every survivor is
//! equivalent-by-intersection to the known-correct combiner.

use kq_coreutils::{parse_command, ExecContext};
use kq_dsl::ast::{Combiner, RecOp, StructOp};
use kq_dsl::eval::{check_equiv_by_intersection, CommandEnv, NoRunEnv};
use kq_dsl::repr;
use kq_dsl::{enumerate_candidates, plausible, Delim, EnumConfig, Observation};

/// Observations from running `cmd` on the given split input pairs.
fn observe(cmd: &str, pairs: &[(&str, &str)]) -> (Vec<Observation>, kq_coreutils::Command) {
    let command = parse_command(cmd).unwrap();
    let ctx = ExecContext::default();
    let obs = pairs
        .iter()
        .map(|(x1, x2)| {
            let y1 = command.run_str(x1, &ctx).unwrap();
            let y2 = command.run_str(x2, &ctx).unwrap();
            let y12 = command.run_str(&format!("{x1}{x2}"), &ctx).unwrap();
            Observation { y1, y2, y12 }
        })
        .collect();
    (obs, command)
}

/// Theorem 2 instance: for `wc -l` (correct combiner `(back '\n' add)` ∈
/// G_rec) with observations satisfying `E_rec`, every plausible RecOp
/// candidate is equivalent-by-intersection to the correct combiner.
#[test]
fn theorem2_wc_l_rec_ops_collapse_to_back_add() {
    let pairs = [
        ("a\nb\nc\n", "d\n"),
        ("x\n", "y\nz\n"),
        ("one two\n", "three\nfour\nfive\n"),
    ];
    let (obs, _command) = observe("wc -l", &pairs);
    assert!(repr::e_rec(&obs), "observations satisfy E_rec");
    let correct = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
    assert!(repr::e_back_add(Delim::Newline, &obs));

    let (candidates, _) = enumerate_candidates(&EnumConfig::default());
    let ctx = ExecContext::default();
    let command = parse_command("wc -l").unwrap();
    let env = CommandEnv {
        command: &command,
        ctx: &ctx,
    };
    // Equivalence is checked on the combiners' shared domain: padded
    // count streams.
    let domain_pairs: Vec<(String, String)> = (0..40)
        .map(|i| {
            (
                format!("{}\n", i * 7 % 90),
                format!("{}\n", i * 13 % 70 + 1),
            )
        })
        .collect();
    let mut survivors = 0;
    for cand in candidates
        .iter()
        .filter(|c| matches!(c.op, Combiner::Rec(_)))
    {
        if plausible(cand, &obs, &env) {
            survivors += 1;
            check_equiv_by_intersection(&cand.op, &correct, &domain_pairs, &NoRunEnv)
                .unwrap_or_else(|e| panic!("survivor {cand} not equivalent: {e}"));
        }
    }
    assert!(survivors >= 1, "the correct combiner itself must survive");
}

/// Theorem 4 instance: for `uniq` (correct combiner `(stitch first)` ∈
/// G_struct) with sufficient observations, every plausible StructOp
/// candidate is equivalent-by-intersection to `(stitch first)`.
#[test]
fn theorem4_uniq_struct_ops_collapse_to_stitch_first() {
    let pairs = [
        ("alpha\nword\n", "word\nbeta\n"),  // shared boundary line
        ("alpha\nword\n", "other\nbeta\n"), // distinct boundary lines
        ("m\nm\nq\n", "q\nq\nr\n"),
        ("solo\n", "solo\nduo\n"),
    ];
    let (obs, _command) = observe("uniq", &pairs);
    assert!(repr::e_struct(&obs), "observations satisfy E_struct");
    let correct = Combiner::Struct(StructOp::Stitch(RecOp::First));

    let (candidates, _) = enumerate_candidates(&EnumConfig {
        delims: vec![Delim::Newline, Delim::Space],
        ..EnumConfig::default()
    });
    let ctx = ExecContext::default();
    let command = parse_command("uniq").unwrap();
    let env = CommandEnv {
        command: &command,
        ctx: &ctx,
    };
    let domain_pairs: Vec<(String, String)> = vec![
        ("a\nb\n".into(), "b\nc\n".into()),
        ("a\nb\n".into(), "c\nd\n".into()),
        ("q\n".into(), "q\n".into()),
        ("x\ny\nz\n".into(), "z\n".into()),
    ];
    let mut survivors = 0;
    for cand in candidates
        .iter()
        .filter(|c| matches!(c.op, Combiner::Struct(_)) && !c.swapped)
    {
        if plausible(cand, &obs, &env) {
            survivors += 1;
            check_equiv_by_intersection(&cand.op, &correct, &domain_pairs, &NoRunEnv)
                .unwrap_or_else(|e| panic!("survivor {cand} not equivalent: {e}"));
        }
    }
    assert!(survivors >= 1);
}

/// Theorem 1's flip side: without sufficient observations (`E` fails),
/// inequivalent candidates *can* survive — the predicates are not vacuous.
#[test]
fn insufficient_observations_leave_ambiguity() {
    // head -n 1 with equal leading lines: y1 == y2 == y12, so `first`,
    // `second`, and rerun are all indistinguishable.
    let pairs = [("same\nx\n", "same\ny\n")];
    let (obs, command) = observe("head -n 1", &pairs);
    assert!(!repr::e_first(&obs), "E(g_f) must fail on y1 == y2");
    let ctx = ExecContext::default();
    let env = CommandEnv {
        command: &command,
        ctx: &ctx,
    };
    // Both selections survive these degenerate observations — the correct
    // one (`first`) and the wrong one (`second`); only richer inputs
    // (satisfying E) separate them.
    assert!(plausible(&kq_dsl::Candidate::rec(RecOp::First), &obs, &env));
    assert!(plausible(
        &kq_dsl::Candidate::rec(RecOp::Second),
        &obs,
        &env
    ));
}

/// Theorem 5: when `g1 = concat` and `f1` emits streams, combining before
/// or after `f2` yields identical results.
#[test]
fn theorem5_combiner_elimination_equation() {
    let ctx = ExecContext::default();
    let f1 = parse_command("grep -v zz").unwrap(); // combiner: concat
    let f2 = parse_command("wc -l").unwrap(); // combiner: (back '\n' add)
    let g2 = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));

    let inputs = [
        ("a\nzz\nb\n", "c\nd\n"),
        ("zz\n", "x\nzz\ny\n"),
        ("p\nq\nr\ns\n", "t\n"),
    ];
    for (x1, x2) in inputs {
        // Unoptimized: combine f1's outputs, re-split is the identity
        // because g1 is concat, then run f2 on the combined halves.
        let y1 = f1.run_str(x1, &ctx).unwrap();
        let y2 = f1.run_str(x2, &ctx).unwrap();
        let lhs = kq_dsl::eval::eval(
            &g2,
            &f2.run_str(&y1, &ctx).unwrap(),
            &f2.run_str(&y2, &ctx).unwrap(),
            &NoRunEnv,
        )
        .unwrap();
        // Serial reference: f2(f1(x1 ++ x2)).
        let serial = f2
            .run_str(&f1.run_str(&format!("{x1}{x2}"), &ctx).unwrap(), &ctx)
            .unwrap();
        assert_eq!(lhs, serial, "Theorem 5 equation failed for {x1:?}/{x2:?}");
    }
}

/// Theorem 5's precondition matters: `tr -d '\n'` does not emit streams,
/// and feeding its split outputs onward diverges from the serial result.
#[test]
fn theorem5_precondition_violation_detectable() {
    let ctx = ExecContext::default();
    let f1 = parse_command(r"tr -d '\n'").unwrap();
    let out = f1.run_str("ab\ncd\n", &ctx).unwrap();
    assert!(!out.ends_with('\n'), "tr -d strips the trailing newline");
}

/// Appendix Example 1, first claim: `(front d concat) ≡∩ (back d concat)`
/// for every delimiter — both reduce to plain concatenation minus one
/// duplicated delimiter when a string starts *and* ends with `d`.
#[test]
fn example1_front_concat_equiv_back_concat() {
    for d in [Delim::Newline, Delim::Tab, Delim::Space, Delim::Comma] {
        let c = d.as_char();
        let g1 = Combiner::Rec(RecOp::Front(d, Box::new(RecOp::Concat)));
        let g2 = Combiner::Rec(RecOp::Back(d, Box::new(RecOp::Concat)));
        let pairs: Vec<(String, String)> = vec![
            (format!("{c}ab{c}"), format!("{c}xy{c}")),
            (format!("{c}{c}"), format!("{c}q{c}")),
            (format!("{c}a{c}b{c}"), format!("{c}z{c}")),
            // Pairs outside the intersection are skipped, not failures.
            ("plain".to_owned(), "text".to_owned()),
        ];
        let exercised = check_equiv_by_intersection(&g1, &g2, &pairs, &NoRunEnv).unwrap();
        assert_eq!(exercised, 3, "delimiter {c:?}");
    }
}

/// Appendix Example 1, second claim — with a caveat this reproduction
/// documents: `(stitch2 d first first) ≡∩ (stitch first)` holds on the
/// outputs the `uniq` family can produce, but NOT on every string pair in
/// both domains. Padded table lines that agree in the second field while
/// differing in the first ("  1 a" / "  2 a") make stitch2 merge where
/// stitch concatenates. For `uniq` the claim is vacuous-but-true: uniq
/// output lines are unpadded, hence outside L(stitch2); for `uniq -c`
/// first/first is not the correct combiner anyway (add/first is). See
/// EXPERIMENTS.md.
#[test]
fn example1_stitch2_first_first_caveat() {
    let g1 = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::First, RecOp::First));
    let g2 = Combiner::Struct(StructOp::Stitch(RecOp::First));

    // Identical boundary lines: both merge the same way — agreement.
    let agree = vec![("  1 a\n".to_owned(), "  1 a\n".to_owned())];
    assert_eq!(
        check_equiv_by_intersection(&g1, &g2, &agree, &NoRunEnv).unwrap(),
        1
    );

    // Equal second field, different first: stitch2 merges, stitch
    // concatenates — the universal claim fails here.
    let diverge = vec![("  1 a\n".to_owned(), "  2 a\n".to_owned())];
    let err = check_equiv_by_intersection(&g1, &g2, &diverge, &NoRunEnv)
        .expect_err("padded table pair with equal keys must diverge");
    assert!(err.contains("disagree"), "{err}");

    // And the reason the paper's claim is safe for `uniq`: its outputs
    // are unpadded words, which L(stitch2) rejects, so the intersection
    // over uniq-reachable streams exercises nothing.
    let uniq_shaped = vec![("alpha\nbeta\n".to_owned(), "beta\ngamma\n".to_owned())];
    assert_eq!(
        check_equiv_by_intersection(&g1, &g2, &uniq_shaped, &NoRunEnv).unwrap(),
        0,
        "uniq-shaped outputs lie outside L(stitch2)"
    );
}
