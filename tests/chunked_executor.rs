//! Corpus-wide validation of the chunked executor: for every benchmark
//! script, `run_chunked` (dynamic load balancing over many small chunks)
//! must produce exactly the serial output, like the static executor does.
//!
//! The chunked executor changes the *schedule* — chunk count is
//! data-driven, workers pull chunks as they finish — but correctness must
//! come entirely from the combiner equation, so the output is invariant.

use kq_coreutils::ExecContext;
use kq_pipeline::chunked::{run_chunked, ChunkedOptions};
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::{Planner, StageSegment};
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale};

#[test]
fn all_seventy_scripts_run_chunked_correctly() {
    let scale = Scale {
        input_bytes: 24_000,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xBEEF);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let plan = planner.plan(
            &parsed,
            &ctx,
            kq_workloads::planning_sample(&sample, 16_000),
        );

        let serial = run_serial(&parsed, &ctx)
            .unwrap_or_else(|e| panic!("{}/{} serial: {e}", script.suite.dir(), script.id));

        // Small chunks force many pieces per segment; 3 workers contend.
        let opts = ChunkedOptions {
            workers: 3,
            chunk_bytes: 2_000,
            honor_elimination: true,
        };
        let chunked = run_chunked(&parsed, &plan, &ctx, &opts)
            .unwrap_or_else(|e| panic!("{}/{} chunked: {e}", script.suite.dir(), script.id));
        assert_eq!(
            chunked.output,
            serial.output,
            "{}/{} diverged under the chunked executor",
            script.suite.dir(),
            script.id
        );
    }
}

/// The segment grouping used by the chunked executor and the shell
/// emitter: eliminated combiners fuse stages; disabling the optimization
/// splits them apart.
#[test]
fn segments_respect_elimination_flag() {
    let ctx = ExecContext::default();
    let input = "b x\na y\nb z\n".repeat(60);
    ctx.vfs.write("/in.txt", &input);
    let parsed = parse_script(
        "cat /in.txt | tr A-Z a-z | cut -d ' ' -f 1 | sort | uniq -c",
        &Default::default(),
    )
    .unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&parsed, &ctx, &input);
    let planned = &plan.statements[0];

    let optimized = planned.segments(true);
    let unoptimized = planned.segments(false);
    // Unoptimized: every parallel stage is its own segment.
    let par_stage_count = planned
        .stages
        .iter()
        .filter(|s| s.mode.is_parallel())
        .count();
    let unopt_parallel_segments = unoptimized
        .iter()
        .filter(|s| matches!(s, StageSegment::Parallel { .. }))
        .count();
    assert_eq!(unopt_parallel_segments, par_stage_count);
    // Optimized: eliminations fuse stages, so there are fewer segments.
    assert!(
        optimized.len() < unoptimized.len(),
        "expected fusion: optimized {optimized:?} vs unoptimized {unoptimized:?}"
    );
    // Segments partition the stage indices in order.
    let mut covered = Vec::new();
    for seg in &optimized {
        match seg {
            StageSegment::Sequential { stage } => covered.push(*stage),
            StageSegment::Parallel { stages } => covered.extend(stages.clone()),
        }
    }
    let expected: Vec<usize> = (0..planned.stages.len()).collect();
    assert_eq!(covered, expected);
}
