//! The parallel synthesis engine's contract, pinned end to end:
//!
//! 1. **Determinism** — `synthesize` with `workers ∈ {1, 4}` produces an
//!    identical `SynthesisReport` (candidate sets, outcome, rounds,
//!    observations, counterexample) for every unique stdin-reading
//!    command in the 70-script corpus. The pool buys wall clock only.
//! 2. **Warm-cache planning** — planning the corpus against a shared
//!    on-disk combiner cache twice synthesizes everything exactly once:
//!    the second planner reports zero syntheses (everything validates out
//!    of the store) and yields plans with identical stage modes.
//! 3. **Executor equivalence under the parallel planner** — plans built
//!    with `synth-workers = 4` (and plans resolved from the warm cache)
//!    drive the chunked and streaming executors to byte-identical output
//!    against serial.

use kq_coreutils::ExecContext;
use kq_pipeline::cache::{cache_key, CombinerCache};
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::{Planner, StageMode};
use kq_synth::{synthesize, SynthesisConfig, SynthesisOutcome};
use kq_workloads::{corpus, setup, Scale};
use proptest::prelude::*;

/// Every unique stdin-reading corpus command, as parsed `Command`s (owned
/// by the returned scripts' stage lists — we synthesize straight off the
/// parse so display-requoting quirks cannot drop commands).
fn for_each_unique_command(mut f: impl FnMut(&kq_coreutils::Command)) {
    let scale = Scale { input_bytes: 4_000 };
    let mut seen: Vec<String> = Vec::new();
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 7);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        for statement in &parsed.statements {
            for stage in &statement.stages {
                if !stage.command.reads_stdin() {
                    continue;
                }
                let key = cache_key(&stage.command);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                f(&stage.command);
            }
        }
    }
    assert!(
        seen.len() > 100,
        "only {} unique commands found",
        seen.len()
    );
}

fn outcome_fingerprint(
    outcome: &SynthesisOutcome,
) -> (bool, Vec<String>, Option<(String, String)>) {
    match outcome {
        SynthesisOutcome::Synthesized(c) => (
            true,
            c.plausible.iter().map(|cand| cand.to_string()).collect(),
            None,
        ),
        SynthesisOutcome::NoCombiner { counterexample } => {
            (false, Vec::new(), counterexample.clone())
        }
    }
}

#[test]
fn synthesis_is_identical_at_one_and_four_workers_across_the_corpus() {
    let serial_config = SynthesisConfig {
        workers: 1,
        ..SynthesisConfig::default()
    };
    let parallel_config = SynthesisConfig {
        workers: 4,
        ..serial_config.clone()
    };
    let mut checked = 0usize;
    for_each_unique_command(|command| {
        let ctx = ExecContext::default();
        let serial = synthesize(command, &ctx, &serial_config);
        let ctx = ExecContext::default();
        let parallel = synthesize(command, &ctx, &parallel_config);
        let line = command.display();
        assert_eq!(serial.rounds, parallel.rounds, "{line}: rounds");
        assert_eq!(
            serial.observations, parallel.observations,
            "{line}: observations"
        );
        assert_eq!(
            serial.space.total(),
            parallel.space.total(),
            "{line}: search space"
        );
        assert_eq!(serial.profile, parallel.profile, "{line}: profile");
        assert_eq!(
            outcome_fingerprint(&serial.outcome),
            outcome_fingerprint(&parallel.outcome),
            "{line}: outcome/candidate set"
        );
        checked += 1;
    });
    assert!(checked > 100, "checked only {checked} commands");
}

proptest! {
    /// Determinism holds for arbitrary seeds and configurations, not just
    /// the default: the worker count is never observable in the report.
    #[test]
    fn determinism_over_random_seeds_and_configs(
        seed in 0u64..u64::MAX,
        gradient_steps in 1usize..3,
        pairs_per_shape in 1usize..3,
        gradient_coin in 0usize..2,
        cmd_idx in 0usize..4,
        workers in 2usize..6,
    ) {
        let lines = ["wc -l", "uniq -c", "sort -rn", "sed 1d"];
        let command = kq_coreutils::parse_command(lines[cmd_idx]).unwrap();
        let serial_config = SynthesisConfig {
            rng_seed: seed,
            gradient_steps,
            pairs_per_shape,
            use_gradient: gradient_coin == 1,
            max_rounds: 3,
            workers: 1,
            ..SynthesisConfig::default()
        };
        let parallel_config = SynthesisConfig {
            workers,
            ..serial_config.clone()
        };
        let serial = synthesize(&command, &ExecContext::default(), &serial_config);
        let parallel = synthesize(&command, &ExecContext::default(), &parallel_config);
        prop_assert_eq!(serial.rounds, parallel.rounds);
        prop_assert_eq!(serial.observations, parallel.observations);
        prop_assert_eq!(
            outcome_fingerprint(&serial.outcome),
            outcome_fingerprint(&parallel.outcome)
        );
    }
}

fn cache_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("kq-synth-engine-{tag}-{}", std::process::id()))
}

fn stage_modes(planner: &mut Planner, script: &kq_workloads::BenchmarkScript) -> Vec<String> {
    let scale = Scale {
        input_bytes: 24_000,
    };
    let ctx = ExecContext::default();
    let env = setup(script, &ctx, &scale, 0xC0FFEE);
    let parsed = parse_script(script.text, &env).unwrap();
    let sample = ctx.vfs.read(&env["IN"]).unwrap();
    let plan = planner.plan(
        &parsed,
        &ctx,
        kq_workloads::planning_sample(&sample, 16_000),
    );
    plan.statements
        .iter()
        .flat_map(|st| {
            st.stages.iter().map(|s| match &s.mode {
                StageMode::Sequential => "seq".to_owned(),
                StageMode::Parallel {
                    combiner,
                    eliminated,
                } => format!("par:{}:{}:{}", combiner.primary(), eliminated, s.streamable),
            })
        })
        .collect()
}

#[test]
fn warm_cache_plans_the_corpus_without_synthesizing_and_identically() {
    let path = cache_path("warm");
    std::fs::remove_file(&path).ok();
    // workers = 2 also exercises the per-command fan-out.
    let config = SynthesisConfig {
        workers: 2,
        ..SynthesisConfig::default()
    };

    // Pass 1: cold. Synthesizes every unique command once, writes the store.
    let mut cold = Planner::with_cache(config.clone(), CombinerCache::open(&path, &config));
    let cold_modes: Vec<Vec<String>> = corpus()
        .iter()
        .map(|script| stage_modes(&mut cold, script))
        .collect();
    assert!(!cold.reports.is_empty(), "cold pass must synthesize");
    assert!(cold.save_cache().unwrap(), "cold pass must write the store");
    let synthesized = cold.reports.len();

    // Pass 2: warm. Everything validates out of the store — except
    // commands whose cold probe environment was unsupported (a file
    // dependency the script writes later): those verdicts are
    // deliberately not persisted, and their re-probe costs zero
    // synthesis rounds.
    let mut warm = Planner::with_cache(config.clone(), CombinerCache::open(&path, &config));
    let warm_modes: Vec<Vec<String>> = corpus()
        .iter()
        .map(|script| stage_modes(&mut warm, script))
        .collect();
    for report in &warm.reports {
        assert_eq!(
            report.profile,
            kq_synth::InputProfile::Unsupported,
            "warm pass re-synthesized {}",
            report.command
        );
        assert_eq!(report.rounds, 0, "{} must not search", report.command);
    }
    let warm_rounds: usize = warm.reports.iter().map(|r| r.rounds).sum();
    assert_eq!(
        warm_rounds, 0,
        "warm pass must report zero synthesis rounds"
    );
    let stats = warm.cache_stats();
    assert_eq!(stats.rejected, 0, "nothing may fail validation");
    assert!(
        stats.validated > 0 && stats.validated <= synthesized,
        "validated {} of {synthesized}",
        stats.validated
    );
    assert_eq!(cold_modes, warm_modes, "plans must not depend on the cache");
    std::fs::remove_file(&path).ok();
}

#[test]
fn parallel_planner_keeps_executors_byte_identical() {
    // A boundary-sensitive multi-segment pipeline planned with the
    // parallel engine (and re-planned from a warm cache) must drive every
    // executor to the serial output.
    let path = cache_path("exec");
    std::fs::remove_file(&path).ok();
    let script = corpus().iter().find(|s| s.id == "wf.sh").unwrap();
    let scale = Scale {
        input_bytes: 30_000,
    };

    for pass in 0..2 {
        let config = SynthesisConfig {
            workers: 4,
            ..SynthesisConfig::default()
        };
        let mut planner = Planner::with_cache(config.clone(), CombinerCache::open(&path, &config));
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 99);
        let parsed = parse_script(script.text, &env).unwrap();
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let plan = planner.plan(
            &parsed,
            &ctx,
            kq_workloads::planning_sample(&sample, 16_000),
        );
        if pass == 1 {
            assert_eq!(planner.reports.len(), 0, "second pass must be warm");
        }
        let serial = run_serial(&parsed, &ctx).unwrap();
        let chunked = kq_pipeline::chunked::run_chunked(
            &parsed,
            &plan,
            &ctx,
            &kq_pipeline::chunked::ChunkedOptions {
                workers: 3,
                chunk_bytes: 700,
                honor_elimination: true,
            },
        )
        .unwrap();
        assert_eq!(chunked.output, serial.output, "chunked (pass {pass})");
        let streaming = kq_pipeline::run_streaming(
            &parsed,
            &plan,
            &ctx,
            &kq_pipeline::StreamingOptions {
                workers: 2,
                chunk_bytes: 700,
                queue_depth: 2,
                fuse_streamable: true,
                spill: None,
            },
        )
        .unwrap();
        assert_eq!(streaming.output, serial.output, "streaming (pass {pass})");
        planner.save_cache().unwrap();
    }
    std::fs::remove_file(&path).ok();
}
