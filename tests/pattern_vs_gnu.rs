//! Differential testing of the from-scratch BRE engine (`kq-pattern`)
//! against the host's GNU grep: random patterns drawn from the corpus's
//! BRE subset, random line sets, byte-identical selected lines.
//!
//! Skips silently when `grep` cannot be spawned.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::process::{Command as Proc, Stdio};

fn gnu_grep_available() -> bool {
    Proc::new("grep")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Runs host `grep PATTERN` over `input`, returning the selected lines.
/// Treats exit code 1 (no matches) as success with empty output.
fn gnu_grep(pattern: &str, input: &str) -> Option<String> {
    let mut child = Proc::new("grep")
        .arg("--")
        .arg(pattern)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .ok()?;
    let out = child.wait_with_output().ok()?;
    match out.status.code() {
        Some(0) | Some(1) => Some(String::from_utf8_lossy(&out.stdout).into_owned()),
        _ => None, // grep rejected the pattern; skip this case
    }
}

/// Generates a random BRE pattern from the corpus subset: literals, `.`,
/// `*`, bracket expressions with ranges/negation, and anchors.
fn random_pattern(rng: &mut SmallRng) -> String {
    let mut pat = String::new();
    if rng.gen_bool(0.25) {
        pat.push('^');
    }
    let atoms = rng.gen_range(1..=4);
    for _ in 0..atoms {
        let mut atom = match rng.gen_range(0..5) {
            0 | 1 => ((b'a' + rng.gen_range(0..6u8)) as char).to_string(),
            2 => ".".to_owned(),
            3 => {
                let lo = (b'a' + rng.gen_range(0..4u8)) as char;
                let hi = (lo as u8 + rng.gen_range(1..3u8)) as char;
                format!("[{lo}-{hi}]")
            }
            _ => {
                let c = (b'a' + rng.gen_range(0..6u8)) as char;
                format!("[^{c}]")
            }
        };
        if rng.gen_bool(0.3) {
            atom.push('*');
        }
        pat.push_str(&atom);
    }
    if rng.gen_bool(0.25) {
        pat.push('$');
    }
    pat
}

fn random_line(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(0..10);
    (0..n)
        .map(|_| {
            let set = "abcdefxy.0 ";
            set.as_bytes()[rng.gen_range(0..set.len())] as char
        })
        .collect()
}

#[test]
fn bre_engine_matches_gnu_grep_on_random_patterns() {
    if !gnu_grep_available() {
        eprintln!("skipping: no GNU grep on this host");
        return;
    }
    let mut rng = SmallRng::seed_from_u64(0xB2E);
    let mut compared = 0usize;
    for _ in 0..300 {
        let pattern = random_pattern(&mut rng);
        let Ok(re) = kq_pattern::Regex::new(&pattern) else {
            continue;
        };
        let input: String = (0..12)
            .map(|_| format!("{}\n", random_line(&mut rng)))
            .collect();
        let Some(gnu) = gnu_grep(&pattern, &input) else {
            continue;
        };
        let ours: String = input
            .lines()
            .filter(|l| re.is_match(l))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            ours, gnu,
            "pattern {pattern:?} disagrees with GNU grep on {input:?}"
        );
        compared += 1;
    }
    assert!(compared > 100, "only {compared} cases compared");
}
