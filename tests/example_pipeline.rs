//! The §2 running example, end to end through the public façade: the
//! word-frequency pipeline gets exactly the per-command combiners the
//! paper describes, the planner makes the §2 decisions (sequential
//! `tr -cs`, eliminated `tr A-Z a-z`), and the parallel result is correct.

use kq_workloads::inputs::gutenberg_text;
use kumquat::Kumquat;

const WF: &str = r"cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn";

fn wf_instance() -> Kumquat {
    let mut kq = Kumquat::new();
    kq.write_file("/in/book.txt", gutenberg_text(60_000, 5));
    kq.set_var("IN", "/in/book.txt");
    kq
}

#[test]
fn figure1_combiners_match_section2() {
    let mut kq = wf_instance();
    // "The combine operator for command tr A-Z a-z simply concatenates."
    assert!(kq
        .synthesize_command("tr A-Z a-z")
        .unwrap()
        .combiner()
        .unwrap()
        .is_concat());
    // "The combine operator for tr -cs A-Za-z '\n' ... reruns the command."
    assert!(kq
        .synthesize_command(r"tr -cs A-Za-z '\n'")
        .unwrap()
        .combiner()
        .unwrap()
        .is_rerun());
    // "The combine operators for sort commands apply an appropriate merge
    // function, which may depend on the sort flag."
    let sort = kq.synthesize_command("sort -rn").unwrap();
    assert_eq!(
        sort.combiner().unwrap().primary().to_string(),
        "(merge(-rn) a b)"
    );
    // "uniq -c ... combines the last and first lines to include the sum."
    let uniq = kq.synthesize_command("uniq -c").unwrap();
    assert!(uniq
        .combiner()
        .unwrap()
        .primary()
        .to_string()
        .starts_with("((stitch2 ' ' add"));
}

#[test]
fn figure1_parallel_run_is_correct_and_optimized() {
    let mut kq = wf_instance();
    let run = kq.parallelize_and_run(WF, 16).expect("pipeline runs");
    // "The resulting optimized pipeline has one sequential stage and three
    // parallel stages" — 4 of 5 stages parallelized, one combiner
    // eliminated (tr A-Z a-z feeding sort).
    assert_eq!(run.parallelized, (4, 5));
    assert_eq!(run.eliminated, 1);
    // Output sanity: count-ordered word frequencies.
    let first = run.output.lines().next().expect("nonempty output");
    let count: i64 = kumquat::stream::parse_padded_int(first)
        .expect("count field")
        .1;
    assert!(count > 1, "most frequent word should repeat: {first:?}");
}

#[test]
fn facade_reports_accumulate_unique_commands() {
    let mut kq = wf_instance();
    kq.parallelize_and_run(WF, 4).unwrap();
    // Five stages, five unique commands: every one is either synthesized
    // (one report) or resolved statically by the effect lattice.
    let resolved = kq.reports().len() + kq.lattice_short_circuits();
    assert_eq!(resolved, 5);
    assert!(
        kq.lattice_short_circuits() >= 1,
        "WF contains stateless stages the lattice should short-circuit"
    );
    // Re-running the same pipeline must not re-synthesize.
    kq.parallelize_and_run(WF, 8).unwrap();
    assert_eq!(kq.reports().len() + kq.lattice_short_circuits(), resolved);
}

#[test]
fn divergence_detection_guards_outputs() {
    // A correct pipeline through the façade must verify; this exercises
    // the verification path itself.
    let mut kq = Kumquat::new();
    kq.write_file("/f", "3\n1\n2\n1\n");
    let run = kq
        .parallelize_and_run("cat /f | sort -n | uniq", 3)
        .unwrap();
    assert_eq!(run.output, "1\n2\n3\n");
}

#[test]
fn multi_statement_scripts_work_through_facade() {
    let mut kq = Kumquat::new();
    kq.write_file("/f", "b\na\nc\na\n");
    let run = kq
        .parallelize_and_run("cat /f | sort > /sorted\ncat /sorted | uniq -c", 4)
        .unwrap();
    assert_eq!(run.output, "      2 a\n      1 b\n      1 c\n");
}
