//! The headline end-to-end property over the whole corpus: for every one
//! of the 70 benchmark scripts, the KumQuat-parallelized pipeline produces
//! exactly the serial output — at multiple worker counts, with and without
//! the Theorem 5 optimization, on real threads and in measured mode.
//! (The paper: "The generated parallel pipelines all produce correct
//! outputs (same outputs as the original scripts).")

use kq_coreutils::ExecContext;
use kq_pipeline::exec::{run_parallel, run_parallel_measured, run_serial};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale};

#[test]
fn all_seventy_scripts_parallelize_correctly() {
    let scale = Scale {
        input_bytes: 24_000,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    let mut parallelized_total = 0usize;
    let mut stage_total = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xC0FFEE);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let plan = planner.plan(
            &parsed,
            &ctx,
            kq_workloads::planning_sample(&sample, 16_000),
        );

        let serial = run_serial(&parsed, &ctx)
            .unwrap_or_else(|e| panic!("{}/{} serial: {e}", script.suite.dir(), script.id));

        // Real threads, optimized, w = 3.
        let threaded = run_parallel(&parsed, &plan, &ctx, 3, true)
            .unwrap_or_else(|e| panic!("{}/{} threaded: {e}", script.suite.dir(), script.id));
        assert_eq!(
            threaded.output,
            serial.output,
            "{}/{} diverged (threads, w=3, optimized)",
            script.suite.dir(),
            script.id
        );

        // Measured mode, unoptimized, w = 5.
        let measured = run_parallel_measured(&parsed, &plan, &ctx, 5, false)
            .unwrap_or_else(|e| panic!("{}/{} measured: {e}", script.suite.dir(), script.id));
        assert_eq!(
            measured.output,
            serial.output,
            "{}/{} diverged (measured, w=5, unoptimized)",
            script.suite.dir(),
            script.id
        );

        let (k, n) = plan.parallelized_counts();
        parallelized_total += k;
        stage_total += n;
    }
    // Aggregate shape versus the paper's 325/427 (76.1%).
    let ratio = parallelized_total as f64 / stage_total as f64;
    assert!(
        (0.6..=0.95).contains(&ratio),
        "parallelized ratio {ratio:.2} ({parallelized_total}/{stage_total}) far from the paper's 0.76"
    );
}

#[test]
fn worker_count_does_not_change_output() {
    // Deeper sweep on a boundary-sensitive pipeline (uniq -c merges across
    // splits at every worker count).
    let scale = Scale {
        input_bytes: 30_000,
    };
    let script = corpus().iter().find(|s| s.id == "wf.sh").unwrap();
    let ctx = ExecContext::default();
    let env = setup(script, &ctx, &scale, 11);
    let parsed = parse_script(script.text, &env).unwrap();
    let sample = ctx.vfs.read(&env["IN"]).unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&parsed, &ctx, &sample[..16_000]);
    let serial = run_serial(&parsed, &ctx).unwrap();
    for w in 1..=9 {
        let par = run_parallel(&parsed, &plan, &ctx, w, true).unwrap();
        assert_eq!(par.output, serial.output, "w={w}");
    }
}

#[test]
fn different_seeds_still_verify() {
    // The corpus generators are seeded; correctness must not depend on a
    // lucky seed.
    let scale = Scale {
        input_bytes: 12_000,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    let script = corpus()
        .iter()
        .find(|s| s.id == "4.sh" && s.suite.dir() == "analytics-mts")
        .unwrap();
    for seed in [1u64, 99, 12345] {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, seed);
        let parsed = parse_script(script.text, &env).unwrap();
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let plan = planner.plan(&parsed, &ctx, &sample[..sample.len().min(8_000)]);
        let serial = run_serial(&parsed, &ctx).unwrap();
        let par = run_parallel(&parsed, &plan, &ctx, 4, true).unwrap();
        assert_eq!(par.output, serial.output, "seed {seed}");
    }
}
