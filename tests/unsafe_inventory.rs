//! The workspace's unsafe-code inventory.
//!
//! Policy: `unsafe` lives only at the I/O and data-plane boundaries —
//! `kq-io` (mmap, madvise, flock), `kq-stream` (the mapped-region Bytes
//! backing), and the vendored `crates/shims/*` (the libc shim itself) —
//! and every other crate *denies* it at the crate root, so a stray
//! `unsafe` block elsewhere is a compile error, not a review hazard.
//! This test pins both halves of the policy by scanning the tree, so the
//! allowed set cannot grow silently.

use std::path::{Path, PathBuf};

/// Crate directories (relative to the workspace root) allowed to contain
/// `unsafe` code.
const ALLOWED_UNSAFE: &[&str] = &["crates/kq-io", "crates/kq-stream", "crates/shims"];

/// Crate roots that must carry `#![deny(unsafe_code)]`.
const DENYING_ROOTS: &[&str] = &[
    "src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/kq-pattern/src/lib.rs",
    "crates/kq-coreutils/src/lib.rs",
    "crates/kq-dsl/src/lib.rs",
    "crates/kq-synth/src/lib.rs",
    "crates/kq-pipeline/src/lib.rs",
    "crates/kq-workloads/src/lib.rs",
    "crates/kq-analyze/src/lib.rs",
    "crates/kq-trace/src/lib.rs",
    "crates/cli/src/lib.rs",
    "crates/bench/src/lib.rs",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// True when the file uses the `unsafe` keyword outside comments.
/// (`unsafe_code` in lint attributes does not count: the keyword check
/// requires a non-identifier character after `unsafe`.)
fn uses_unsafe(path: &Path) -> bool {
    let text = std::fs::read_to_string(path).unwrap();
    for line in text.lines() {
        let code = line.split("//").next().unwrap_or("");
        let mut rest = code;
        while let Some(pos) = rest.find("unsafe") {
            let before_ok = pos == 0
                || !rest[..pos]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = rest[pos + "unsafe".len()..].chars().next();
            let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                return true;
            }
            rest = &rest[pos + "unsafe".len()..];
        }
    }
    false
}

#[test]
fn unsafe_code_stays_inside_the_io_boundary() {
    let root = workspace_root();
    let mut files = Vec::new();
    rust_files(&root, &mut files);
    assert!(files.len() > 50, "workspace scan found too few files");
    let mut violations = Vec::new();
    for file in &files {
        if !uses_unsafe(file) {
            continue;
        }
        let rel = file.strip_prefix(&root).unwrap();
        // This scanner necessarily spells the keyword in its own strings.
        if rel == Path::new("tests/unsafe_inventory.rs") {
            continue;
        }
        if !ALLOWED_UNSAFE
            .iter()
            .any(|allowed| rel.starts_with(allowed))
        {
            violations.push(rel.display().to_string());
        }
    }
    assert!(
        violations.is_empty(),
        "unsafe code outside the allowed boundary crates ({ALLOWED_UNSAFE:?}): \
         {violations:?}"
    );
}

#[test]
fn every_other_crate_root_denies_unsafe_code() {
    let root = workspace_root();
    let mut missing = Vec::new();
    for rel in DENYING_ROOTS {
        let text = std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
        if !text.contains("#![deny(unsafe_code)]") {
            missing.push(*rel);
        }
    }
    assert!(
        missing.is_empty(),
        "crate roots missing #![deny(unsafe_code)]: {missing:?}"
    );
}
