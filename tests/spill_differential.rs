//! Spill differential suite: barrier folds running under a deliberately
//! tiny `--spill-mb` budget (every run goes to disk) must produce output
//! byte-identical to the serial oracle, on both spill-capable executors,
//! at several worker counts — and must never leave run files behind in
//! the spill directory, whether the run succeeds, fails, or exits early.
//!
//! Run files are unlinked the moment they are mapped back (see
//! `kq_io::RunWriter`), so "no leftovers" is structural rather than a
//! cleanup pass: these tests pin that property end-to-end through both
//! executors' success and teardown paths.

use kq_coreutils::ExecContext;
use kq_dsl::SpillPolicy;
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::{parse_script, Script};
use kq_pipeline::plan::{PlannedScript, Planner};
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Barrier-bearing scripts: a pure sort, a sort feeding a stitch-combined
/// `uniq -c`, and an add-combined `wc`.
const SCRIPTS: &[&str] = &[
    "cat /in.txt | sort",
    "cat /in.txt | sort | uniq -c",
    "cat /in.txt | wc",
];

/// A fresh spill directory for one test, removed (and asserted empty) by
/// `assert_clean`.
fn spill_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kq-spill-diff-{}-{tag}", std::process::id()))
}

/// Asserts no run file outlived the runs, then removes the directory.
fn assert_clean(dir: &Path) {
    if !dir.exists() {
        return; // nothing was ever spilled there — also clean
    }
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "run files left behind in {}: {leftovers:?}",
        dir.display()
    );
    std::fs::remove_dir(dir).unwrap();
}

/// A budget of one byte: every completed run spills.
fn tiny_policy(dir: &Path) -> SpillPolicy {
    SpillPolicy {
        budget_bytes: 1,
        dir: Some(dir.to_path_buf()),
    }
}

fn plan_over(script_text: &str, input: &str) -> (Script, PlannedScript, ExecContext) {
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(script_text, &env).unwrap();
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", input);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, input);
    (script, plan, ctx)
}

/// Enough lines, with repeated keys, that a small chunk size yields many
/// runs per fold.
fn stress_input() -> String {
    let mut input = String::new();
    for i in 0..2_000 {
        input.push_str(&format!("key {} value {}\n", i % 13, i * 31 % 997));
    }
    input
}

#[test]
fn spilled_streaming_matches_serial_across_corpus_and_workers() {
    let dir = spill_dir("streaming");
    let input = stress_input();
    for script_text in SCRIPTS {
        let (script, plan, ctx) = plan_over(script_text, &input);
        let serial = run_serial(&script, &ctx).unwrap();
        for workers in [1, 4] {
            let opts = StreamingOptions {
                workers,
                chunk_bytes: 256,
                queue_depth: 2,
                fuse_streamable: true,
                spill: Some(tiny_policy(&dir)),
            };
            let got = run_streaming(&script, &plan, &ctx, &opts).unwrap();
            assert_eq!(
                got.output, serial.output,
                "{script_text} w={workers} diverged under spilling"
            );
            // Every barrier fold in a sort-bearing script must actually
            // have hit the disk under the one-byte budget.
            if script_text.contains("sort") {
                let spilled: u64 = got
                    .timings
                    .statements
                    .iter()
                    .flatten()
                    .filter_map(|t| t.spill)
                    .map(|sp| sp.runs_spilled)
                    .sum();
                assert!(spilled > 0, "{script_text} w={workers} never spilled");
            }
        }
    }
    assert_clean(&dir);
}

#[test]
fn spilled_dataflow_matches_serial_across_corpus_and_workers() {
    let dir = spill_dir("dataflow");
    let input = stress_input();
    for script_text in SCRIPTS {
        let (script, plan, ctx) = plan_over(script_text, &input);
        let serial = run_serial(&script, &ctx).unwrap();
        for workers in [1, 4] {
            let opts = DataflowOptions {
                workers,
                chunk: ChunkSizing::Fixed(256),
                queue: QueueCredit::Fixed(2),
                fuse_streamable: true,
                spill: Some(tiny_policy(&dir)),
            };
            let got = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
            assert_eq!(
                got.output, serial.output,
                "{script_text} w={workers} diverged under spilling"
            );
            if script_text.contains("sort") {
                let spilled: u64 = got
                    .timings
                    .statements
                    .iter()
                    .flatten()
                    .filter_map(|t| t.spill)
                    .map(|sp| sp.runs_spilled)
                    .sum();
                assert!(spilled > 0, "{script_text} w={workers} never spilled");
            }
        }
    }
    assert_clean(&dir);
}

#[test]
fn failed_run_leaves_no_spill_files() {
    // The failing stage sits downstream of the spilling sort (`comm`
    // needs a dictionary file nobody wrote), so the fold completes —
    // spilling and mapping its runs — before the error surfaces. Every
    // run file must already be unlinked by then.
    let dir = spill_dir("failure");
    let (script, plan, ctx) = plan_over("cat /in.txt | sort | comm -23 - /nodict", &stress_input());
    for workers in [1, 4] {
        let sopts = StreamingOptions {
            workers,
            chunk_bytes: 256,
            queue_depth: 2,
            fuse_streamable: true,
            spill: Some(tiny_policy(&dir)),
        };
        run_streaming(&script, &plan, &ctx, &sopts).expect_err("comm without /nodict must fail");
        let dopts = DataflowOptions {
            workers,
            chunk: ChunkSizing::Fixed(256),
            queue: QueueCredit::Fixed(2),
            fuse_streamable: true,
            spill: Some(tiny_policy(&dir)),
        };
        run_dataflow(&script, &plan, &ctx, &dopts).expect_err("comm without /nodict must fail");
    }
    assert_clean(&dir);
}

#[test]
fn early_exit_run_leaves_no_spill_files() {
    // A bounded consumer downstream of the spilling sort cancels the
    // fold's emit after one line: the mapped (already-unlinked) merge
    // output is dropped mid-stream, and nothing may remain on disk.
    let dir = spill_dir("early-exit");
    let input = stress_input();
    let (script, plan, ctx) = plan_over("cat /in.txt | sort | head -n 1", &input);
    let serial = run_serial(&script, &ctx).unwrap();
    for workers in [1, 4] {
        let sopts = StreamingOptions {
            workers,
            chunk_bytes: 256,
            queue_depth: 2,
            fuse_streamable: true,
            spill: Some(tiny_policy(&dir)),
        };
        let got = run_streaming(&script, &plan, &ctx, &sopts).unwrap();
        assert_eq!(got.output, serial.output);
        let dopts = DataflowOptions {
            workers,
            chunk: ChunkSizing::Fixed(256),
            queue: QueueCredit::Fixed(2),
            fuse_streamable: true,
            spill: Some(tiny_policy(&dir)),
        };
        let got = run_dataflow(&script, &plan, &ctx, &dopts).unwrap();
        assert_eq!(got.output, serial.output);
    }
    assert_clean(&dir);
}
