//! The cancellation differential suite: pipelines ending in a
//! prefix-bounded consumer (`head -n k`, `sed kq`) must produce output
//! byte-identical to serial while the streaming executor cancels their
//! upstream early.
//!
//! The corpus is full of `… | sort -nr | head -n 1`-shaped scripts (11 of
//! its statements terminate in `head`/`sed kq`); each runs serial versus
//! streaming-with-early-exit at degenerate chunk sizes (1 byte → one
//! chunk per line, 700 B, 16 MiB → one chunk total) and w ∈ {1, 4}. A
//! separate watchdog test pins the point of the whole subsystem: a
//! cancelled 256 MiB producer terminates promptly *without draining its
//! input* — upstream work is O(first match), not O(file).

use kq_coreutils::ExecContext;
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale};
use std::collections::HashMap;

#[test]
fn prefix_bounded_corpus_scripts_match_serial_under_early_exit() {
    let scale = Scale {
        input_bytes: 10_000,
    };
    // One planner across scripts: combiners cache per command signature.
    let mut planner = Planner::new(SynthesisConfig::default());
    let mut covered: Vec<String> = Vec::new();
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xEA51);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        // Select scripts with a statement *terminating* in a bounded
        // consumer — the shape where cancellation saves the whole tail.
        let bounded_terminal = parsed.statements.iter().any(|st| {
            st.stages
                .last()
                .is_some_and(|stage| kq_synth::prefix_bound(&stage.command).is_some())
        });
        if !bounded_terminal {
            continue;
        }
        let id = format!("{}/{}", script.suite.dir(), script.id);
        covered.push(id.clone());
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);
        let serial = run_serial(&parsed, &ctx).unwrap_or_else(|e| panic!("{id} serial: {e}"));
        for workers in [1usize, 4] {
            for chunk_bytes in [1usize, 700, 16 << 20] {
                let opts = StreamingOptions {
                    workers,
                    chunk_bytes,
                    queue_depth: 2,
                    fuse_streamable: true,
                    spill: None,
                };
                let got = run_streaming(&parsed, &plan, &ctx, &opts)
                    .unwrap_or_else(|e| panic!("{id} streaming (chunk={chunk_bytes}): {e}"));
                assert_eq!(
                    got.output, serial.output,
                    "{id}: early-exit streaming diverged (w={workers}, chunk={chunk_bytes})"
                );
            }
        }
    }
    // The ISSUE counts 11 head-/sed kq-terminated scripts; a corpus edit
    // that silently empties this suite should fail loudly.
    assert!(
        covered.len() >= 11,
        "expected >= 11 prefix-bounded corpus scripts, found {}: {covered:?}",
        covered.len()
    );
}

/// A cancelled 256 MiB producer must terminate promptly without draining
/// its input: the bounded consumer's demand is satisfied by the very
/// first matching line, so upstream work is O(first match) bytes — pinned
/// objectively via the grep segment's consumed-byte count, with a
/// watchdog so a cancellation regression hangs the test instead of
/// silently scanning everything.
#[test]
fn cancelled_256mib_producer_terminates_promptly_without_draining() {
    const TOTAL: usize = 256 << 20;
    let mut input = String::with_capacity(TOTAL + (1 << 20));
    input.push_str("needle alpha\n");
    let filler_block = "haystack filler line with nothing to find here\n".repeat(1 << 14);
    while input.len() < TOTAL {
        input.push_str(&filler_block);
    }
    let input_len = input.len();
    let ctx = ExecContext::default();
    ctx.vfs.write("/big", input); // moves the buffer; no copy
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script("cat /big | grep needle | head -n 1", &env).unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let sample = "needle alpha\nhaystack filler line\n".repeat(40);
    let plan = planner.plan(&script, &ctx, &sample);

    let opts = StreamingOptions {
        workers: 2,
        chunk_bytes: 64 * 1024,
        queue_depth: 2,
        fuse_streamable: true,
        spill: None,
    };
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let result = run_streaming(&script, &plan, &ctx, &opts);
        done_tx.send(()).ok();
        result
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("cancelled pipeline hung: upstream kept draining after the bound was met");
    let got = handle.join().expect("streaming thread panicked").unwrap();
    assert_eq!(got.output, "needle alpha\n");

    let stages = &got.timings.statements[0];
    let head = stages
        .iter()
        .find(|s| s.label.starts_with("head"))
        .expect("head stage timing");
    assert!(
        head.early_exit.is_some(),
        "head must report its early exit: {head:?}"
    );
    let grep = stages
        .iter()
        .find(|s| s.label.starts_with("grep"))
        .expect("grep stage timing");
    assert!(
        grep.bytes_in < 32 << 20,
        "grep consumed {} of {input_len} bytes: cancellation did not stop the producer",
        grep.bytes_in
    );
}
