//! Failure injection: how the synthesizer and the executors behave when a
//! command violates KumQuat's model (determinism, stream-function purity)
//! or fails outright.
//!
//! The paper's §3 model requires commands to be *deterministic* functions
//! `Stream -> Stream`. These tests inject each violation and pin the
//! system's response: synthesis refuses (returns no combiner), planners
//! degrade to sequential, and executors surface honest errors instead of
//! wrong output.

use kumquat::coreutils::{Bytes, CmdError, Command, ExecContext, UnixCommand};
use kumquat::pipeline::plan::Planner;
use kumquat::pipeline::streaming::{run_streaming, StreamingOptions};
use kumquat::pipeline::{InputSource, Script, Stage, Statement};
use kumquat::synth::{synthesize, SynthesisConfig, SynthesisOutcome};
use kumquat::Kumquat;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A stateful "command": output depends on how often it has been called.
/// Violates determinism the way a command reading a cache or a tempfile
/// would.
struct StatefulCounter {
    calls: AtomicUsize,
}

impl UnixCommand for StatefulCounter {
    fn display(&self) -> String {
        "stateful-counter".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(Bytes::from(format!(
            "{}:{}\n",
            n,
            input.as_str().lines().count()
        )))
    }
}

/// A command that fails on inputs containing a poison line, the way real
/// commands exit non-zero on malformed records.
struct PoisonSensitive;

impl UnixCommand for PoisonSensitive {
    fn display(&self) -> String {
        "poison-sensitive".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        if input.as_str().lines().any(|l| l == "POISON") {
            return Err(CmdError::new("poison-sensitive", "bad record"));
        }
        Ok(Bytes::from(input.as_str().to_uppercase()))
    }
}

#[test]
fn stateful_command_synthesizes_nothing() {
    let cmd = Command::custom(
        vec!["stateful-counter".into()],
        Box::new(StatefulCounter {
            calls: AtomicUsize::new(0),
        }),
    );
    let ctx = ExecContext::default();
    let report = synthesize(&cmd, &ctx, &SynthesisConfig::default());
    assert!(
        matches!(report.outcome, SynthesisOutcome::NoCombiner { .. }),
        "stateful command must not synthesize; got {:?}",
        report.plausible()
    );
}

#[test]
fn command_failing_on_some_inputs_still_synthesizes_from_survivors() {
    // PoisonSensitive only fails on a line the generator never produces;
    // for everything else it is a per-line map, so concat synthesizes.
    let cmd = Command::custom(vec!["poison-sensitive".into()], Box::new(PoisonSensitive));
    let ctx = ExecContext::default();
    let report = synthesize(&cmd, &ctx, &SynthesisConfig::default());
    let combiner = report
        .combiner()
        .expect("poison-free probes should synthesize concat");
    assert!(combiner.is_concat(), "got {}", combiner.primary());
}

#[test]
fn nondeterministic_stage_stays_sequential_and_divergence_is_caught() {
    // `shuf` synthesizes no combiner, so the planner keeps it sequential.
    // But nondeterminism still breaks the run-level verification — serial
    // and parallel runs shuffle differently — and `parallelize_and_run`
    // must report that rather than return either output as "the" answer.
    let mut kq = Kumquat::new();
    let input: String = (0..200).map(|i| format!("line{i}\n")).collect();
    kq.write_file("/in.txt", &input);
    let result = kq.parallelize_and_run("cat /in.txt | shuf", 4);
    let err = result.expect_err("two shuf runs cannot agree");
    assert!(
        err.to_string().contains("diverged"),
        "unexpected error: {err}"
    );
}

#[test]
fn nondeterminism_laundered_through_sort_is_fine() {
    // A canonicalizing stage downstream restores determinism: the overall
    // pipeline is a deterministic stream function even though one stage
    // is not, and parallelization of the *other* stages proceeds.
    let mut kq = Kumquat::new();
    let input: String = (0..200)
        .map(|i| format!("line{}\n", (i * 31) % 100))
        .collect();
    kq.write_file("/in.txt", &input);
    let run = kq
        .parallelize_and_run("cat /in.txt | shuf | sort | uniq -c", 4)
        .expect("sort|uniq -c after shuf is deterministic");
    assert!(run.output.contains(" line0\n"), "got: {}", run.output);
    // shuf itself stayed sequential; sort and uniq -c parallelized.
    assert_eq!(run.parallelized.1, 3, "three stages total");
    assert!(
        run.parallelized.0 >= 2,
        "sort and uniq -c should parallelize"
    );
}

#[test]
fn poisoned_input_error_propagates_from_parallel_pieces() {
    // When a piece fails mid-parallel-run, the executor returns the
    // command's own error (no partial output, no hang).
    let mut kq = Kumquat::new();
    let mut input = String::new();
    for i in 0..50 {
        input.push_str(&format!("{i}\n"));
    }
    input.push_str("oops\n");
    kq.write_file("/in.txt", &input);
    // grep -v passes everything through; sed 's/oops/&/' keeps it; use a
    // command that errors: comm demands sorted input.
    let err = kq
        .parallelize_and_run("cat /in.txt | comm -23 - /dict", 4)
        .expect_err("comm without the dict file must fail");
    assert!(
        err.to_string().contains("No such file") || err.to_string().contains("comm"),
        "unexpected error: {err}"
    );
}

#[test]
fn missing_input_file_fails_before_spawning_workers() {
    let mut kq = Kumquat::new();
    let err = kq
        .parallelize_and_run("cat /nope.txt | sort", 8)
        .expect_err("missing file");
    assert!(err.to_string().contains("No such file"), "{err}");
}

#[test]
fn foreign_bytes_fail_consistently_piped_and_as_file_operand() {
    // ROADMAP's non-UTF-8 inconsistency, pinned end-to-end: a foreign
    // input file fails the same way whether the bytes reach the command
    // through a pipe (`cat /foreign | sort`) or as a file operand
    // (`sort /foreign`). Before the fix the operand path silently
    // produced lossily-transcoded output.
    let mut kq = Kumquat::new();
    kq.write_file("/foreign", vec![0xffu8, 0xfe, b'x', b'\n']);
    let piped = kq
        .parallelize_and_run("cat /foreign | sort", 2)
        .expect_err("piped foreign bytes must fail");
    let operand = kq
        .parallelize_and_run("sort /foreign", 2)
        .expect_err("file-operand foreign bytes must fail");
    for err in [&piped, &operand] {
        assert!(err.to_string().contains("not valid UTF-8"), "{err}");
    }
}

#[test]
fn zero_length_input_runs_through_every_executor() {
    let mut kq = Kumquat::new();
    kq.write_file("/empty.txt", "");
    let run = kq
        .parallelize_and_run("cat /empty.txt | sort | uniq -c | sort -rn", 8)
        .unwrap();
    assert_eq!(run.output, "");
}

/// Builds `cat /in.txt | <prefix...> | poison-sensitive | <tail...>` as a
/// Script (the parser cannot produce custom commands), with a manual
/// concat combiner registered so the planner keeps the poison stage
/// parallel — and, since its probe outputs are streams, *chunk-local*,
/// i.e. on the streaming executor's fast path.
fn poison_script(
    ctx: &ExecContext,
    prefix: &[&str],
    tail: &[&str],
) -> (Script, kumquat::pipeline::PlannedScript) {
    use kumquat::dsl::ast::{Candidate, RecOp};
    use kumquat::synth::SynthesizedCombiner;
    let mut stages: Vec<Stage> = prefix
        .iter()
        .map(|t| Stage {
            command: kumquat::coreutils::parse_command(t).unwrap(),
            span: Default::default(),
        })
        .collect();
    stages.push(Stage {
        command: Command::custom(vec!["poison-sensitive".into()], Box::new(PoisonSensitive)),
        span: Default::default(),
    });
    for t in tail {
        stages.push(Stage {
            command: kumquat::coreutils::parse_command(t).unwrap(),
            span: Default::default(),
        });
    }
    let script = Script {
        statements: vec![Statement {
            stages,
            input: InputSource::Files(vec!["/in.txt".to_owned()]),
            output: None,
            span: Default::default(),
        }],
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    planner.register_manual(
        "poison-sensitive",
        SynthesizedCombiner::from_plausible(vec![Candidate::rec(RecOp::Concat)]),
    );
    let sample: String = (0..50).map(|i| format!("clean line {i}\n")).collect();
    let plan = planner.plan(&script, ctx, &sample);
    (script, plan)
}

/// Runs `run_streaming` on another thread under a watchdog: the streaming
/// pipeline must *return* (tearing down every worker — scoped threads
/// cannot leak past the call) within the timeout, not hang on a blocked
/// channel.
fn streaming_under_watchdog(
    ctx: ExecContext,
    script: Script,
    plan: kumquat::pipeline::PlannedScript,
    opts: StreamingOptions,
) -> Result<Bytes, CmdError> {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let result = run_streaming(&script, &plan, &ctx, &opts).map(|r| r.output);
        done_tx.send(()).ok();
        result
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("streaming pipeline hung: teardown did not complete within the watchdog");
    handle.join().expect("streaming thread panicked")
}

#[test]
fn streaming_mid_pipeline_error_tears_down_promptly() {
    // The poison line lands mid-stream: upstream chunks have already been
    // forwarded, downstream stages (a barrier sort and a chunk-local tr)
    // are already consuming, and the queues are depth-1 so every channel
    // is under backpressure when the failing chunk is hit.
    let ctx = ExecContext::default();
    let mut input = String::new();
    for i in 0..400 {
        input.push_str(&format!("line number {i}\n"));
        if i == 200 {
            input.push_str("POISON\n");
        }
    }
    ctx.vfs.write("/in.txt", input);
    let (script, plan) = poison_script(&ctx, &[], &["tr a-z A-Z", "sort"]);
    let opts = StreamingOptions {
        workers: 2,
        chunk_bytes: 64,
        queue_depth: 1,
        fuse_streamable: true,
        spill: None,
    };
    let err = streaming_under_watchdog(ctx, script, plan, opts)
        .expect_err("the poison chunk must fail the run");
    assert!(
        err.to_string().contains("poison-sensitive"),
        "error not attributed to the failing stage: {err}"
    );
}

#[test]
fn streaming_error_downstream_of_sequential_stage_tears_down() {
    // The failing stage sits *after* a sequential stage (sed 1d gathers
    // everything first), so the error propagates backwards across a
    // gather boundary and forwards into a barrier (uniq -c).
    let ctx = ExecContext::default();
    let mut input = String::new();
    for i in 0..300 {
        input.push_str(&format!("row {i}\n"));
    }
    input.push_str("POISON\n");
    ctx.vfs.write("/in.txt", input);
    let (script, plan) = poison_script(&ctx, &["sed 1d"], &["uniq -c"]);
    let opts = StreamingOptions {
        workers: 1,
        chunk_bytes: 32,
        queue_depth: 1,
        fuse_streamable: true,
        spill: None,
    };
    let err = streaming_under_watchdog(ctx, script, plan, opts)
        .expect_err("poison after the gather stage must fail the run");
    assert!(err.to_string().contains("poison-sensitive"), "{err}");
}

#[test]
fn streaming_error_downstream_of_streamable_run_tears_down() {
    // The failing stage is the *last* segment; the streamable run ahead
    // of it (tr | cut fused) must notice the teardown and stop rather
    // than chain-process the rest of the stream, and the feeder must
    // unwind behind it.
    let ctx = ExecContext::default();
    let mut input = String::new();
    for i in 0..2_000 {
        input.push_str(&format!("line number {i}\n"));
        if i == 40 {
            input.push_str("POISON\n");
        }
    }
    ctx.vfs.write("/in.txt", input);
    let (script, plan) = poison_script(&ctx, &["tr a-z A-Z", "cut -d ' ' -f 1-3"], &[]);
    let opts = StreamingOptions {
        workers: 2,
        chunk_bytes: 64,
        queue_depth: 1,
        fuse_streamable: true,
        spill: None,
    };
    let err = streaming_under_watchdog(ctx, script, plan, opts)
        .expect_err("poison in the final segment must fail the run");
    assert!(err.to_string().contains("poison-sensitive"), "{err}");
}

#[test]
fn streaming_clean_run_of_custom_stage_matches_serial() {
    // Sanity check on the same harness without poison: the custom stage
    // uppercases, and streaming equals serial.
    let ctx = ExecContext::default();
    let input: String = (0..200).map(|i| format!("word {i}\n")).collect();
    ctx.vfs.write("/in.txt", input);
    let (script, plan) = poison_script(&ctx, &[], &["sort", "uniq"]);
    let serial = kumquat::pipeline::exec::run_serial(&script, &ctx).unwrap();
    let opts = StreamingOptions {
        workers: 2,
        chunk_bytes: 128,
        queue_depth: 2,
        fuse_streamable: true,
        spill: None,
    };
    let got = streaming_under_watchdog(ctx, script, plan, opts).unwrap();
    assert_eq!(got, serial.output);
}
