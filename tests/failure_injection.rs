//! Failure injection: how the synthesizer and the executors behave when a
//! command violates KumQuat's model (determinism, stream-function purity)
//! or fails outright.
//!
//! The paper's §3 model requires commands to be *deterministic* functions
//! `Stream -> Stream`. These tests inject each violation and pin the
//! system's response: synthesis refuses (returns no combiner), planners
//! degrade to sequential, and executors surface honest errors instead of
//! wrong output.

use kumquat::coreutils::{Bytes, CmdError, Command, ExecContext, UnixCommand};
use kumquat::synth::{synthesize, SynthesisConfig, SynthesisOutcome};
use kumquat::Kumquat;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A stateful "command": output depends on how often it has been called.
/// Violates determinism the way a command reading a cache or a tempfile
/// would.
struct StatefulCounter {
    calls: AtomicUsize,
}

impl UnixCommand for StatefulCounter {
    fn display(&self) -> String {
        "stateful-counter".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(Bytes::from(format!(
            "{}:{}\n",
            n,
            input.as_str().lines().count()
        )))
    }
}

/// A command that fails on inputs containing a poison line, the way real
/// commands exit non-zero on malformed records.
struct PoisonSensitive;

impl UnixCommand for PoisonSensitive {
    fn display(&self) -> String {
        "poison-sensitive".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        if input.as_str().lines().any(|l| l == "POISON") {
            return Err(CmdError::new("poison-sensitive", "bad record"));
        }
        Ok(Bytes::from(input.as_str().to_uppercase()))
    }
}

#[test]
fn stateful_command_synthesizes_nothing() {
    let cmd = Command::custom(
        vec!["stateful-counter".into()],
        Box::new(StatefulCounter {
            calls: AtomicUsize::new(0),
        }),
    );
    let ctx = ExecContext::default();
    let report = synthesize(&cmd, &ctx, &SynthesisConfig::default());
    assert!(
        matches!(report.outcome, SynthesisOutcome::NoCombiner { .. }),
        "stateful command must not synthesize; got {:?}",
        report.plausible()
    );
}

#[test]
fn command_failing_on_some_inputs_still_synthesizes_from_survivors() {
    // PoisonSensitive only fails on a line the generator never produces;
    // for everything else it is a per-line map, so concat synthesizes.
    let cmd = Command::custom(vec!["poison-sensitive".into()], Box::new(PoisonSensitive));
    let ctx = ExecContext::default();
    let report = synthesize(&cmd, &ctx, &SynthesisConfig::default());
    let combiner = report
        .combiner()
        .expect("poison-free probes should synthesize concat");
    assert!(combiner.is_concat(), "got {}", combiner.primary());
}

#[test]
fn nondeterministic_stage_stays_sequential_and_divergence_is_caught() {
    // `shuf` synthesizes no combiner, so the planner keeps it sequential.
    // But nondeterminism still breaks the run-level verification — serial
    // and parallel runs shuffle differently — and `parallelize_and_run`
    // must report that rather than return either output as "the" answer.
    let mut kq = Kumquat::new();
    let input: String = (0..200).map(|i| format!("line{i}\n")).collect();
    kq.write_file("/in.txt", &input);
    let result = kq.parallelize_and_run("cat /in.txt | shuf", 4);
    let err = result.expect_err("two shuf runs cannot agree");
    assert!(
        err.to_string().contains("diverged"),
        "unexpected error: {err}"
    );
}

#[test]
fn nondeterminism_laundered_through_sort_is_fine() {
    // A canonicalizing stage downstream restores determinism: the overall
    // pipeline is a deterministic stream function even though one stage
    // is not, and parallelization of the *other* stages proceeds.
    let mut kq = Kumquat::new();
    let input: String = (0..200)
        .map(|i| format!("line{}\n", (i * 31) % 100))
        .collect();
    kq.write_file("/in.txt", &input);
    let run = kq
        .parallelize_and_run("cat /in.txt | shuf | sort | uniq -c", 4)
        .expect("sort|uniq -c after shuf is deterministic");
    assert!(run.output.contains(" line0\n"), "got: {}", run.output);
    // shuf itself stayed sequential; sort and uniq -c parallelized.
    assert_eq!(run.parallelized.1, 3, "three stages total");
    assert!(
        run.parallelized.0 >= 2,
        "sort and uniq -c should parallelize"
    );
}

#[test]
fn poisoned_input_error_propagates_from_parallel_pieces() {
    // When a piece fails mid-parallel-run, the executor returns the
    // command's own error (no partial output, no hang).
    let mut kq = Kumquat::new();
    let mut input = String::new();
    for i in 0..50 {
        input.push_str(&format!("{i}\n"));
    }
    input.push_str("oops\n");
    kq.write_file("/in.txt", &input);
    // grep -v passes everything through; sed 's/oops/&/' keeps it; use a
    // command that errors: comm demands sorted input.
    let err = kq
        .parallelize_and_run("cat /in.txt | comm -23 - /dict", 4)
        .expect_err("comm without the dict file must fail");
    assert!(
        err.to_string().contains("No such file") || err.to_string().contains("comm"),
        "unexpected error: {err}"
    );
}

#[test]
fn missing_input_file_fails_before_spawning_workers() {
    let mut kq = Kumquat::new();
    let err = kq
        .parallelize_and_run("cat /nope.txt | sort", 8)
        .expect_err("missing file");
    assert!(err.to_string().contains("No such file"), "{err}");
}

#[test]
fn zero_length_input_runs_through_every_executor() {
    let mut kq = Kumquat::new();
    kq.write_file("/empty.txt", "");
    let run = kq
        .parallelize_and_run("cat /empty.txt | sort | uniq -c | sort -rn", 8)
        .unwrap();
    assert_eq!(run.output, "");
}
