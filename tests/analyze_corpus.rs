//! Corpus-wide properties of the `kumquat check` static analysis pass:
//!
//! 1. the effect lattice never claims more than dynamic synthesis can
//!    prove (agreement, per unique corpus command);
//! 2. turning the lattice short-circuit on does not change a single byte
//!    of any emitted parallel script (plan identity), while skipping
//!    synthesis for a substantial fraction of unique commands;
//! 3. `check` is clean — even under `--deny-warnings` semantics — on all
//!    70 benchmark scripts;
//! 4. a deliberately broken fixture trips the hazard lints and makes the
//!    CLI exit nonzero.

use kq_analyze::EffectClass;
use kq_cli::{emit_script, EmitOptions};
use kq_coreutils::ExecContext;
use kq_pipeline::cache_key;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, planning_sample, setup, Scale};
use std::collections::HashMap;

const SCALE: Scale = Scale {
    input_bytes: 16_000,
};

/// (1) Agreement: for every unique stdin-reading command in the corpus,
/// the static classification is a *lower bound* on what synthesis
/// observes. `Stateless` promises the combiner is plain `concat`;
/// `PureParallelizable`/`CommutativeFold` promise a combiner exists.
/// Synthesis runs with the lattice off, so nothing here is circular.
#[test]
fn lattice_never_claims_more_than_synthesis_proves() {
    let mut planner = Planner::new(SynthesisConfig::default());
    planner.use_lattice = false;
    let mut seen: HashMap<String, String> = HashMap::new();
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &SCALE, 0xA9A1);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        for statement in &parsed.statements {
            for stage in &statement.stages {
                let cmd = &stage.command;
                if !cmd.reads_stdin() {
                    continue;
                }
                let key = cache_key(cmd);
                if seen.contains_key(&key) {
                    continue;
                }
                seen.insert(key, cmd.display().to_owned());
                let class = kq_analyze::classify(cmd);
                let combiner = planner.combiner_for(cmd, &ctx);
                match class {
                    EffectClass::Stateless => {
                        let combiner = combiner.unwrap_or_else(|| {
                            panic!("{}: Stateless but synthesis found nothing", cmd.display())
                        });
                        assert!(
                            combiner.is_concat(),
                            "{}: Stateless but synthesis did not certify concat",
                            cmd.display()
                        );
                    }
                    EffectClass::PureParallelizable | EffectClass::CommutativeFold => {
                        assert!(
                            combiner.is_some(),
                            "{}: classified {} but synthesis found no combiner",
                            cmd.display(),
                            class.as_str()
                        );
                    }
                    // No static promise to check.
                    EffectClass::OrderSensitive | EffectClass::Unknown => {}
                }
            }
        }
    }
    assert!(
        seen.len() >= 30,
        "corpus walk found only {} unique commands",
        seen.len()
    );
}

/// (2) Plan identity and short-circuit coverage: across the whole corpus,
/// the lattice-on planner emits byte-identical parallel scripts to the
/// synthesis-only planner, while short-circuiting synthesis for at least
/// 25% of the unique commands it resolves.
#[test]
fn short_circuited_plans_are_byte_identical_across_the_corpus() {
    let mut with = Planner::new(SynthesisConfig::default());
    let mut without = Planner::new(SynthesisConfig::default());
    without.use_lattice = false;
    for script in corpus() {
        let emitted = |planner: &mut Planner| {
            let ctx = ExecContext::default();
            let env = setup(script, &ctx, &SCALE, 0x1D57);
            let parsed = parse_script(script.text, &env).unwrap();
            let sample = ctx.vfs.read(&env["IN"]).unwrap();
            let plan = planner.plan(&parsed, &ctx, planning_sample(&sample, 12_000));
            emit_script(&parsed, &plan, &EmitOptions::default()).script
        };
        assert_eq!(
            emitted(&mut with),
            emitted(&mut without),
            "{}/{}: lattice short-circuit changed the emitted plan",
            script.suite.dir(),
            script.id
        );
    }
    // Unique commands resolved by the lattice-on planner: one synthesis
    // report per cold synthesis, one counter bump per short-circuit.
    let unique = with.lattice_short_circuits + with.reports.len();
    assert_eq!(without.lattice_short_circuits, 0);
    assert!(
        with.lattice_short_circuits * 4 >= unique,
        "short-circuits {}/{unique} below the 25% floor",
        with.lattice_short_circuits
    );
}

/// (3) `kumquat check` is clean on every corpus script, including under
/// `--deny-warnings` semantics, and classifies at least one stage
/// statically in the aggregate.
#[test]
fn check_is_clean_on_all_seventy_corpus_scripts() {
    let mut scripts = 0usize;
    let mut classified = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &SCALE, 0xC4EC);
        let analysis = kq_analyze::check_script(script.text, &env);
        assert_eq!(
            analysis.errors(),
            0,
            "{}/{}: {}",
            script.suite.dir(),
            script.id,
            analysis.render_human()
        );
        assert!(
            analysis.passes(true),
            "{}/{} has warnings: {}",
            script.suite.dir(),
            script.id,
            analysis.render_human()
        );
        scripts += 1;
        classified += analysis
            .classes
            .iter()
            .filter(|c| c.class != EffectClass::Unknown)
            .count();
    }
    assert_eq!(scripts, 70);
    assert!(
        classified >= scripts,
        "only {classified} statically classified stages across {scripts} scripts"
    );
}

/// (4) The broken fixture: statement 2 reads a file that only statement 3
/// writes (use-before-def), and statement 2's output is overwritten by
/// statement 4 without ever being read (dead write). Both lints fire;
/// hazards are warnings, so `--deny-warnings` is what turns them into a
/// nonzero CLI exit — pin exactly that.
#[test]
fn broken_fixture_trips_hazard_lints_and_nonzero_exit() {
    let fixture = "cat /in.txt | sort > /data/sorted.txt\n\
                   cat /data/later.txt | wc -l > /data/n.txt\n\
                   cat /in.txt | tr a-z A-Z > /data/later.txt\n\
                   cat /in.txt | grep fox > /data/n.txt\n";
    let analysis = kq_analyze::check_script(fixture, &HashMap::new());
    let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"KQ101"), "no use-before-def: {codes:?}");
    assert!(codes.contains(&"KQ102"), "no dead-write: {codes:?}");
    assert!(analysis.passes(false));
    assert!(!analysis.passes(true));

    // CLI surface: --deny-warnings turns the warnings into a nonzero exit.
    let out =
        kq_cli::run_cli(&["check".into(), "--deny-warnings".into(), fixture.to_owned()]).unwrap();
    assert_eq!(out.exit_code, 1, "stdout: {}", out.stdout);
    assert!(out.stdout.contains("KQ101"), "stdout: {}", out.stdout);
    assert!(out.stdout.contains("KQ102"), "stdout: {}", out.stdout);
    let clean = kq_cli::run_cli(&[
        "check".into(),
        "--deny-warnings".into(),
        "cat /in.txt | grep fox | wc -l".into(),
    ])
    .unwrap();
    assert_eq!(clean.exit_code, 0, "stdout: {}", clean.stdout);
}
