//! Worker accounting smoke: the dataflow executor's whole-script thread
//! budget is exactly `--workers`, regardless of how many statements,
//! segments, or folds the script contains.
//!
//! The streaming executor spawns a private feeder plus a `segments ×
//! (workers + collector)` thread set per statement; the dataflow
//! scheduler replaces all of that with one fixed pool. This test runs a
//! 2-statement script under `workers = 2` while a sampler thread polls
//! `/proc/self/status` `Threads:` and asserts the peak over the baseline
//! never exceeds the worker budget.

use kq_coreutils::ExecContext;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[cfg(target_os = "linux")]
#[test]
fn two_statement_script_stays_within_the_worker_budget() {
    const WORKERS: usize = 2;
    let ctx = ExecContext::default();
    let input: String = (0..40_000)
        .map(|i| format!("word{} tail{} extra{}\n", i % 13, i % 7, i % 29))
        .collect();
    ctx.vfs.write("/in.txt", input);
    let env: HashMap<String, String> = HashMap::new();
    // Two statements — enough per-statement thread demand that the old
    // per-statement pools would blow past the budget (streaming would
    // spawn feeder + 3 segments × 3 threads for the first alone).
    let script = parse_script(
        "cat /in.txt | grep word | sort | uniq -c | sort -rn > /out/freq\n\
         cat /in.txt | cut -d ' ' -f 2 | sort -u | head -n 5",
        &env,
    )
    .unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let sample = "word1 tail1 extra1\nword2 tail2 extra2\n".repeat(30);
    let plan = planner.plan(&script, &ctx, &sample);

    // Start the sampler BEFORE the baseline read so the sampler thread
    // itself is part of the baseline, then measure the peak during runs.
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(0));
    let sampler = {
        let stop = Arc::clone(&stop);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(thread_count(), Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    };
    while thread_count() < 2 {
        std::thread::yield_now(); // sampler not up yet
    }
    let baseline = thread_count();

    let opts = DataflowOptions {
        workers: WORKERS,
        chunk: ChunkSizing::Fixed(512),
        queue: QueueCredit::Fixed(2),
        fuse_streamable: true,
        spill: None,
    };
    // Several runs so a pool leak across runs would also surface. Between
    // runs, wait for the retired pool's /proc entries to vanish: an exiting
    // worker from run N overlapping run N+1's spawns would otherwise read
    // as a budget violation (join() returns before the kernel task is gone).
    for _ in 0..3 {
        let got = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
        assert!(!got.output.is_empty());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while thread_count() > baseline {
            assert!(
                std::time::Instant::now() < deadline,
                "worker pool leaked: {} threads still alive after run_dataflow returned \
                 (baseline {baseline})",
                thread_count()
            );
            std::thread::yield_now();
        }
    }
    stop.store(true, Ordering::Relaxed);
    sampler.join().unwrap();

    let peak = peak.load(Ordering::Relaxed);
    assert!(
        peak <= baseline + WORKERS,
        "thread budget exceeded: baseline {baseline}, peak {peak}, budget {WORKERS} \
         (the scheduler must not spawn per-statement or per-segment pools)"
    );
    assert!(
        peak > baseline,
        "sampler never observed a worker thread (baseline {baseline}, peak {peak})"
    );
}
