//! Differential harness for the grep byte fast path: every `grep` stage
//! appearing in the 70-script paper corpus runs over that script's
//! generated input through both implementations — the slice fast path
//! (coalesced sub-slices of the input `Bytes`) and the pre-existing
//! rebuild-a-`String` path — and the outputs must be byte-identical.

use kq_coreutils::grep::GrepCmd;
use kq_coreutils::{Bytes, ExecContext, UnixCommand};
use kq_pipeline::parse::parse_script;
use kq_workloads::{corpus, setup, Scale};

#[test]
fn corpus_grep_stages_agree_with_reference_path() {
    let scale = Scale {
        input_bytes: 20_000,
    };
    let mut grep_stages = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xBEEF);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let input = ctx.vfs.read(&env["IN"]).unwrap();
        for statement in &parsed.statements {
            for stage in &statement.stages {
                if stage.command.program() != "grep" {
                    continue;
                }
                let g = GrepCmd::parse(&stage.command.argv()[1..]).unwrap_or_else(|e| {
                    panic!("{}/{} grep parse: {e}", script.suite.dir(), script.id)
                });
                let fast = g
                    .run(Bytes::from(input.as_str()), &ctx)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", script.suite.dir(), script.id));
                assert_eq!(
                    fast.as_str(),
                    g.run_reference(&input),
                    "{}/{}: fast path diverged for {:?}",
                    script.suite.dir(),
                    script.id,
                    stage.command.display()
                );
                grep_stages += 1;
            }
        }
    }
    assert!(
        grep_stages >= 10,
        "corpus should exercise many grep stages, found {grep_stages}"
    );
}

#[test]
fn fast_path_is_zero_copy_for_dense_matches() {
    // The point of the fast path: a selecting grep over realistic text
    // returns slices of its input. All-match → the input handle itself.
    let text = "the quick brown fox\njumps over the lazy dog\n".repeat(500);
    let input = Bytes::from(text);
    let ctx = ExecContext::default();
    let all = GrepCmd::parse(&["o".into()]).unwrap();
    let out = all.run(input.clone(), &ctx).unwrap();
    assert!(out.shares_buffer(&input), "all lines match: refcount bump");
    assert_eq!(out, input);
}
