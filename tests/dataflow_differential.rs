//! The serial-vs-dataflow differential harness: the shared work-stealing
//! scheduler must produce byte-identical output on every script of the
//! paper corpus, at every chunk size and worker count.
//!
//! `run_serial` is the semantics oracle. `run_dataflow` compiles each
//! statement to a dataflow graph and executes the whole script on one
//! fixed pool, so every scheduler behaviour — reorder buffers, credit
//! gating, fusion, fold finalization, early-exit teardown — is in play on
//! every script. The sweep brackets the chunking extremes (1 byte → one
//! chunk per line; 16 MiB → one chunk total, i.e. serial execution with
//! scheduler plumbing) at w ∈ {1, 4}, a second sweep runs with both
//! *adaptive* knobs on (auto chunk sizing + credit rebalancing) checking
//! stdout and every redirect target, and a watchdog test pins the
//! cancellation property: a bounded consumer stops a 256 MiB producer
//! after O(first match) bytes, including chunks already queued.

use kq_coreutils::ExecContext;
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale};
use std::collections::HashMap;

#[test]
fn full_corpus_dataflow_matches_serial_across_chunkings_and_workers() {
    let scale = Scale {
        input_bytes: 10_000,
    };
    // One planner across scripts: combiners cache per command line.
    let mut planner = Planner::new(SynthesisConfig::default());
    let mut count = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xDF01);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);

        let id = format!("{}/{}", script.suite.dir(), script.id);
        let serial = run_serial(&parsed, &ctx).unwrap_or_else(|e| panic!("{id} serial: {e}"));
        for workers in [1usize, 4] {
            for chunk_bytes in [1usize, 700, 16 << 20] {
                let opts = DataflowOptions {
                    workers,
                    chunk: ChunkSizing::Fixed(chunk_bytes),
                    queue: QueueCredit::Fixed(2),
                    fuse_streamable: true,
                    spill: None,
                };
                let got = run_dataflow(&parsed, &plan, &ctx, &opts).unwrap_or_else(|e| {
                    panic!("{id} dataflow (w={workers}, chunk={chunk_bytes}): {e}")
                });
                assert_eq!(
                    got.output, serial.output,
                    "{id}: dataflow diverged (w={workers}, chunk={chunk_bytes})"
                );
            }
        }
        count += 1;
    }
    assert!(count >= 70, "corpus shrank to {count} scripts");
}

/// The adaptation-invariance sweep: with *both* auto knobs on — adaptive
/// chunk sizing and queue-credit rebalancing — every corpus script must
/// stay byte-identical to serial, for stdout AND every `> file` redirect
/// target. The knobs move chunk boundaries and queue credit at runtime,
/// driven by timing-dependent stall samples; this test pins the contract
/// that none of that ever reaches the bytes. Each configuration runs in a
/// fresh context (same deterministic setup seed) so redirect targets
/// can't leak results between runs.
#[test]
fn full_corpus_adaptive_knobs_match_serial_including_redirects() {
    let scale = Scale {
        input_bytes: 10_000,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    let mut count = 0usize;
    let mut redirects_checked = 0usize;
    for script in corpus() {
        let serial_ctx = ExecContext::default();
        let env = setup(script, &serial_ctx, &scale, 0xADA9);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let sample = serial_ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &serial_ctx, &sample[..cut]);

        let id = format!("{}/{}", script.suite.dir(), script.id);
        let serial =
            run_serial(&parsed, &serial_ctx).unwrap_or_else(|e| panic!("{id} serial: {e}"));
        let serial_files: Vec<(String, String)> = parsed
            .statements
            .iter()
            .filter_map(|s| s.output.clone())
            .map(|t| {
                let bytes = serial_ctx
                    .vfs
                    .read(&t)
                    .unwrap_or_else(|| panic!("{id}: serial run left no redirect file {t}"));
                (t, bytes)
            })
            .collect();

        for workers in [1usize, 4] {
            let ctx = ExecContext::default();
            setup(script, &ctx, &scale, 0xADA9);
            let opts = DataflowOptions {
                workers,
                chunk: ChunkSizing::Auto,
                queue: QueueCredit::Auto,
                fuse_streamable: true,
                spill: None,
            };
            let got = run_dataflow(&parsed, &plan, &ctx, &opts)
                .unwrap_or_else(|e| panic!("{id} adaptive dataflow (w={workers}): {e}"));
            assert_eq!(
                got.output, serial.output,
                "{id}: adaptive dataflow diverged on stdout (w={workers})"
            );
            for (target, want) in &serial_files {
                let have = ctx
                    .vfs
                    .read(target)
                    .unwrap_or_else(|| panic!("{id}: adaptive run left no redirect file {target}"));
                assert_eq!(
                    &have, want,
                    "{id}: adaptive dataflow diverged at redirect {target} (w={workers})"
                );
                redirects_checked += 1;
            }
        }
        count += 1;
    }
    assert!(count >= 70, "corpus shrank to {count} scripts");
    assert!(
        redirects_checked >= 10,
        "corpus drifted: only {redirects_checked} redirect targets checked"
    );
}

/// Every dataflow stage timing carries queue telemetry, and per-chunk
/// nodes report one task per chunk — the observability contract the
/// perf analysis relies on.
#[test]
fn dataflow_timings_report_queue_telemetry() {
    let ctx = ExecContext::default();
    let input: String = (0..2000)
        .map(|i| format!("word{} tail{}\n", i % 13, i % 7))
        .collect();
    ctx.vfs.write("/in.txt", input);
    let env: HashMap<String, String> = HashMap::new();
    let parsed = parse_script(
        "cat /in.txt | grep word | tr a-z A-Z | sort | uniq -c",
        &env,
    )
    .unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let sample = "word1 tail1\nword2 tail2\n".repeat(30);
    let plan = planner.plan(&parsed, &ctx, &sample);
    let opts = DataflowOptions {
        workers: 2,
        chunk: ChunkSizing::Fixed(1024),
        queue: QueueCredit::Fixed(2),
        fuse_streamable: true,
        spill: None,
    };
    let got = run_dataflow(&parsed, &plan, &ctx, &opts).unwrap();
    let stages = &got.timings.statements[0];
    assert!(!stages.is_empty());
    for stage in stages {
        let telem = stage
            .queue
            .unwrap_or_else(|| panic!("{}: dataflow stage without telemetry", stage.label));
        assert!(
            telem.tasks >= 1,
            "{}: node processed no tasks: {telem:?}",
            stage.label
        );
    }
    // The fused grep|tr node saw many chunks; its task count says so.
    let fused = stages.iter().find(|s| s.label.contains('|')).unwrap();
    assert!(
        fused.queue.unwrap().tasks > 5,
        "expected one task per chunk at the fused node: {:?}",
        fused.queue
    );
}

/// A cancelled 256 MiB producer must terminate promptly without draining
/// its input. Under the dataflow scheduler the bound's satisfaction tears
/// the graph down edge-by-edge — queued chunks are dropped, not drained —
/// so the grep node's consumed-byte count stays O(first match), with a
/// watchdog so a regression hangs the test rather than silently scanning
/// all 256 MiB.
#[test]
fn cancelled_256mib_producer_terminates_promptly_without_draining() {
    const TOTAL: usize = 256 << 20;
    let mut input = String::with_capacity(TOTAL + (1 << 20));
    input.push_str("needle alpha\n");
    let filler_block = "haystack filler line with nothing to find here\n".repeat(1 << 14);
    while input.len() < TOTAL {
        input.push_str(&filler_block);
    }
    let input_len = input.len();
    let ctx = ExecContext::default();
    ctx.vfs.write("/big", input); // moves the buffer; no copy
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script("cat /big | grep needle | head -n 1", &env).unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let sample = "needle alpha\nhaystack filler line\n".repeat(40);
    let plan = planner.plan(&script, &ctx, &sample);

    let opts = DataflowOptions {
        workers: 2,
        chunk: ChunkSizing::Fixed(64 * 1024),
        queue: QueueCredit::Fixed(2),
        fuse_streamable: true,
        spill: None,
    };
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let result = run_dataflow(&script, &plan, &ctx, &opts);
        done_tx.send(()).ok();
        result
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("cancelled pipeline hung: upstream kept running after the bound was met");
    let got = handle.join().expect("dataflow thread panicked").unwrap();
    assert_eq!(got.output, "needle alpha\n");

    let stages = &got.timings.statements[0];
    let head = stages
        .iter()
        .find(|s| s.label.starts_with("head"))
        .expect("head node timing");
    assert!(
        head.early_exit.is_some(),
        "head must report its early exit: {head:?}"
    );
    let grep = stages
        .iter()
        .find(|s| s.label.starts_with("grep"))
        .expect("grep node timing");
    assert!(
        grep.bytes_in < 32 << 20,
        "grep consumed {} of {input_len} bytes: cancellation did not stop the producer",
        grep.bytes_in
    );
}

/// The prefix-bounded corpus scripts (`… | head -n 1`-shaped) under the
/// dataflow scheduler: byte-identical to serial while the bound cancels
/// upstream, across the same chunk/worker sweep as the streaming suite.
#[test]
fn prefix_bounded_corpus_scripts_match_serial_under_early_exit() {
    let scale = Scale {
        input_bytes: 10_000,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    let mut covered = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xDF0E);
        let parsed = parse_script(script.text, &env).unwrap();
        let bounded_terminal = parsed.statements.iter().any(|st| {
            st.stages
                .last()
                .is_some_and(|stage| kq_synth::prefix_bound(&stage.command).is_some())
        });
        if !bounded_terminal {
            continue;
        }
        covered += 1;
        let id = format!("{}/{}", script.suite.dir(), script.id);
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);
        let serial = run_serial(&parsed, &ctx).unwrap();
        for workers in [1usize, 4] {
            for chunk_bytes in [1usize, 700, 16 << 20] {
                let opts = DataflowOptions {
                    workers,
                    chunk: ChunkSizing::Fixed(chunk_bytes),
                    queue: QueueCredit::Fixed(2),
                    fuse_streamable: true,
                    spill: None,
                };
                let got = run_dataflow(&parsed, &plan, &ctx, &opts)
                    .unwrap_or_else(|e| panic!("{id} dataflow (chunk={chunk_bytes}): {e}"));
                assert_eq!(
                    got.output, serial.output,
                    "{id}: early-exit dataflow diverged (w={workers}, chunk={chunk_bytes})"
                );
            }
        }
    }
    assert!(
        covered >= 11,
        "expected >= 11 prefix-bounded corpus scripts, found {covered}"
    );
}
