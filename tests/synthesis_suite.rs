//! Table 10 / Table 9 spot checks through the public façade: the expected
//! combiner (class) for one command of each behavioural family, the
//! paper-exact search-space sizes, and the no-combiner verdicts.

use kumquat::dsl::ast::{Combiner, RecOp, RunOp, StructOp};
use kumquat::stream::Delim;
use kumquat::Kumquat;

fn plausible_ops(kq: &mut Kumquat, cmd: &str) -> Vec<Combiner> {
    kq.synthesize_command(cmd)
        .unwrap()
        .plausible()
        .iter()
        .map(|c| c.op.clone())
        .collect()
}

#[test]
fn counting_commands_get_back_add() {
    let mut kq = Kumquat::new();
    let back_add = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
    for cmd in ["wc -l", "wc -w", "wc -c", "grep -c the"] {
        let ops = plausible_ops(&mut kq, cmd);
        assert!(ops.contains(&back_add), "{cmd}: {ops:?}");
        assert!(!ops.contains(&Combiner::Rec(RecOp::Concat)), "{cmd}");
    }
}

#[test]
fn mapping_commands_get_concat() {
    let mut kq = Kumquat::new();
    for cmd in [
        "tr A-Z a-z",
        "cut -c 1-4",
        "cut -d ',' -f 1",
        "sed 's/$/0s/'",
        "grep light",
        "awk 'length >= 3'",
        "rev",
    ] {
        let report = kq.synthesize_command(cmd).unwrap();
        let combiner = report
            .combiner()
            .unwrap_or_else(|| panic!("{cmd}: no combiner"));
        assert!(combiner.is_concat(), "{cmd}: {}", combiner.primary());
    }
}

#[test]
fn sort_commands_get_matching_merge() {
    let mut kq = Kumquat::new();
    for (cmd, flags) in [
        ("sort", vec![]),
        ("sort -rn", vec!["-rn".to_owned()]),
        ("sort -u", vec!["-u".to_owned()]),
        ("sort -f", vec!["-f".to_owned()]),
        ("sort -k1n", vec!["-k1n".to_owned()]),
    ] {
        let ops = plausible_ops(&mut kq, cmd);
        assert!(
            ops.contains(&Combiner::Run(RunOp::Merge(flags.clone()))),
            "{cmd}: {ops:?}"
        );
    }
}

#[test]
fn selection_commands_get_stitch_family() {
    let mut kq = Kumquat::new();
    let ops = plausible_ops(&mut kq, "uniq");
    assert!(
        ops.iter()
            .any(|o| matches!(o, Combiner::Struct(StructOp::Stitch(_)))),
        "uniq: {ops:?}"
    );
    let ops = plausible_ops(&mut kq, "uniq -c");
    assert!(
        ops.iter().any(|o| matches!(
            o,
            Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, _))
        )),
        "uniq -c: {ops:?}"
    );
}

#[test]
fn window_commands_get_selection_or_rerun() {
    let mut kq = Kumquat::new();
    let ops = plausible_ops(&mut kq, "head -n 1");
    assert!(ops.contains(&Combiner::Rec(RecOp::First)), "{ops:?}");
    let ops = plausible_ops(&mut kq, "tail -n 1");
    assert!(ops.contains(&Combiner::Rec(RecOp::Second)), "{ops:?}");
    // Larger windows: only rerun survives.
    let report = kq.synthesize_command("sed 100q").unwrap();
    assert!(report.combiner().unwrap().is_rerun());
    let report = kq.synthesize_command("head -15").unwrap();
    assert!(report.combiner().unwrap().is_rerun());
}

#[test]
fn squeezing_commands_need_rerun() {
    let mut kq = Kumquat::new();
    for cmd in [r"tr -cs A-Za-z '\n'", r"tr -s ' ' '\n'"] {
        let report = kq.synthesize_command(cmd).unwrap();
        let combiner = report
            .combiner()
            .unwrap_or_else(|| panic!("{cmd}: no combiner"));
        assert!(combiner.is_rerun(), "{cmd}: {}", combiner.primary());
    }
}

#[test]
fn table9_commands_have_no_combiner() {
    let mut kq = Kumquat::new();
    for cmd in [
        "sed 1d", "sed 2d", "sed 3d", "sed 4d", "sed 5d", "tail +2", "tail +3",
    ] {
        let report = kq.synthesize_command(cmd).unwrap();
        assert!(
            report.combiner().is_none(),
            "{cmd} unexpectedly synthesized {:?}",
            report
                .plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn search_space_sizes_match_table10() {
    let mut kq = Kumquat::new();
    // Newline-only outputs → 2700.
    assert_eq!(kq.synthesize_command("wc -l").unwrap().space.total(), 2700);
    assert_eq!(
        kq.synthesize_command(r"tr -cs A-Za-z '\n'")
            .unwrap()
            .space
            .total(),
        2700
    );
    // Newline + space outputs → 26404.
    assert_eq!(kq.synthesize_command("cat").unwrap().space.total(), 26404);
    assert_eq!(
        kq.synthesize_command("uniq -c").unwrap().space.total(),
        26404
    );
}

#[test]
fn xargs_synthesizes_via_filename_profile() {
    let mut kq = Kumquat::new();
    let report = kq.synthesize_command("xargs cat").unwrap();
    assert_eq!(report.profile, kumquat::synth::InputProfile::FileNames);
    let combiner = report.combiner().expect("combiner for xargs cat");
    assert!(combiner.is_concat(), "{}", combiner.primary());
}

#[test]
fn comm_synthesizes_concat_when_dict_is_disjoint() {
    // The paper's situation: the dictionary does not overlap the
    // generator's vocabulary, so the matching path never sees boundary
    // duplicates and concat survives (Table 10 row 1).
    let mut kq = Kumquat::new();
    kq.write_file(
        "/dict",
        "0qqqq
0zzzz
",
    );
    let report = kq.synthesize_command("comm -23 - /dict").unwrap();
    assert_eq!(report.profile, kumquat::synth::InputProfile::Sorted);
    let combiner = report.combiner().expect("combiner for comm -23");
    assert!(combiner.is_concat(), "{}", combiner.primary());
}

#[test]
fn comm_concat_is_refuted_by_boundary_duplicates() {
    // Reproduction finding (see EXPERIMENTS.md): when the dictionary
    // overlaps the generated vocabulary, a sorted pair that repeats a
    // dictionary word across the split boundary shows that *no* DSL
    // combiner is correct for comm -23: comm consumes dictionary lines
    // per occurrence, so f(x1 ++ x2) != f(x1) ++ f(x2).
    let mut kq = Kumquat::new();
    kq.write_file(
        "/dict", "of
",
    );
    let command = kumquat::coreutils::parse_command("comm -23 - /dict").unwrap();
    let y1 = command
        .run_str(
            "of
", &kq.ctx,
        )
        .unwrap();
    let y2 = command
        .run_str(
            "of
", &kq.ctx,
        )
        .unwrap();
    let y12 = command
        .run_str(
            "of
of
", &kq.ctx,
        )
        .unwrap();
    assert_eq!(y1, "");
    assert_eq!(y2, "");
    assert_eq!(
        y12,
        "of
",
        "the second occurrence has no dict line left"
    );
    // A dictionary overlapping the generator vocabulary lets synthesis
    // discover this: no combiner survives.
    kq.write_file("/overlapping", kq_workloads::inputs::dictionary());
    let report = kq.synthesize_command("comm -23 - /overlapping").unwrap();
    assert!(
        report.combiner().is_none(),
        "synthesis should refute every combiner, got {:?}",
        report
            .plausible()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn synthesis_is_deterministic() {
    let mut kq1 = Kumquat::new();
    let mut kq2 = Kumquat::new();
    let a = plausible_ops(&mut kq1, "uniq -c");
    let b = plausible_ops(&mut kq2, "uniq -c");
    assert_eq!(a, b);
}
