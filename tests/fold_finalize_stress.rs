//! Regression stress for the Fold-finalization race in the dataflow
//! scheduler (promoted from a temporary reviewer repro).
//!
//! The bug: `gather_task` claimed the inflight counter, popped the final
//! chunk, and then only rescheduled its *upstream* node — so when a
//! sibling task had already observed the closed edge and bailed out on
//! the nonzero inflight count, nobody ever re-ran the finalization check
//! and the run hung with the pool idle. The fix makes every pop path
//! call `maybe_finalize_gather`/`maybe_finalize_map` unconditionally
//! after integrating its chunk (the condition is stable once true, so
//! the extra call is idempotent).
//!
//! These tests hammer the window with tiny chunks (64 B) and a shallow
//! queue (depth 2) so the final-chunk/closed-edge interleaving happens
//! constantly. Each iteration runs on a detached thread watched over a
//! channel: a hang panics the test with the iteration number instead of
//! wedging the suite. (A detached thread is deliberate — `thread::scope`
//! would join the hung worker and turn the panic back into a wedge.)

use kq_coreutils::ExecContext;
use kq_pipeline::parse::{parse_script, Script};
use kq_pipeline::plan::{PlannedScript, Planner};
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::Duration;

const ITERATIONS: usize = 3000;

/// Plans `script_text` over a 300-line input and returns the shared
/// state each stress iteration re-executes.
fn plan_stress_script(script_text: &str) -> (Arc<Script>, Arc<PlannedScript>, Arc<ExecContext>) {
    let env: HashMap<String, String> = HashMap::new();
    let mut input = String::new();
    for i in 0..300 {
        input.push_str(&format!("line {} {}\n", i % 7, i));
    }
    let script = parse_script(script_text, &env).unwrap();
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", &input);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, &input);
    (Arc::new(script), Arc::new(plan), Arc::new(ctx))
}

/// Runs the planned script `ITERATIONS` times under the race-friendly
/// configuration, each run on a detached watchdog-guarded thread.
fn stress(script_text: &str) {
    let (script, plan, ctx) = plan_stress_script(script_text);
    let expect = {
        let opts = DataflowOptions::default();
        run_dataflow(&script, &plan, &ctx, &opts).unwrap().output
    };
    for iter in 0..ITERATIONS {
        let (tx, rx) = mpsc::channel();
        let (script, plan, ctx) = (script.clone(), plan.clone(), ctx.clone());
        std::thread::spawn(move || {
            let opts = DataflowOptions {
                workers: 4,
                chunk: ChunkSizing::Fixed(64),
                queue: QueueCredit::Fixed(2),
                fuse_streamable: true,
                spill: None,
            };
            let got = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
            // A send failure means the watchdog already gave up.
            let _ = tx.send(got.output);
        });
        match rx.recv_timeout(Duration::from_secs(20)) {
            Ok(out) => assert_eq!(out, expect, "dataflow output diverged at iteration {iter}"),
            Err(_) => panic!("lost-finalization hang at iteration {iter}"),
        }
    }
}

/// The original repro: `sed 1d` plans as a sequential Fold(Gather) node
/// fed by the split, the shape whose finalization was lost.
#[test]
fn gather_finalize_stress() {
    stress("cat /in.txt | sed 1d | sort");
}

/// The same window at a Fold(Combine) node: no gather stage in the
/// pipeline, so the incremental combiner fold's pop paths are the ones
/// racing the closed-edge observer.
#[test]
fn combine_finalize_stress() {
    stress("cat /in.txt | sort");
}
