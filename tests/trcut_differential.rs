//! Differential harness for the `tr -d`, `cut`, and `uniq` byte fast
//! paths.
//!
//! These commands gained `grep`-style slice fast paths: output assembled
//! as coalesced sub-slices of the input `Bytes` instead of a rebuilt
//! `String`. This suite mirrors `tests/grep_differential.rs`: walk every
//! corpus script, re-parse each `tr`/`cut`/`uniq` stage, and run the fast
//! path against the reference implementation on the script's own
//! generated input — so the slice paths are validated on exactly the SET
//! specs and field lists real scripts use, not just hand-picked unit
//! cases.

use kq_coreutils::cut::CutCmd;
use kq_coreutils::tr::TrCmd;
use kq_coreutils::uniq::UniqCmd;
use kq_coreutils::{Bytes, ExecContext, UnixCommand};
use kq_pipeline::parse::parse_script;
use kq_workloads::{corpus, setup, Scale};

#[test]
fn corpus_tr_stages_fast_path_matches_reference() {
    let scale = Scale {
        input_bytes: 20_000,
    };
    let ctx_proto = ExecContext::default();
    let mut stages_checked = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xBEEF);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let input = ctx.vfs.read(&env["IN"]).unwrap();
        for statement in &parsed.statements {
            for stage in &statement.stages {
                if stage.command.program() != "tr" {
                    continue;
                }
                let t = TrCmd::parse(&stage.command.argv()[1..])
                    .unwrap_or_else(|e| panic!("{}: {e}", stage.command.display()));
                let fast = t
                    .run(Bytes::from(input.as_str()), &ctx_proto)
                    .unwrap_or_else(|e| panic!("{}: {e}", stage.command.display()));
                assert_eq!(
                    fast.as_str(),
                    t.run_reference(&input),
                    "{}/{}: {} fast path diverged",
                    script.suite.dir(),
                    script.id,
                    stage.command.display()
                );
                stages_checked += 1;
            }
        }
    }
    assert!(
        stages_checked >= 10,
        "corpus drifted: only {stages_checked} tr stages checked"
    );
}

#[test]
fn corpus_cut_stages_fast_path_matches_reference() {
    let scale = Scale {
        input_bytes: 20_000,
    };
    let ctx_proto = ExecContext::default();
    let mut stages_checked = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xBEEF);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let input = ctx.vfs.read(&env["IN"]).unwrap();
        for statement in &parsed.statements {
            for stage in &statement.stages {
                if stage.command.program() != "cut" {
                    continue;
                }
                let c = CutCmd::parse(&stage.command.argv()[1..])
                    .unwrap_or_else(|e| panic!("{}: {e}", stage.command.display()));
                let fast = c
                    .run(Bytes::from(input.as_str()), &ctx_proto)
                    .unwrap_or_else(|e| panic!("{}: {e}", stage.command.display()));
                let reference = c.run_reference(&input);
                assert_eq!(
                    fast.as_str(),
                    reference,
                    "{}/{}: {} fast path diverged",
                    script.suite.dir(),
                    script.id,
                    stage.command.display()
                );
                stages_checked += 1;
            }
        }
    }
    assert!(
        stages_checked >= 10,
        "corpus drifted: only {stages_checked} cut stages checked"
    );
}

#[test]
fn corpus_uniq_stages_fast_path_matches_reference() {
    let scale = Scale {
        input_bytes: 20_000,
    };
    let ctx_proto = ExecContext::default();
    let mut stages_checked = 0usize;
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xBEEF);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let input = ctx.vfs.read(&env["IN"]).unwrap();
        // A uniq stage's real input is usually sorted (long duplicate
        // runs) — exercise that shape too, not just the raw file.
        let mut sorted_lines: Vec<&str> = kq_stream::lines_of(&input).collect();
        sorted_lines.sort_unstable();
        let sorted: String = sorted_lines.iter().map(|l| format!("{l}\n")).collect();
        for statement in &parsed.statements {
            for stage in &statement.stages {
                if stage.command.program() != "uniq" {
                    continue;
                }
                let u = UniqCmd::parse(&stage.command.argv()[1..])
                    .unwrap_or_else(|e| panic!("{}: {e}", stage.command.display()));
                for text in [input.as_str(), sorted.as_str()] {
                    let fast = u
                        .run(Bytes::from(text), &ctx_proto)
                        .unwrap_or_else(|e| panic!("{}: {e}", stage.command.display()));
                    assert_eq!(
                        fast.as_str(),
                        u.run_reference(text),
                        "{}/{}: {} fast path diverged",
                        script.suite.dir(),
                        script.id,
                        stage.command.display()
                    );
                }
                stages_checked += 1;
            }
        }
    }
    assert!(
        stages_checked >= 5,
        "corpus drifted: only {stages_checked} uniq stages checked"
    );
}

/// The zero-copy contract: selections that keep entire inputs return the
/// input buffer itself, not a copy — on corpus-shaped data, not toys.
#[test]
fn full_keep_results_share_the_input_buffer() {
    let ctx = ExecContext::default();
    let input = Bytes::from("alpha one\nbeta two\ngamma three\n".repeat(500));

    let tr_words = kq_coreutils::split_words("tr -d 'Q'").unwrap();
    let t = TrCmd::parse(&tr_words[1..]).unwrap();
    let out = t.run(input.clone(), &ctx).unwrap();
    assert_eq!(out, input);
    assert!(
        out.shares_buffer(&input),
        "tr -d of an absent byte must be a refcount bump"
    );

    let cut_words = kq_coreutils::split_words("cut -c 1-").unwrap();
    let c = CutCmd::parse(&cut_words[1..]).unwrap();
    let out = c.run(input.clone(), &ctx).unwrap();
    assert_eq!(out, input);
    assert!(
        out.shares_buffer(&input),
        "cut -c 1- must be a refcount bump"
    );

    // Every line of the repeated block differs from its neighbor, so
    // plain uniq keeps everything.
    let u = UniqCmd::parse(&[]).unwrap();
    let out = u.run(input.clone(), &ctx).unwrap();
    assert_eq!(out, input);
    assert!(
        out.shares_buffer(&input),
        "all-unique uniq must be a refcount bump"
    );
}
