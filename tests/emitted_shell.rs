//! End-to-end validation of `kumquat emit`: the emitted POSIX shell script,
//! executed by the *real* `/bin/sh` against the *real* GNU coreutils, must
//! produce byte-identical output to our in-process serial execution.
//!
//! This closes the loop on the substitution argument in DESIGN.md §2: the
//! in-process command substrate is interchangeable with the GNU binaries
//! for the corpus commands, and the synthesized combiners are correct for
//! the GNU outputs too — not just for our reimplementations.
//!
//! Every test skips silently when `sh` cannot be spawned (hermetic build
//! environments); in this repository's CI image the tools exist.

use kq_cli::{emit_script, EmitOptions};
use kq_coreutils::ExecContext;
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command as Proc;

/// A scratch directory for one test, cleaned up on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "kq-emitted-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn sh_available() -> bool {
    Proc::new("sh").arg("-c").arg("true").status().is_ok()
}

/// Emits `script_text` (whose input file is `input`), runs it under `sh`
/// with the working directory holding the input, and compares with the
/// in-process serial run.
fn check_emitted(tag: &str, pipeline: &str, input: &str, workers: usize) {
    if !sh_available() {
        eprintln!("skipping {tag}: no `sh` on this host");
        return;
    }
    let scratch = Scratch::new(tag);
    std::fs::write(scratch.dir.join("in.txt"), input).unwrap();

    let script_text = format!("cat in.txt | {pipeline}");
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(&script_text, &env).unwrap();

    // In-process serial reference.
    let ctx = ExecContext::default();
    ctx.vfs.write("in.txt", input);
    let serial = run_serial(&script, &ctx).unwrap();

    // Plan + emit.
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, input);
    for opts in [
        EmitOptions {
            workers,
            honor_elimination: true,
        },
        EmitOptions {
            workers,
            honor_elimination: false,
        },
    ] {
        let emitted = emit_script(&script, &plan, &opts);
        let sh_path = scratch.dir.join("parallel.sh");
        std::fs::write(&sh_path, &emitted.script).unwrap();
        let out = Proc::new("sh")
            .arg(sh_path.file_name().unwrap())
            .current_dir(&scratch.dir)
            .output()
            .expect("spawning sh");
        assert!(
            out.status.success(),
            "{tag} (opt={}): emitted script failed:\n--- stderr ---\n{}\n--- script ---\n{}",
            opts.honor_elimination,
            String::from_utf8_lossy(&out.stderr),
            emitted.script
        );
        let got = String::from_utf8_lossy(&out.stdout).into_owned();
        assert_eq!(
            got, serial.output,
            "{tag} (opt={}): emitted-script output diverged from serial.\n--- script ---\n{}",
            opts.honor_elimination, emitted.script
        );
    }
}

fn words_input() -> String {
    let words = [
        "delta", "alpha", "gamma", "alpha", "beta", "delta", "alpha", "omega",
    ];
    let mut s = String::new();
    for i in 0..400 {
        s.push_str(words[i % words.len()]);
        s.push(' ');
        s.push_str(words[(i * 5 + 2) % words.len()]);
        s.push('\n');
    }
    s
}

#[test]
fn emitted_word_frequency_matches_serial() {
    // The Figure 1 pipeline: every combiner kind except offset.
    check_emitted(
        "wf",
        "tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn",
        &words_input(),
        5,
    );
}

#[test]
fn emitted_grep_count_sums_counts() {
    check_emitted("grepc", "grep -c alpha", &words_input(), 4);
}

#[test]
fn emitted_wc_l_sums() {
    check_emitted("wcl", "wc -l", &words_input(), 7);
}

#[test]
fn emitted_uniq_stitches_boundaries() {
    // sort feeds uniq; a duplicated word straddles every piece boundary.
    check_emitted("uniq", "cut -d ' ' -f 1 | sort | uniq", &words_input(), 6);
}

#[test]
fn emitted_head_takes_first_piece() {
    check_emitted("head1", "cut -d ' ' -f 2 | head -n 1", &words_input(), 4);
}

#[test]
fn emitted_rerun_combiner_reexecutes() {
    // `head -n 3` synthesizes rerun-only: cat pieces | head -n 3.
    check_emitted("head3", "sort | head -n 3", &words_input(), 4);
}

#[test]
fn emitted_sort_merges() {
    check_emitted("sort", "sort", &words_input(), 8);
}

#[test]
fn emitted_reverse_numeric_sort_merges_with_flags() {
    let mut input = String::new();
    for i in 0..300 {
        input.push_str(&format!("{} item{}\n", (i * 37) % 101, i));
    }
    check_emitted("sortrn", "sort -rn", &input, 5);
}

#[test]
fn emitted_single_worker_degenerates_gracefully() {
    check_emitted("w1", "sort | uniq -c", &words_input(), 1);
}

#[test]
fn emitted_more_workers_than_lines() {
    check_emitted("tiny", "sort | uniq", "b x\na y\n", 16);
}

#[test]
fn emitted_cat_n_offsets_numbering() {
    // `(offset '\t' add)` through the awk translation, against GNU cat -n.
    check_emitted("catn", "cat -n", &words_input(), 4);
}

#[test]
fn emitted_awk_end_sum() {
    let mut input = String::new();
    for i in 0..200 {
        input.push_str(&format!("{}\n", (i * 13) % 97));
    }
    check_emitted("awksum", "awk '{s += $1} END {print s}'", &input, 6);
}
