//! Temporary reviewer stress test: hunt for a lost-finalization hang at
//! Fold(Gather)/BoundedConsumer nodes in the dataflow scheduler.

use kq_coreutils::ExecContext;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, DataflowOptions};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

#[test]
fn gather_finalize_stress() {
    let env: HashMap<String, String> = HashMap::new();
    // `sed 1d` is a sequential (Gather) stage fed by the split.
    let script_text = "cat /in.txt | sed 1d | sort";
    let mut input = String::new();
    for i in 0..300 {
        input.push_str(&format!("line {} {}\n", i % 7, i));
    }
    let script = parse_script(script_text, &env).unwrap();
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", &input);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, &input);

    for iter in 0..3000 {
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let script = &script;
            let plan = &plan;
            let ctx = &ctx;
            scope.spawn(move || {
                let opts = DataflowOptions {
                    workers: 4,
                    chunk_bytes: 64,
                    queue_depth: 2,
                    fuse_streamable: true,
                };
                let got = run_dataflow(script, plan, ctx, &opts).unwrap();
                tx.send(got.output.len()).unwrap();
            });
            match rx.recv_timeout(Duration::from_secs(20)) {
                Ok(_) => {}
                Err(_) => {
                    eprintln!("HANG detected at iteration {iter}");
                    std::process::exit(42);
                }
            }
        });
    }
}
