//! The serial-vs-streaming differential harness: every executor must
//! produce byte-identical output on every script of the paper corpus.
//!
//! `run_serial` is the semantics oracle. `run_parallel` (static split),
//! `run_chunked` (dynamic load balancing), and `run_streaming`
//! (bounded-queue pipelining) each re-schedule the same work in a
//! different way, and the combiner equation is the only thing standing
//! between a scheduling change and silent corruption — so the whole
//! 70-script corpus runs through all four, and the streaming executor
//! additionally sweeps chunk sizes including the degenerate extremes
//! (1 byte → one chunk per line; larger than the input → one chunk
//! total, i.e. serial execution with channel plumbing).

use kq_coreutils::ExecContext;
use kq_pipeline::chunked::{run_chunked, ChunkedOptions};
use kq_pipeline::exec::{run_parallel, run_serial};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale};

#[test]
fn full_corpus_all_executors_agree() {
    let scale = Scale {
        input_bytes: 10_000,
    };
    // One planner across scripts: combiners cache per command line.
    let mut planner = Planner::new(SynthesisConfig::default());
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xD1FF);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);

        let id = format!("{}/{}", script.suite.dir(), script.id);
        let serial = run_serial(&parsed, &ctx).unwrap_or_else(|e| panic!("{id} serial: {e}"));

        let parallel = run_parallel(&parsed, &plan, &ctx, 3, true)
            .unwrap_or_else(|e| panic!("{id} parallel: {e}"));
        assert_eq!(parallel.output, serial.output, "{id}: parallel diverged");

        let copts = ChunkedOptions {
            workers: 3,
            chunk_bytes: 700,
            honor_elimination: true,
        };
        let chunked = run_chunked(&parsed, &plan, &ctx, &copts)
            .unwrap_or_else(|e| panic!("{id} chunked: {e}"));
        assert_eq!(chunked.output, serial.output, "{id}: chunked diverged");

        // Streaming sweep: degenerate 1-byte chunks (one line each), a
        // mid-size target, and a target larger than any input.
        for chunk_bytes in [1usize, 700, 1 << 24] {
            let sopts = StreamingOptions {
                workers: 2,
                chunk_bytes,
                queue_depth: 2,
                fuse_streamable: true,
            };
            let streaming = run_streaming(&parsed, &plan, &ctx, &sopts)
                .unwrap_or_else(|e| panic!("{id} streaming (chunk={chunk_bytes}): {e}"));
            assert_eq!(
                streaming.output, serial.output,
                "{id}: streaming diverged at chunk_bytes={chunk_bytes}"
            );
        }
    }
}

#[test]
fn streaming_options_sweep_on_boundary_sensitive_scripts() {
    // Deeper option sweep on pipelines whose combiners are sensitive to
    // where the stream splits (uniq -c stitching, sort merging, head
    // rerun), exercising single-worker pools, depth-1 queues (fully
    // lock-step), and unfused per-stage channels.
    let scale = Scale {
        input_bytes: 20_000,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    let picks = ["wf.sh", "2.sh", "4_3.sh"];
    let selected: Vec<_> = corpus()
        .iter()
        .filter(|s| picks.contains(&s.id) || (s.id == "4.sh" && s.suite.dir() == "analytics-mts"))
        .collect();
    assert!(
        selected.len() >= 4,
        "pick list drifted from the corpus: {selected:?}"
    );
    for script in selected {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 7);
        let parsed = parse_script(script.text, &env).unwrap();
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);
        let serial = run_serial(&parsed, &ctx).unwrap();
        for workers in [1usize, 4] {
            for queue_depth in [1usize, 8] {
                for fuse in [true, false] {
                    let opts = StreamingOptions {
                        workers,
                        chunk_bytes: 512,
                        queue_depth,
                        fuse_streamable: fuse,
                    };
                    let got = run_streaming(&parsed, &plan, &ctx, &opts).unwrap();
                    assert_eq!(
                        got.output,
                        serial.output,
                        "{}/{} diverged (w={workers}, depth={queue_depth}, fuse={fuse})",
                        script.suite.dir(),
                        script.id
                    );
                }
            }
        }
    }
}
