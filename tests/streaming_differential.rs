//! The serial-vs-streaming differential harness: every executor must
//! produce byte-identical output on every script of the paper corpus.
//!
//! `run_serial` is the semantics oracle. `run_parallel` (static split),
//! `run_chunked` (dynamic load balancing), and `run_streaming`
//! (bounded-queue pipelining) each re-schedule the same work in a
//! different way, and the combiner equation is the only thing standing
//! between a scheduling change and silent corruption — so the whole
//! 70-script corpus runs through all four, and the streaming executor
//! additionally sweeps chunk sizes including the degenerate extremes
//! (1 byte → one chunk per line; larger than the input → one chunk
//! total, i.e. serial execution with channel plumbing).

use kq_coreutils::ExecContext;
use kq_pipeline::chunked::{run_chunked, ChunkedOptions};
use kq_pipeline::exec::{run_parallel, run_serial};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use kq_workloads::{corpus, setup, Scale};
use std::collections::HashMap;

#[test]
fn full_corpus_all_executors_agree() {
    let scale = Scale {
        input_bytes: 10_000,
    };
    // One planner across scripts: combiners cache per command line.
    let mut planner = Planner::new(SynthesisConfig::default());
    for script in corpus() {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 0xD1FF);
        let parsed = parse_script(script.text, &env)
            .unwrap_or_else(|e| panic!("{}/{} parse: {e}", script.suite.dir(), script.id));
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);

        let id = format!("{}/{}", script.suite.dir(), script.id);
        let serial = run_serial(&parsed, &ctx).unwrap_or_else(|e| panic!("{id} serial: {e}"));

        let parallel = run_parallel(&parsed, &plan, &ctx, 3, true)
            .unwrap_or_else(|e| panic!("{id} parallel: {e}"));
        assert_eq!(parallel.output, serial.output, "{id}: parallel diverged");

        let copts = ChunkedOptions {
            workers: 3,
            chunk_bytes: 700,
            honor_elimination: true,
        };
        let chunked = run_chunked(&parsed, &plan, &ctx, &copts)
            .unwrap_or_else(|e| panic!("{id} chunked: {e}"));
        assert_eq!(chunked.output, serial.output, "{id}: chunked diverged");

        // Streaming sweep: degenerate 1-byte chunks (one line each), a
        // mid-size target, and a target larger than any input.
        for chunk_bytes in [1usize, 700, 1 << 24] {
            let sopts = StreamingOptions {
                workers: 2,
                chunk_bytes,
                queue_depth: 2,
                fuse_streamable: true,
                spill: None,
            };
            let streaming = run_streaming(&parsed, &plan, &ctx, &sopts)
                .unwrap_or_else(|e| panic!("{id} streaming (chunk={chunk_bytes}): {e}"));
            assert_eq!(
                streaming.output, serial.output,
                "{id}: streaming diverged at chunk_bytes={chunk_bytes}"
            );
        }
    }
}

/// Mapped inputs through every executor: the backing store must be
/// invisible. A heap-ingested context is the oracle (serial semantics on
/// owned buffers — exactly the pre-mmap world); the mmap-ingested context
/// runs parallel, chunked, and streaming at chunk sizes bracketing the
/// file size. Cases cover the documented edges: the empty file (mmap
/// refuses zero length — heap fallback), a file without a trailing
/// newline (unterminated final chunk), and a file much larger than the
/// chunk size (many chunks slicing one mapped region).
#[cfg(unix)]
#[test]
fn mmap_backed_inputs_match_heap_ingest_on_every_executor() {
    use kq_io::{IngestOptions, MmapMode};
    let dir = std::env::temp_dir().join(format!("kq-mmap-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let chunk_bytes = 700usize;
    let big: String = (0..2000)
        .map(|i| format!("word{} tail{}\n", i % 13, i % 7))
        .collect();
    assert!(
        big.len() > 8 * chunk_bytes,
        "big case must dwarf the chunks"
    );
    let cases: Vec<(&str, String)> = vec![
        ("empty", String::new()),
        (
            "unterminated",
            "alpha one\nbeta two\ngamma three".to_owned(),
        ),
        ("big", big),
    ];
    let scripts = [
        "cat IN | grep a | tr a-z A-Z | cut -d ' ' -f 1", // fully streamable
        "cat IN | cut -d ' ' -f 1 | sort | uniq -c",      // barrier combiners
    ];
    let mapped_policy = IngestOptions::with_mode(MmapMode::On);
    for (name, content) in &cases {
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        let path_str = path.display().to_string();

        let heap_ctx = ExecContext::default();
        heap_ctx.vfs.write(path_str.clone(), content.as_str());
        let mmap_ctx = ExecContext::default();
        let ingested = kq_io::read_path_text(&path, &mapped_policy).unwrap();
        assert_eq!(
            ingested.is_mmap_backed(),
            !content.is_empty(),
            "{name}: non-empty files must actually map"
        );
        mmap_ctx.vfs.write(path_str.clone(), ingested);

        for template in scripts {
            let text = template.replace("IN", &path_str);
            let parsed = parse_script(&text, &HashMap::new()).unwrap();
            let sample = "word1 tail1\nword2 tail2\nword3 tail3\n".repeat(20);
            let mut planner = Planner::new(SynthesisConfig::default());
            let plan = planner.plan(&parsed, &heap_ctx, &sample);
            let oracle = run_serial(&parsed, &heap_ctx)
                .unwrap_or_else(|e| panic!("{name} heap serial: {e}"));

            let serial_m = run_serial(&parsed, &mmap_ctx)
                .unwrap_or_else(|e| panic!("{name} mmap serial: {e}"));
            assert_eq!(serial_m.output, oracle.output, "{name}: serial diverged");

            let parallel = run_parallel(&parsed, &plan, &mmap_ctx, 3, true)
                .unwrap_or_else(|e| panic!("{name} mmap parallel: {e}"));
            assert_eq!(parallel.output, oracle.output, "{name}: parallel diverged");

            let copts = ChunkedOptions {
                workers: 3,
                chunk_bytes,
                honor_elimination: true,
            };
            let chunked = run_chunked(&parsed, &plan, &mmap_ctx, &copts)
                .unwrap_or_else(|e| panic!("{name} mmap chunked: {e}"));
            assert_eq!(chunked.output, oracle.output, "{name}: chunked diverged");

            // Chunk sizes bracketing the file: many chunks per map, and
            // one chunk swallowing the whole file.
            for cb in [chunk_bytes, 1 << 24] {
                let sopts = StreamingOptions {
                    workers: 2,
                    chunk_bytes: cb,
                    queue_depth: 2,
                    fuse_streamable: true,
                    spill: None,
                };
                let streaming = run_streaming(&parsed, &plan, &mmap_ctx, &sopts)
                    .unwrap_or_else(|e| panic!("{name} mmap streaming (chunk={cb}): {e}"));
                assert_eq!(
                    streaming.output, oracle.output,
                    "{name}: streaming diverged at chunk_bytes={cb}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_options_sweep_on_boundary_sensitive_scripts() {
    // Deeper option sweep on pipelines whose combiners are sensitive to
    // where the stream splits (uniq -c stitching, sort merging, head
    // rerun), exercising single-worker pools, depth-1 queues (fully
    // lock-step), and unfused per-stage channels.
    let scale = Scale {
        input_bytes: 20_000,
    };
    let mut planner = Planner::new(SynthesisConfig::default());
    let picks = ["wf.sh", "2.sh", "4_3.sh"];
    let selected: Vec<_> = corpus()
        .iter()
        .filter(|s| picks.contains(&s.id) || (s.id == "4.sh" && s.suite.dir() == "analytics-mts"))
        .collect();
    assert!(
        selected.len() >= 4,
        "pick list drifted from the corpus: {selected:?}"
    );
    for script in selected {
        let ctx = ExecContext::default();
        let env = setup(script, &ctx, &scale, 7);
        let parsed = parse_script(script.text, &env).unwrap();
        let sample = ctx.vfs.read(&env["IN"]).unwrap();
        let cut = sample[..sample.len().min(8_000)]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(sample.len());
        let plan = planner.plan(&parsed, &ctx, &sample[..cut]);
        let serial = run_serial(&parsed, &ctx).unwrap();
        for workers in [1usize, 4] {
            for queue_depth in [1usize, 8] {
                for fuse in [true, false] {
                    let opts = StreamingOptions {
                        workers,
                        chunk_bytes: 512,
                        queue_depth,
                        fuse_streamable: fuse,
                        spill: None,
                    };
                    let got = run_streaming(&parsed, &plan, &ctx, &opts).unwrap();
                    assert_eq!(
                        got.output,
                        serial.output,
                        "{}/{} diverged (w={workers}, depth={queue_depth}, fuse={fuse})",
                        script.suite.dir(),
                        script.id
                    );
                }
            }
        }
    }
}
