//! Synthesis verdicts for the extension commands (beyond the paper's
//! Table 10 corpus). Each case exercises a DSL region the corpus barely
//! reaches:
//!
//! * `cat -n`     → `(offset '\t' add)` — the representative `g_oa`;
//! * `tac`        → `(concat b a)` — the swapped-argument candidate;
//! * `awk END`    → `(back '\n' add)` at the *top* of the output (a pure
//!   reducer, not a formatted count);
//! * `fold`/`expand` → plain `concat`;
//! * `nl`, bare `wc`, `grep -n`, `shuf` → instructive failures: gutter
//!   formatting, padded multi-columns, out-of-alphabet delimiters, and
//!   nondeterminism each defeat synthesis differently.

use kumquat::dsl::ast::{Combiner, RecOp, StructOp};
use kumquat::stream::Delim;
use kumquat::synth::SynthesisOutcome;
use kumquat::Kumquat;

fn report(cmd: &str) -> kumquat::synth::SynthesisReport {
    Kumquat::new().synthesize_command(cmd).unwrap()
}

#[test]
fn cat_n_synthesizes_offset_add() {
    let r = report("cat -n");
    let ops: Vec<Combiner> = r.plausible().iter().map(|c| c.op.clone()).collect();
    assert!(
        ops.contains(&Combiner::Struct(StructOp::Offset(Delim::Tab, RecOp::Add))),
        "expected (offset '\\t' add), got {ops:?}"
    );
    // Never plain concat: the second piece's numbering restarts at 1.
    assert!(!ops.contains(&Combiner::Rec(RecOp::Concat)), "{ops:?}");
}

#[test]
fn nl_gutter_defeats_offset() {
    // GNU nl leaves empty lines as a 7-space gutter with no number and no
    // tab; such lines are outside L(offset '\t' add), and numbering skips
    // them, so offset dies. Rerun dies too (nl is not idempotent: it
    // renumbers its own output). Default nl therefore has *no* combiner —
    // while `nl -b a`, which numbers every line, synthesizes offset like
    // `cat -n` does. One flag flips combinability.
    let r = report("nl");
    assert!(
        matches!(r.outcome, SynthesisOutcome::NoCombiner { .. }),
        "default nl must not synthesize; got {:?}",
        r.plausible()
    );

    let all = report("nl -b a");
    let ops: Vec<Combiner> = all.plausible().iter().map(|c| c.op.clone()).collect();
    assert!(
        ops.contains(&Combiner::Struct(StructOp::Offset(Delim::Tab, RecOp::Add))),
        "nl -b a should synthesize (offset '\\t' add): {ops:?}"
    );
}

#[test]
fn tac_requires_the_swapped_concat() {
    let r = report("tac");
    let plausible = r.plausible();
    let swapped_concat = plausible
        .iter()
        .any(|c| c.op == Combiner::Rec(RecOp::Concat) && c.swapped);
    assert!(
        swapped_concat,
        "expected (concat b a) for tac, got {plausible:?}"
    );
    let unswapped_concat = plausible
        .iter()
        .any(|c| c.op == Combiner::Rec(RecOp::Concat) && !c.swapped);
    assert!(!unswapped_concat, "plain concat must be eliminated for tac");
}

#[test]
fn awk_end_sum_gets_back_newline_add() {
    let r = report("awk '{s += $1} END {print s}'");
    let ops: Vec<Combiner> = r.plausible().iter().map(|c| c.op.clone()).collect();
    let back_add = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
    assert!(
        ops.contains(&back_add),
        "expected (back '\\n' add): {ops:?}"
    );
    assert!(!ops.contains(&Combiner::Rec(RecOp::Concat)), "{ops:?}");
}

#[test]
fn per_line_maps_get_concat() {
    for cmd in ["fold -w16", "expand"] {
        let r = report(cmd);
        let combiner = r
            .combiner()
            .unwrap_or_else(|| panic!("{cmd}: no combiner synthesized"));
        assert!(combiner.is_concat(), "{cmd}: {}", combiner.primary());
    }
}

#[test]
fn bare_wc_multicolumn_has_no_combiner() {
    // "      1       2       6" — the padded triple is outside L(fuse ' '
    // add) (leading pad makes the first element empty) and rerun
    // re-counts the summary lines.
    let r = report("wc");
    assert!(
        matches!(r.outcome, SynthesisOutcome::NoCombiner { .. }),
        "bare wc must not synthesize; got {:?}",
        r.plausible()
    );
}

#[test]
fn grep_n_delimiter_outside_alphabet() {
    // `N:line` — ':' is not in the Figure 3 delimiter alphabet, so no
    // offset-style candidate can parse the prefix; numbering restarts per
    // piece, eliminating concat; rerun renumbers.
    let r = report("grep -n light");
    assert!(
        matches!(r.outcome, SynthesisOutcome::NoCombiner { .. }),
        "grep -n must not synthesize; got {:?}",
        r.plausible()
    );
}

#[test]
fn nondeterministic_shuf_eliminates_everything() {
    let r = report("shuf");
    assert!(
        matches!(r.outcome, SynthesisOutcome::NoCombiner { .. }),
        "shuf is nondeterministic and must not synthesize; got {:?}",
        r.plausible()
    );
}

/// End to end: the extension commands actually parallelize (or stay
/// sequential) correctly inside pipelines.
#[test]
fn extension_commands_run_parallel_correctly() {
    let mut kq = Kumquat::new();
    let input: String = (0..240)
        .map(|i| format!("{} word{}\n", (i * 7) % 30, i % 13))
        .collect();
    kq.write_file("/in.txt", &input);
    for script in [
        "cat /in.txt | cat -n",
        "cat /in.txt | tac",
        "cat /in.txt | fold -w9",
        "cat /in.txt | expand",
        "cat /in.txt | cut -d ' ' -f 1 | awk '{s += $1} END {print s}'",
        "cat /in.txt | nl",
        "cat /in.txt | wc",
        "cat /in.txt | grep -n word1",
    ] {
        for workers in [2, 5] {
            let run = kq
                .parallelize_and_run(script, workers)
                .unwrap_or_else(|e| panic!("{script} (w={workers}): {e}"));
            assert!(!run.output.is_empty(), "{script}");
        }
    }
}
