//! Umbrella crate for the KumQuat reproduction workspace: hosts the
//! runnable examples and the cross-crate integration tests.

#![deny(unsafe_code)]

pub use kumquat;
