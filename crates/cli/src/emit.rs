//! Compiles a planned pipeline into a runnable POSIX shell script.
//!
//! This is the artifact the paper's system ultimately produces: a *new
//! data-parallel pipeline* that "executes directly in the same environment
//! and with the same program and data locations as the original sequential
//! command" (§1). The emitted script:
//!
//! 1. splits each stage input into `$KQ_WORKERS` contiguous, line-aligned
//!    pieces (an `awk` splitter — the shell analogue of
//!    [`kq_stream::split_stream`]);
//! 2. runs one instance of the original, unmodified command per piece as a
//!    background job;
//! 3. combines the piece outputs with a shell translation of the
//!    synthesized combiner (`cat`, `sort -m`, summing/stitching `awk`
//!    programs, or a rerun of the command);
//! 4. where the planner eliminated an intermediate combiner (Theorem 5),
//!    pipes the pieces straight into the next command's instances instead.
//!
//! Combiners with no faithful shell translation degrade that stage to
//! sequential execution (recorded in the script as a comment), so the
//! emitted script is always correct, merely less parallel.

use kq_dsl::ast::{Candidate, Combiner, RecOp, RunOp, StructOp};
use kq_pipeline::parse::{InputSource, Script, Statement};
use kq_pipeline::plan::{PlannedScript, StageMode};
use kq_stream::Delim;
use kq_synth::SynthesizedCombiner;
use std::fmt::Write as _;

/// Options for shell emission.
#[derive(Debug, Clone)]
pub struct EmitOptions {
    /// Piece count baked into the script (overridable at run time through
    /// the `KQ_WORKERS` environment variable).
    pub workers: usize,
    /// Apply the Theorem 5 intermediate-combiner elimination. With
    /// `false` the script combines after every parallel stage (the
    /// paper's unoptimized `u_w` configuration).
    pub honor_elimination: bool,
}

impl Default for EmitOptions {
    fn default() -> Self {
        EmitOptions {
            workers: 16,
            honor_elimination: true,
        }
    }
}

/// The shell translation of one synthesized combiner.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShellCombine {
    /// `cat piece.*` (in order, or reversed for the swapped candidate).
    Concat { reversed: bool },
    /// `sort -m <flags> piece.*`.
    Merge(Vec<String>),
    /// `cat piece.* | <command>` — one re-execution over the concatenation.
    Rerun,
    /// `(back '\n' add)`: sum the single numeric column with awk.
    SumColumn,
    /// `first` and its `\n`-formatted equivalents: the first non-empty
    /// piece wins.
    FirstPiece,
    /// `second` equivalents: the last non-empty piece wins.
    LastPiece,
    /// `(stitch first)` — drop a boundary line duplicated across adjacent
    /// pieces (the `uniq` combiner).
    StitchFirst,
    /// `(stitch2 d add first)` — merge boundary records whose keys agree
    /// by summing their counts (the `uniq -c` combiner).
    Stitch2Add(Delim),
    /// `(offset d add)` — shift the numeric first field of later pieces
    /// by the running total (the `xargs wc -l` / `cat -n` combiner).
    OffsetAdd,
}

/// Picks the shell translation for a synthesized combiner, trying the
/// composite's members in order. `None` means no member is expressible.
fn shell_combine(combiner: &SynthesizedCombiner) -> Option<ShellCombine> {
    combiner.members.iter().find_map(translate_candidate)
}

fn translate_candidate(c: &Candidate) -> Option<ShellCombine> {
    use ShellCombine::*;
    let select = |is_first: bool, swapped: bool| {
        if is_first != swapped {
            FirstPiece
        } else {
            LastPiece
        }
    };
    match &c.op {
        Combiner::Rec(RecOp::Concat) => Some(Concat {
            reversed: c.swapped,
        }),
        Combiner::Run(RunOp::Merge(flags)) => Some(Merge(flags.clone())),
        Combiner::Run(RunOp::Rerun) => Some(Rerun),
        // Addition is commutative: orientation is irrelevant.
        Combiner::Rec(RecOp::Add) => Some(SumColumn),
        Combiner::Rec(RecOp::Back(Delim::Newline, b)) if **b == RecOp::Add => Some(SumColumn),
        Combiner::Rec(RecOp::First) => Some(select(true, c.swapped)),
        Combiner::Rec(RecOp::Second) => Some(select(false, c.swapped)),
        Combiner::Rec(RecOp::Back(Delim::Newline, b) | RecOp::Fuse(Delim::Newline, b)) => match **b
        {
            RecOp::First => Some(select(true, c.swapped)),
            RecOp::Second => Some(select(false, c.swapped)),
            _ => None,
        },
        // Structural combiners operate on adjacent boundaries; the swapped
        // orientation would require reversing the piece order, which no
        // corpus command needs — leave it inexpressible.
        Combiner::Struct(op) if !c.swapped => match op {
            StructOp::Stitch(RecOp::First | RecOp::Second) => Some(StitchFirst),
            StructOp::Stitch2(d, RecOp::Add, RecOp::First | RecOp::Second) => Some(Stitch2Add(*d)),
            StructOp::Offset(_, RecOp::Add) => Some(OffsetAdd),
            // `(offset d second)` leaves every line of the right stream
            // unchanged: byte-for-byte concatenation.
            StructOp::Offset(_, RecOp::Second) => Some(Concat { reversed: false }),
            _ => None,
        },
        _ => None,
    }
}

/// Quotes a word for POSIX `sh`.
pub fn quote_sh(word: &str) -> String {
    if !word.is_empty()
        && word
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-./:=,+%@^".contains(c))
    {
        return word.to_owned();
    }
    let mut out = String::with_capacity(word.len() + 2);
    out.push('\'');
    for ch in word.chars() {
        if ch == '\'' {
            out.push_str("'\\''");
        } else {
            out.push(ch);
        }
    }
    out.push('\'');
    out
}

/// A command line re-quoted for the emitted script.
fn shell_command(argv: &[String]) -> String {
    argv.iter()
        .map(|w| quote_sh(w))
        .collect::<Vec<_>>()
        .join(" ")
}

/// One emitted parallel segment: commands piped per piece, then a combine.
struct Segment {
    commands: Vec<String>,
    combine: ShellCombine,
    /// The stage whose combiner closes the segment (for rerun).
    closing_command: String,
    /// Stages whose combiners the plan eliminated inside this segment.
    eliminated: usize,
}

/// The result of emitting a script.
#[derive(Debug)]
pub struct Emitted {
    /// The shell script text.
    pub script: String,
    /// Stages degraded to sequential because their combiner has no shell
    /// translation, as `(statement, stage, combiner)` triples.
    pub degraded: Vec<(usize, usize, String)>,
    /// Input files the script expects to find (read with `cat`).
    pub required_files: Vec<String>,
}

/// Emits a planned script as a runnable POSIX shell script.
pub fn emit_script(script: &Script, plan: &PlannedScript, opts: &EmitOptions) -> Emitted {
    let mut degraded = Vec::new();
    let mut required_files = Vec::new();
    let mut body = String::new();

    for (si, (statement, planned)) in script.statements.iter().zip(&plan.statements).enumerate() {
        let tag = format!("s{}", si + 1);
        writeln!(body, "\n# --- statement {} ---", si + 1).unwrap();
        emit_source(&mut body, statement, &tag, &mut required_files);

        // Group stages into segments: a run of parallel stages whose
        // intermediate combiners were eliminated, closed by one combine.
        let mut stage_idx = 0;
        while stage_idx < statement.stages.len() {
            let planned_stage = &planned.stages[stage_idx];
            match &planned_stage.mode {
                StageMode::Sequential => {
                    let cmd = shell_command(statement.stages[stage_idx].command.argv());
                    writeln!(body, "{cmd} < \"$work/{tag}.cur\" > \"$work/{tag}.next\"").unwrap();
                    writeln!(body, "mv \"$work/{tag}.next\" \"$work/{tag}.cur\"").unwrap();
                    stage_idx += 1;
                }
                StageMode::Parallel { .. } => {
                    let (segment, consumed) =
                        collect_segment(statement, planned, stage_idx, opts, &mut degraded, si);
                    match segment {
                        Some(seg) => emit_segment(&mut body, &tag, stage_idx, &seg),
                        None => {
                            // Degraded: run the stage sequentially.
                            let cmd = shell_command(statement.stages[stage_idx].command.argv());
                            writeln!(
                                body,
                                "# combiner has no shell translation; stage kept sequential"
                            )
                            .unwrap();
                            writeln!(body, "{cmd} < \"$work/{tag}.cur\" > \"$work/{tag}.next\"")
                                .unwrap();
                            writeln!(body, "mv \"$work/{tag}.next\" \"$work/{tag}.cur\"").unwrap();
                        }
                    }
                    stage_idx += consumed;
                }
            }
        }

        match &statement.output {
            Some(target) => {
                writeln!(body, "cat \"$work/{tag}.cur\" > {}", quote_sh(target)).unwrap()
            }
            None => writeln!(body, "cat \"$work/{tag}.cur\"").unwrap(),
        }
    }

    let mut script_text = String::new();
    script_text.push_str(HEADER_COMMENT);
    for f in &required_files {
        writeln!(script_text, "#   requires: {f}").unwrap();
    }
    script_text.push_str(&prelude(opts.workers));
    script_text.push_str(&body);
    Emitted {
        script: script_text,
        degraded,
        required_files,
    }
}

/// Gathers the parallel segment starting at `start`. Returns the segment
/// (or `None` when the closing combiner is inexpressible) and the number
/// of stages consumed (≥ 1).
fn collect_segment(
    statement: &Statement,
    planned: &kq_pipeline::plan::PlannedStatement,
    start: usize,
    opts: &EmitOptions,
    degraded: &mut Vec<(usize, usize, String)>,
    statement_idx: usize,
) -> (Option<Segment>, usize) {
    let mut commands = Vec::new();
    let mut idx = start;
    let mut eliminated = 0;
    loop {
        let StageMode::Parallel {
            combiner,
            eliminated: elim,
        } = &planned.stages[idx].mode
        else {
            unreachable!("collect_segment starts on a parallel stage");
        };
        commands.push(shell_command(statement.stages[idx].command.argv()));
        let extend = *elim && opts.honor_elimination && idx + 1 < statement.stages.len();
        if extend {
            eliminated += 1;
            idx += 1;
            continue;
        }
        let consumed = idx - start + 1;
        return match shell_combine(combiner) {
            Some(combine) => (
                Some(Segment {
                    commands,
                    combine,
                    closing_command: shell_command(statement.stages[idx].command.argv()),
                    eliminated,
                }),
                consumed,
            ),
            None => {
                degraded.push((statement_idx, idx, combiner.primary().to_string()));
                // Degrade only the closing stage; preceding eliminated
                // stages are re-emitted as their own (concat) segments by
                // the caller if needed. Simplest correct behaviour:
                // degrade the whole segment to sequential stages.
                (None, consumed)
            }
        };
    }
}

fn emit_source(
    body: &mut String,
    statement: &Statement,
    tag: &str,
    required_files: &mut Vec<String>,
) {
    match &statement.input {
        InputSource::None => {
            writeln!(body, ": > \"$work/{tag}.cur\"").unwrap();
        }
        InputSource::Files(files) => {
            let quoted: Vec<String> = files.iter().map(|f| quote_sh(f)).collect();
            for f in files {
                if !required_files.contains(f) {
                    required_files.push(f.clone());
                }
            }
            writeln!(body, "cat {} > \"$work/{tag}.cur\"", quoted.join(" ")).unwrap();
        }
    }
}

fn emit_segment(body: &mut String, tag: &str, seg_idx: usize, seg: &Segment) {
    let prefix = format!("$work/{tag}.g{seg_idx}");
    let pipeline = seg.commands.join(" | ");
    if seg.eliminated > 0 {
        writeln!(
            body,
            "# parallel segment ({} intermediate combiner(s) eliminated, Thm. 5)",
            seg.eliminated
        )
        .unwrap();
    }
    writeln!(body, "kq_split \"$work/{tag}.cur\" \"{prefix}.p\"").unwrap();
    writeln!(body, "i=1").unwrap();
    writeln!(body, "while [ \"$i\" -le \"$KQ_WORKERS\" ]; do").unwrap();
    writeln!(body, "    p=$(printf '%05d' \"$i\")").unwrap();
    writeln!(
        body,
        "    ( {pipeline} ) < \"{prefix}.p.$p\" > \"{prefix}.o.$p\" &"
    )
    .unwrap();
    writeln!(body, "    i=$((i + 1))").unwrap();
    writeln!(body, "done").unwrap();
    writeln!(body, "wait").unwrap();
    let pieces = format!("\"{prefix}\".o.*");
    let combine = match &seg.combine {
        ShellCombine::Concat { reversed: false } => format!("cat {pieces}"),
        ShellCombine::Concat { reversed: true } => format!("kq_cat_rev \"{prefix}.o\""),
        ShellCombine::Merge(flags) => {
            let f = flags
                .iter()
                .map(|w| quote_sh(w))
                .collect::<Vec<_>>()
                .join(" ");
            if f.is_empty() {
                format!("sort -m {pieces}")
            } else {
                format!("sort -m {f} {pieces}")
            }
        }
        ShellCombine::Rerun => format!("cat {pieces} | {}", seg.closing_command),
        ShellCombine::SumColumn => {
            format!("awk '{{ s += $1 }} END {{ printf \"%d\\n\", s }}' {pieces}")
        }
        ShellCombine::FirstPiece => format!("kq_first_nonempty \"{prefix}.o\""),
        ShellCombine::LastPiece => format!("kq_last_nonempty \"{prefix}.o\""),
        ShellCombine::StitchFirst => format!("awk '{STITCH_FIRST_AWK}' {pieces}"),
        ShellCombine::Stitch2Add(d) => {
            let sep = match d {
                Delim::Tab => "\\t",
                _ => " ",
            };
            let prog = STITCH2_ADD_AWK.replace("{SEP}", sep);
            format!("awk '{prog}' {pieces}")
        }
        ShellCombine::OffsetAdd => format!("awk '{OFFSET_ADD_AWK}' {pieces}"),
    };
    writeln!(body, "{combine} > \"$work/{tag}.next\"").unwrap();
    writeln!(body, "mv \"$work/{tag}.next\" \"$work/{tag}.cur\"").unwrap();
}

/// Boundary dedup for `(stitch first)` — `uniq` piece outputs.
const STITCH_FIRST_AWK: &str = "FNR == 1 && NR != 1 && $0 == prev { next } { print; prev = $0 }";

/// Boundary count-merge for `(stitch2 d add first)` — `uniq -c` piece
/// outputs. Buffers one record; on a file boundary whose key matches the
/// buffered key, the counts are summed (GNU's `%7d` count padding).
const STITCH2_ADD_AWK: &str = r#"
function flushrec() { if (have) printf "%7d{SEP}%s\n", c, k }
{
    cc = $1 + 0
    kk = $0
    sub(/^[ \t]*[0-9]+{SEP}/, "", kk)
    if (FNR == 1 && have && kk == k) { c += cc; next }
    flushrec()
    c = cc; k = kk; have = 1
}
END { flushrec() }
"#;

/// Numeric-prefix shifting for `(offset d add)` — `xargs wc -l`-style
/// outputs where later pieces restart their running count.
const OFFSET_ADD_AWK: &str = r#"
FNR == 1 { off = last }
{
    if (match($0, /^[ \t]*[0-9]+/)) {
        w = RLENGTH
        v = substr($0, 1, w) + off
        printf "%" w "d%s\n", v, substr($0, w + 1)
        last = v
    } else {
        print
    }
}
"#;

const HEADER_COMMENT: &str = "#!/bin/sh
# Generated by `kumquat emit` — data-parallel version of the input script.
# Pieces per stage: $KQ_WORKERS (override via environment).
";

fn prelude(workers: usize) -> String {
    format!(
        r#": "${{KQ_WORKERS:={workers}}}"
set -eu
work=$(mktemp -d "${{TMPDIR:-/tmp}}/kumquat.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

# Splits $1 into $KQ_WORKERS contiguous line-aligned pieces "$2.<idx>".
kq_split() {{
    total=$(wc -l < "$1")
    awk -v n="$KQ_WORKERS" -v total="$total" -v prefix="$2" '
        BEGIN {{
            per = int(total / n); extra = total % n
            idx = 1; count = 0
            limit = per + (idx <= extra ? 1 : 0)
        }}
        {{
            file = sprintf("%s.%05d", prefix, idx)
            print >> file
            count++
            if (count >= limit && idx < n) {{
                close(file); idx++; count = 0
                limit = per + (idx <= extra ? 1 : 0)
            }}
        }}' "$1"
    i=1
    while [ "$i" -le "$KQ_WORKERS" ]; do
        f=$(printf '%s.%05d' "$2" "$i")
        [ -e "$f" ] || : > "$f"
        i=$((i + 1))
    done
}}

# Concatenates the pieces "$1.<idx>" in reverse index order.
kq_cat_rev() {{
    i=$KQ_WORKERS
    while [ "$i" -ge 1 ]; do
        f=$(printf '%s.%05d' "$1" "$i")
        [ -e "$f" ] && cat "$f"
        i=$((i - 1))
    done
    return 0
}}

# Prints the first non-empty piece of "$1.<idx>".
kq_first_nonempty() {{
    i=1
    while [ "$i" -le "$KQ_WORKERS" ]; do
        f=$(printf '%s.%05d' "$1" "$i")
        if [ -s "$f" ]; then cat "$f"; return 0; fi
        i=$((i + 1))
    done
    return 0
}}

# Prints the last non-empty piece of "$1.<idx>".
kq_last_nonempty() {{
    i=$KQ_WORKERS
    while [ "$i" -ge 1 ]; do
        f=$(printf '%s.%05d' "$1" "$i")
        if [ -s "$f" ]; then cat "$f"; return 0; fi
        i=$((i - 1))
    done
    return 0
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_coreutils::ExecContext;
    use kq_pipeline::parse::parse_script;
    use kq_pipeline::plan::Planner;
    use kq_synth::SynthesisConfig;
    use std::collections::HashMap;

    fn emit(script_text: &str, opts: &EmitOptions) -> Emitted {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write(
            "in.txt",
            "delta b\nalpha a\ndelta c\nbeta d\nalpha e\n".repeat(40),
        );
        let sample = ctx.vfs.read("in.txt").unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &sample);
        emit_script(&script, &plan, opts)
    }

    #[test]
    fn quoting_round_trips_special_words() {
        assert_eq!(quote_sh("A-Za-z"), "A-Za-z");
        assert_eq!(quote_sh("\\n"), "'\\n'");
        assert_eq!(quote_sh("it's"), "'it'\\''s'");
        assert_eq!(quote_sh(""), "''");
        assert_eq!(quote_sh("a b"), "'a b'");
    }

    #[test]
    fn wf_pipeline_emits_all_combiner_kinds() {
        let e = emit(
            "cat in.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn",
            &EmitOptions::default(),
        );
        assert!(e.degraded.is_empty(), "degraded: {:?}", e.degraded);
        assert!(e.script.contains("kq_split"));
        assert!(e.script.contains("sort -m -rn"));
        assert!(e.script.contains("flushrec"), "stitch2 awk expected");
        assert_eq!(e.required_files, vec!["in.txt".to_owned()]);
    }

    #[test]
    fn elimination_produces_multi_command_segment() {
        let e = emit(
            "cat in.txt | cut -d ' ' -f 1 | sort",
            &EmitOptions::default(),
        );
        // cut's concat combiner is eliminated: one segment pipes cut | sort.
        assert!(
            e.script.contains("cut -d ' ' -f 1 | sort <")
                || e.script.contains("( cut -d ' ' -f 1 | sort "),
            "expected a fused segment, got:\n{}",
            e.script
        );
        assert!(e.script.contains("eliminated, Thm. 5"));
    }

    #[test]
    fn unoptimized_emission_combines_every_stage() {
        let opts = EmitOptions {
            workers: 4,
            honor_elimination: false,
        };
        let e = emit("cat in.txt | cut -d ' ' -f 1 | sort", &opts);
        // Two separate segments → two splits.
        assert_eq!(e.script.matches("kq_split").count(), 2 + 1 /* defn */);
    }

    #[test]
    fn wc_l_uses_sum_column() {
        let e = emit("cat in.txt | grep alpha | wc -l", &EmitOptions::default());
        assert!(e.script.contains("s += $1"));
    }

    #[test]
    fn translate_select_orientation() {
        use ShellCombine::*;
        let first = Candidate::rec(RecOp::First);
        assert_eq!(translate_candidate(&first), Some(FirstPiece));
        let mut swapped = Candidate::rec(RecOp::First);
        swapped.swapped = true;
        assert_eq!(translate_candidate(&swapped), Some(LastPiece));
        let second = Candidate::rec(RecOp::Second);
        assert_eq!(translate_candidate(&second), Some(LastPiece));
    }

    #[test]
    fn translate_structural() {
        use ShellCombine::*;
        let uniq = Candidate::structural(StructOp::Stitch(RecOp::First));
        assert_eq!(translate_candidate(&uniq), Some(StitchFirst));
        let uniq_c =
            Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
        assert_eq!(translate_candidate(&uniq_c), Some(Stitch2Add(Delim::Space)));
        let fuse_add = Candidate::rec(RecOp::Fuse(Delim::Space, Box::new(RecOp::Add)));
        assert_eq!(translate_candidate(&fuse_add), None);
    }

    #[test]
    fn workers_baked_into_header() {
        let opts = EmitOptions {
            workers: 7,
            honor_elimination: true,
        };
        let e = emit("cat in.txt | sort", &opts);
        assert!(e.script.contains("KQ_WORKERS:=7"));
    }
}
