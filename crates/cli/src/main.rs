//! Thin binary shim over [`kq_cli`].

use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match kq_cli::run_cli(&args) {
        Ok(output) => {
            for note in &output.notes {
                eprintln!("kumquat: {note}");
            }
            let mut stdout = std::io::stdout().lock();
            if stdout.write_all(output.stdout.as_bytes()).is_err() {
                // Broken pipe (e.g. `kumquat corpus | head`) is not an error.
                std::process::exit(0);
            }
            // Findings exit (`check --deny-warnings`): 1, distinct from
            // the argument/IO error exit 2 below.
            if output.exit_code != 0 {
                std::process::exit(output.exit_code);
            }
        }
        Err(message) => {
            eprintln!("kumquat: {message}");
            std::process::exit(2);
        }
    }
}
