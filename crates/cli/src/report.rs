//! Human-readable rendering of synthesis reports, pipeline plans, and
//! post-run telemetry.
//!
//! [`render_run_notes`] is the one place executor telemetry becomes text:
//! every `kumquat run` — whichever `--exec` backend ran — reports the same
//! fields in the same shapes (pool accounting, early-exit ledger, spill
//! ledger, verification line), so CI greps and human eyes never chase
//! per-executor formats.

use kq_pipeline::cache::CacheStats;
use kq_pipeline::exec::TimingLog;
use kq_pipeline::parse::Script;
use kq_pipeline::plan::{PlannedScript, StageMode};
use kq_synth::{SynthesisOutcome, SynthesisReport};
use std::fmt::Write as _;

/// Renders one synthesis report the way Table 10 presents a row: command,
/// search space (with the per-class breakdown), wall-clock time, and the
/// plausible set.
pub fn render_synthesis(report: &SynthesisReport) -> String {
    let mut out = String::new();
    writeln!(out, "command:       {}", report.command).unwrap();
    writeln!(
        out,
        "search space:  {} (= {} RecOp + {} StructOp + {} RunOp)",
        report.space.total(),
        report.space.rec,
        report.space.structural,
        report.space.run
    )
    .unwrap();
    writeln!(
        out,
        "synthesis:     {:.1} ms, {} rounds, {} observations",
        report.elapsed.as_secs_f64() * 1e3,
        report.rounds,
        report.observations
    )
    .unwrap();
    writeln!(out, "input profile: {}", report.profile.describe()).unwrap();
    match &report.outcome {
        SynthesisOutcome::Synthesized(c) => {
            writeln!(out, "plausible ({}):", c.plausible.len()).unwrap();
            for (i, cand) in c.plausible.iter().enumerate() {
                writeln!(out, "  e{} = {}", i + 1, cand).unwrap();
            }
            writeln!(out, "combiner:      {}", c.primary()).unwrap();
        }
        SynthesisOutcome::NoCombiner { counterexample } => {
            writeln!(out, "combiner:      NONE — every candidate eliminated").unwrap();
            if let Some((x1, x2)) = counterexample {
                writeln!(out, "counterexample x1: {x1:?}").unwrap();
                writeln!(out, "counterexample x2: {x2:?}").unwrap();
            }
        }
    }
    out
}

/// Renders a plan as a per-stage table: mode, combiner, elimination.
pub fn render_plan(script: &Script, plan: &PlannedScript) -> String {
    let mut out = String::new();
    let (par, total) = plan.parallelized_counts();
    writeln!(
        out,
        "plan: {par}/{total} stages parallelized, {} combiner(s) eliminated (Thm. 5)",
        plan.eliminated_count()
    )
    .unwrap();
    for (si, (statement, planned)) in script.statements.iter().zip(&plan.statements).enumerate() {
        writeln!(out, "statement {}:", si + 1).unwrap();
        for (stage, ps) in statement.stages.iter().zip(&planned.stages) {
            let line = match &ps.mode {
                StageMode::Sequential => format!("  [seq]      {}", stage.command.display()),
                StageMode::Parallel {
                    combiner,
                    eliminated,
                } => {
                    let mark = if *eliminated {
                        "[par:elim]"
                    } else {
                        "[par]     "
                    };
                    format!(
                        "  {mark} {}  ⇐ {}",
                        stage.command.display(),
                        combiner.primary()
                    )
                }
            };
            writeln!(out, "{line}").unwrap();
        }
    }
    out
}

/// Total synthesis wall time in milliseconds. (An empty float sum is
/// `-0.0`, which `{:.1}` renders as "-0.0 ms"; normalize it away.)
pub(crate) fn total_synthesis_ms(reports: &[SynthesisReport]) -> f64 {
    let ms: f64 = reports.iter().map(|r| r.elapsed.as_secs_f64() * 1e3).sum();
    if ms == 0.0 {
        0.0
    } else {
        ms
    }
}

/// Renders the planner's synthesis ledger: per-command wall time for
/// every command synthesized this process (cache hits cost none and list
/// none) plus the cache hit/miss/validated counters.
pub fn render_synthesis_summary(reports: &[SynthesisReport], stats: CacheStats) -> String {
    let mut out = String::new();
    let total_ms = total_synthesis_ms(reports);
    writeln!(
        out,
        "synthesis: {} command(s) synthesized in {total_ms:.1} ms",
        reports.len()
    )
    .unwrap();
    for report in reports {
        let verdict = match &report.outcome {
            SynthesisOutcome::Synthesized(c) => c.primary().to_string(),
            SynthesisOutcome::NoCombiner { .. } => "no combiner".to_owned(),
        };
        writeln!(
            out,
            "  {:>9.2} ms  {:<28} {verdict}",
            report.elapsed.as_secs_f64() * 1e3,
            report.command,
        )
        .unwrap();
    }
    writeln!(
        out,
        "combiner cache: {} hit(s) ({} validated, {} rejected), {} miss(es), {} loaded from disk",
        stats.hits, stats.validated, stats.rejected, stats.misses, stats.loaded
    )
    .unwrap();
    out
}

/// Renders the post-run telemetry notes shared by every executor: the
/// dataflow pool-accounting line, the early-exit ledger, the spill
/// ledger, and the verification line. One renderer for all `--exec`
/// backends — the field names and shapes never depend on which executor
/// produced the [`TimingLog`].
pub fn render_run_notes(
    executor: &str,
    workers: usize,
    statements: usize,
    plan: &PlannedScript,
    timings: &TimingLog,
    verified: bool,
) -> Vec<String> {
    let mut notes = Vec::new();
    // Worker accounting: the dataflow executor runs the whole script —
    // every statement, segment, and fold — on one fixed pool, so the
    // thread budget is exactly `--workers` regardless of statement count.
    // (CI greps this line in its multi-statement smoke.)
    if executor == "dataflow" {
        notes.push(format!(
            "dataflow: {statements} statement(s) share one work-stealing pool of {workers} worker thread(s)",
        ));
    }
    // Adaptive ledger: present exactly when an auto knob ran. Reports the
    // chunk-size trajectory (initial heuristic → coarsened maximum) and
    // the controller's credit movement. (CI greps this line.)
    if let Some(a) = timings.adaptive {
        let chunk_part = if a.auto_chunk {
            format!(
                "chunk auto ({} KiB initial, {} KiB max)",
                a.initial_chunk_bytes / 1024,
                a.max_chunk_bytes / 1024
            )
        } else {
            "chunk fixed".to_owned()
        };
        let credit_part = if a.rebalanced {
            format!("queue credit rebalanced ({} shift(s))", a.credit_shifts)
        } else {
            "queue credit fixed".to_owned()
        };
        notes.push(format!("adaptive: {chunk_part}; {credit_part}"));
    }
    // Early-exit ledger: a prefix-bounded stage (head -n k / sed kq) that
    // satisfied its demand before end-of-input reports how little it
    // consumed. The stage number comes from the EarlyExit record —
    // timings are per *segment*, and fused chunk-local runs would make
    // the timing index drift from the pipeline position.
    for (si, stages) in timings.statements.iter().enumerate() {
        for stage in stages {
            if let Some(early) = stage.early_exit {
                notes.push(format!(
                    "early-exit: statement {} stage {} ({}) satisfied after {} chunk(s); \
                     demand token released before end-of-input",
                    si + 1,
                    early.stage + 1,
                    stage.label,
                    early.chunks
                ));
            }
        }
    }
    // Spill ledger: every barrier fold that ran under a --spill-mb budget
    // reports its disk traffic; a fold that stayed within budget reports
    // nothing (its telemetry is Some but all-zero).
    for (si, stages) in timings.statements.iter().enumerate() {
        for stage in stages {
            if let Some(sp) = stage.spill.filter(|sp| sp.runs_spilled > 0) {
                notes.push(format!(
                    "spill: statement {} ({}) wrote {} run(s), {} KiB to disk, \
                     mapped {} KiB back for the merge",
                    si + 1,
                    stage.label,
                    sp.runs_spilled,
                    sp.bytes_written / 1024,
                    sp.bytes_mapped / 1024
                ));
            }
        }
    }
    let (par, total) = plan.parallelized_counts();
    if verified {
        notes.push(format!(
            "verified: {executor} parallel output (w={workers}) equals serial output; \
             {par}/{total} stages parallel, {} combiner(s) eliminated",
            plan.eliminated_count()
        ));
    } else {
        notes.push(format!(
            "unverified (--no-verify): {executor} output (w={workers}); \
             {par}/{total} stages parallel, {} combiner(s) eliminated",
            plan.eliminated_count()
        ));
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_coreutils::ExecContext;
    use kq_pipeline::parse::parse_script;
    use kq_pipeline::plan::Planner;
    use kq_synth::{synthesize, SynthesisConfig};
    use std::collections::HashMap;

    #[test]
    fn synthesis_report_renders_table10_shape() {
        let cmd = kq_coreutils::parse_command("wc -l").unwrap();
        let ctx = ExecContext::default();
        let report = synthesize(&cmd, &ctx, &SynthesisConfig::default());
        let text = render_synthesis(&report);
        assert!(text.contains("search space:"));
        assert!(text.contains("RecOp"));
        assert!(text.contains("(back '\\n' add)"), "got: {text}");
    }

    #[test]
    fn plan_renders_stage_modes() {
        let script = parse_script("cat in.txt | grep a | wc -l", &HashMap::new()).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("in.txt", "a x\nb y\na z\n".repeat(30));
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, "a x\nb y\na z\n");
        let text = render_plan(&script, &plan);
        assert!(text.contains("stages parallelized"));
        assert!(text.contains("[par"));
    }

    #[test]
    fn synthesis_summary_lists_per_command_times_and_cache_counts() {
        let script = parse_script("cat in.txt | grep a | grep a | wc -l", &HashMap::new()).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("in.txt", "a x\nb y\na z\n".repeat(30));
        let mut planner = Planner::new(SynthesisConfig::default());
        let _ = planner.plan(&script, &ctx, "a x\nb y\na z\n");
        let text = render_synthesis_summary(&planner.reports, planner.cache_stats());
        // grep is statically stateless (lattice short-circuit): only wc
        // actually synthesizes.
        assert!(text.contains("1 command(s) synthesized"), "{text}");
        assert!(!text.contains(" ms  grep a"), "{text}");
        assert!(text.contains(" ms  wc -l"), "{text}");
        assert!(text.contains("combiner cache:"), "{text}");
        assert!(text.contains("1 miss(es)"), "{text}");
        // The duplicated grep stage is a hit, not a second synthesis.
        assert!(text.contains("hit(s)"), "{text}");
    }
}
