//! Implementations of the `kumquat` subcommands.
//!
//! Each subcommand is a function from parsed arguments to the text it
//! prints on stdout, so integration tests drive them without spawning the
//! binary. Diagnostics go to the returned [`CliOutput::notes`] (the binary
//! prints them on stderr).

use crate::args::ParsedArgs;
use crate::emit::{emit_script, EmitOptions};
use crate::report::{render_plan, render_synthesis, render_synthesis_summary};
use kq_coreutils::ExecContext;
use kq_io::{IngestOptions, MmapMode};
use kq_pipeline::cache::CombinerCache;
use kq_pipeline::exec::{run_parallel, run_serial};
use kq_pipeline::parse::{parse_script, InputSource, Script};
use kq_pipeline::plan::{PlannedScript, Planner};
use kq_stream::Bytes;
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// What a subcommand produced.
#[derive(Debug, Default)]
pub struct CliOutput {
    /// Text for stdout.
    pub stdout: String,
    /// Diagnostics for stderr.
    pub notes: Vec<String>,
    /// Process exit code. Nonzero for subcommands that ran successfully
    /// but *found* something — `check --deny-warnings` on a script with
    /// warnings exits 1 while argument/IO errors keep exiting 2 via
    /// `Err`.
    pub exit_code: i32,
}

impl CliOutput {
    fn from_stdout(stdout: String) -> CliOutput {
        CliOutput {
            stdout,
            notes: Vec::new(),
            exit_code: 0,
        }
    }
}

/// Top-level dispatch. `args` excludes the program name.
pub fn run_cli(args: &[String]) -> Result<CliOutput, String> {
    let parsed = ParsedArgs::parse(args).map_err(|e| format!("{e}\n\n{USAGE}"))?;
    match parsed.subcommand.as_str() {
        "synthesize" => cmd_synthesize(&parsed),
        "check" => cmd_check(&parsed),
        "plan" => cmd_plan(&parsed),
        "run" => cmd_run(&parsed),
        "emit" => cmd_emit(&parsed),
        "corpus" => cmd_corpus(&parsed),
        "trace" => cmd_trace(&parsed),
        "help" | "--help" | "-h" => Ok(CliOutput::from_stdout(USAGE.to_owned())),
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    }
}

/// Usage text shown by `kumquat help` and on argument errors.
pub const USAGE: &str = "kumquat — synthesize data-parallel Unix pipelines (PPoPP'22 reproduction)

USAGE:
    kumquat synthesize '<command>' [--seed N] [--external]
        Synthesize a combiner for one command and print the report.
        --external probes the real system binary (the paper's setup)
        instead of the in-process implementation.
    kumquat check <script|file> [--var NAME=VALUE,...]
                                [--format human|json] [--deny-warnings]
        Statically analyze a script without executing or synthesizing
        anything: classify every command on the effect lattice
        (stateless / pure-parallelizable / commutative-fold /
        order-sensitive / unknown), lint the script's file accesses for
        hazards (use-before-def KQ101, dead writes KQ102, read/write
        aliasing KQ103), and verify each statement's dataflow graph
        (structural invariants KQ201, queue-credit deadlock-freedom
        KQ202, fusion legality KQ203). Findings carry stable KQnnn codes
        and line/column spans. Exits 0 when the script passes, 1 when it
        does not; --deny-warnings makes warnings fail too; --format json
        emits a machine-readable report.
    kumquat plan <script|file> [--var NAME=VALUE,...] [--input FILE]
                               [--synth-workers N] [--combiner-cache FILE]
                               [--rerun-threshold R]
        Parse a pipeline script and print the parallelization plan plus a
        synthesis summary (per-command wall time, cache hit/miss counts).
        --synth-workers fans candidate filtering and distinct-command
        synthesis out over N threads (plans are identical for every N);
        --combiner-cache persists synthesized combiners to FILE so repeat
        invocations skip synthesis (on-disk hits are re-validated against
        a fresh observation before being trusted); --rerun-threshold sets
        the output/input shrink ratio, in (0, 1], below which a
        rerun-combiner stage still parallelizes (default 0.5).
    kumquat run <script|file> [--workers N] [--no-opt] [--var ...]
                               [--exec static|chunked|streaming|dataflow]
                               [--chunk-kb N|auto] [--queue-depth N|auto]
                               [--mmap auto|on|off] [--no-verify]
                               [--synth-workers N] [--combiner-cache FILE]
                               [--rerun-threshold R]
                               [--spill-mb N] [--spill-dir DIR]
                               [--trace-out FILE] [--metrics]
        Execute a script with N-way data parallelism (default 4); the
        parallel output is verified against the serial output unless
        --no-verify is given (the serial oracle re-reads the whole input
        onto the heap — skip it for out-of-core runs). Files named
        by the script are read from the host filesystem — memory-mapped
        into the data plane when large (--mmap auto, the default; 'on'
        and 'off' force one backing), so multi-GB inputs are never copied
        into the heap. The chunked executor load-balances many small
        chunks over the worker pool; the streaming executor additionally
        pipelines stages through bounded chunk queues so a stage starts
        before its predecessor finishes, and cancels upstream work early
        once a prefix-bounded consumer (head -n k, sed kq) is satisfied
        (reported as 'early-exit: ... after M chunk(s)'). The dataflow
        executor — the default — compiles every statement to a dataflow
        graph and runs the whole script on one shared work-stealing pool
        of exactly --workers threads: independent statements overlap,
        dependent ones (linked by > file redirects) wait, and early exit
        also drops chunks already queued upstream. (--executor is
        accepted as an alias for --exec.) Under --exec dataflow the two
        capacity knobs accept 'auto': --chunk-kb auto derives each
        statement's chunk size from its input size and the worker count,
        then coarsens barrier-feeding chunks online so sort-style folds
        merge few large runs; --queue-depth auto starts every queue at
        the default credit and rebalances credit from starved queues to
        gated ones from live stall telemetry. Adaptation never changes
        output bytes — only chunk boundaries and scheduling — and is
        reported in an 'adaptive: ...' note. --spill-mb N
        (streaming/dataflow only) bounds
        the memory of barrier folds (sort and friends): once a fold's
        resident sorted runs would exceed N MiB, further runs are written
        to temp files and mapped back for the final k-way merge, so a
        sort's peak memory stays O(budget + merge window) instead of
        O(input). Run files live in --spill-dir (default: the system temp
        dir) and are unlinked as soon as they are mapped, so they never
        outlive the run. Disk traffic is reported as 'spill: ...' notes.
        --trace-out FILE records a span for every unit of work in every
        layer (planning, synthesis, ingest, chunking, folds, executor
        tasks) and writes FILE as JSONL plus FILE's stem + '.chrome.json'
        as a Chrome trace_event file — open the latter in Perfetto
        (ui.perfetto.dev) or chrome://tracing to see one track per worker
        thread and one per dataflow node. --metrics prints aggregated
        span/counter totals as end-of-run notes. Both are off by default
        and cost nothing when off.
    kumquat trace report FILE [--top N]
        Analyze a --trace-out JSONL file: per-node busy time, the
        critical path through the dataflow graph (whose windows tile the
        trace, so the path total matches the run's wall time), and the
        top N bottleneck nodes (default 5).
    kumquat emit <script|file> [--workers N] [--no-opt] [--out FILE]
        Compile the script into a runnable POSIX shell script that uses
        the real Unix commands plus the synthesized combiners.
    kumquat corpus [--suite NAME] [--plan] [--combiner-cache FILE]
                   [--synth-workers N]
        List the 70-script benchmark corpus from the paper. With --plan,
        generate each script's inputs and plan it, sharing one combiner
        cache across the whole corpus, then print per-command synthesis
        times and cache statistics (CI plans the corpus twice against a
        shared --combiner-cache and asserts the second pass reports zero
        synthesis rounds).
";

fn synthesis_config(args: &ParsedArgs) -> Result<SynthesisConfig, String> {
    let mut config = SynthesisConfig::default();
    config.rng_seed = args.opt_parse("seed", config.rng_seed)?;
    config.workers = args.opt_parse_nonzero("synth-workers", 4)?;
    Ok(config)
}

/// Builds the planner the way every planning subcommand shares: synthesis
/// config from `--seed`/`--synth-workers`, an on-disk combiner cache when
/// `--combiner-cache` is given, and the `--rerun-threshold` heuristic
/// knob. Cache-load warnings land in `notes`.
fn planner_from_args(args: &ParsedArgs, notes: &mut Vec<String>) -> Result<Planner, String> {
    let config = synthesis_config(args)?;
    let mut planner = match args.opt("combiner-cache") {
        Some(path) => Planner::with_cache(config.clone(), CombinerCache::open(path, &config)),
        None => Planner::new(config),
    };
    planner.rerun_shrink_threshold = args.opt_parse_ratio("rerun-threshold", 0.5)?;
    notes.extend(planner.cache_warnings().iter().cloned());
    Ok(planner)
}

/// The one-line synthesis/cache summary appended to `plan`/`run` notes,
/// plus the cache write-back.
fn finish_planning(planner: &mut Planner, notes: &mut Vec<String>) {
    let stats = planner.cache_stats();
    let synth_ms = crate::report::total_synthesis_ms(&planner.reports);
    let rounds: usize = planner.reports.iter().map(|r| r.rounds).sum();
    notes.push(format!(
        "synthesis: {} command(s) synthesized in {synth_ms:.1} ms ({rounds} round(s)); \
         combiner cache: {} hit(s) ({} validated, {} rejected), {} miss(es); \
         lattice: {} short-circuit(s)",
        planner.reports.len(),
        stats.hits,
        stats.validated,
        stats.rejected,
        stats.misses,
        planner.lattice_short_circuits,
    ));
    let path = planner
        .cache_path()
        .map(|p| p.display().to_string())
        .unwrap_or_default();
    match planner.save_cache() {
        Ok(true) => notes.push(format!("combiner cache written to {path}")),
        Ok(false) => {}
        Err(e) => notes.push(format!("combiner cache not saved: {e}")),
    }
}

fn cmd_synthesize(args: &ParsedArgs) -> Result<CliOutput, String> {
    let [line] = args.positional.as_slice() else {
        return Err("synthesize expects exactly one command argument".into());
    };
    let mut notes = Vec::new();
    // --external reproduces the paper's exact setup: the black box is the
    // real system binary, spawned per probe, not our in-process model.
    let command = if args.flag("external") {
        let words = kq_coreutils::split_words(line).map_err(|e| e.to_string())?;
        let imp =
            kq_coreutils::external::ExternalCommand::new(&words).map_err(|e| e.to_string())?;
        notes.push("probing the real system binary (per-observation process spawns)".into());
        kq_coreutils::Command::custom(words, Box::new(imp))
    } else {
        kq_coreutils::parse_command(line).map_err(|e| e.to_string())?
    };
    let ctx = ExecContext::default();
    let report = kq_synth::synthesize(&command, &ctx, &synthesis_config(args)?);
    Ok(CliOutput {
        stdout: render_synthesis(&report),
        notes,
        exit_code: 0,
    })
}

/// `kumquat check`: the static analysis pass — parse, classify on the
/// effect lattice, lint VFS hazards, verify dataflow graphs. Never
/// executes a command and never synthesizes, so it is safe to run on
/// scripts whose input files do not exist.
fn cmd_check(args: &ParsedArgs) -> Result<CliOutput, String> {
    let [arg] = args.positional.as_slice() else {
        return Err("check expects exactly one script argument".into());
    };
    let ingest = ingest_options(args)?;
    let text = load_script_text(arg, &ingest)?;
    let env: HashMap<String, String> = args.vars()?.into_iter().collect();
    let analysis = kq_analyze::check_script(&text, &env);
    let stdout = match args.opt("format").unwrap_or("human") {
        "human" => analysis.render_human(),
        "json" => {
            let mut json = analysis.to_json();
            json.push('\n');
            json
        }
        other => return Err(format!("--format must be 'human' or 'json', got {other:?}")),
    };
    Ok(CliOutput {
        stdout,
        notes: Vec::new(),
        exit_code: i32::from(!analysis.passes(args.flag("deny-warnings"))),
    })
}

/// The ingest policy from `--mmap auto|on|off` (default `auto`: map files
/// at or above the size threshold, heap-read the rest).
fn ingest_options(args: &ParsedArgs) -> Result<IngestOptions, String> {
    match args.opt("mmap") {
        None => Ok(IngestOptions::default()),
        Some(v) => v
            .parse::<MmapMode>()
            .map(IngestOptions::with_mode)
            .map_err(|e| format!("--mmap: {e}")),
    }
}

/// The one host-file ingest door: every path the CLI reads — the script
/// argument, files the script references, `--input` — comes through here,
/// so error attribution (`path: message`) and the hard UTF-8 policy are
/// identical everywhere, and `--mmap` governs them all. Large files enter
/// the data plane as mapped regions without a heap read.
fn ingest_file(path: &str, opts: &IngestOptions) -> Result<Bytes, String> {
    kq_io::read_path_text(path, opts).map_err(|e| format!("{path}: {e}"))
}

/// Reads the script argument: a file path when one exists, otherwise the
/// argument itself is the script text.
fn load_script_text(arg: &str, opts: &IngestOptions) -> Result<String, String> {
    if Path::new(arg).is_file() {
        ingest_file(arg, opts).map(Bytes::into_string)
    } else if arg.contains('|') || arg.contains(' ') {
        Ok(arg.to_owned())
    } else {
        Err(format!("{arg}: no such file (and not a pipeline)"))
    }
}

/// Loads files the script references from the host filesystem into the
/// virtual filesystem, returning notes about anything missing.
fn load_referenced_files(script: &Script, ctx: &ExecContext, opts: &IngestOptions) -> Vec<String> {
    let mut notes = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    for statement in &script.statements {
        if let InputSource::Files(files) = &statement.input {
            wanted.extend(files.iter().cloned());
        }
        for stage in &statement.stages {
            // Non-option argv words that exist on the host are loaded too
            // (dictionaries for `comm`, file lists for `xargs cat`).
            for word in stage.command.argv().iter().skip(1) {
                if !word.starts_with('-') && Path::new(word).is_file() {
                    wanted.push(word.clone());
                }
            }
        }
        // Redirect targets are produced by the run itself.
        if let Some(target) = &statement.output {
            notes.push(format!("writes {target} into the virtual filesystem"));
        }
    }
    wanted.sort();
    wanted.dedup();
    for path in wanted {
        if ctx.vfs.exists(&path) {
            continue;
        }
        if !Path::new(&path).is_file() {
            notes.push(format!("input file {path} not found on host"));
            continue;
        }
        match ingest_file(&path, opts) {
            Ok(content) => {
                if content.is_mmap_backed() {
                    notes.push(format!(
                        "mapped {path} ({} bytes, zero-copy)",
                        content.len()
                    ));
                }
                ctx.vfs.write(path, content);
            }
            Err(e) => notes.push(format!("input file {e}")),
        }
    }
    notes
}

struct PlannedRun {
    script: Script,
    plan: PlannedScript,
    ctx: ExecContext,
    notes: Vec<String>,
    planner: Planner,
}

fn plan_from_args(args: &ParsedArgs) -> Result<PlannedRun, String> {
    let [arg] = args.positional.as_slice() else {
        return Err("expected exactly one script argument".into());
    };
    // Validate every synthesis knob up front — like the executor capacity
    // knobs, a bad --synth-workers/--rerun-threshold fails before any
    // file is read or synthesis starts.
    synthesis_config(args)?;
    args.opt_parse_ratio("rerun-threshold", 0.5)?;
    let ingest = ingest_options(args)?;
    let text = load_script_text(arg, &ingest)?;
    let env: HashMap<String, String> = args.vars()?.into_iter().collect();
    let script = parse_script(&text, &env).map_err(|e| e.to_string())?;
    let ctx = ExecContext::default();
    let mut notes = load_referenced_files(&script, &ctx, &ingest);
    if let Some(input) = args.opt("input") {
        match ingest_file(input, &ingest) {
            Ok(content) => ctx.vfs.write(input, content),
            Err(e) => notes.push(format!("--input {e}")),
        }
    }
    let sample = planning_sample(&script, &ctx);
    let mut planner = planner_from_args(args, &mut notes)?;
    let plan = planner.plan(&script, &ctx, &sample);
    finish_planning(&mut planner, &mut notes);
    Ok(PlannedRun {
        script,
        plan,
        ctx,
        notes,
        planner,
    })
}

fn planning_sample(script: &Script, ctx: &ExecContext) -> String {
    for statement in &script.statements {
        if let InputSource::Files(files) = &statement.input {
            if let Some(content) = files.first().and_then(|f| ctx.vfs.read_bytes(f)) {
                // Copy only the sampled prefix — never the whole file (the
                // input may be a multi-GB mapped region). Walk the cut
                // back off any UTF-8 continuation bytes.
                let bytes = content.as_bytes();
                let mut cap = bytes.len().min(64 * 1024);
                while cap > 0 && cap < bytes.len() && (bytes[cap] & 0xC0) == 0x80 {
                    cap -= 1;
                }
                let mut sample = String::from_utf8_lossy(&bytes[..cap]).into_owned();
                if !sample.ends_with('\n') {
                    sample.push('\n');
                }
                return sample;
            }
        }
    }
    "the quick brown fox\njumps over the lazy dog\nthe end\n".repeat(30)
}

fn cmd_plan(args: &ParsedArgs) -> Result<CliOutput, String> {
    let planned = plan_from_args(args)?;
    let mut stdout = render_plan(&planned.script, &planned.plan);
    stdout.push_str(&render_synthesis_summary(
        &planned.planner.reports,
        planned.planner.cache_stats(),
    ));
    Ok(CliOutput {
        stdout,
        notes: planned.notes,
        exit_code: 0,
    })
}

fn cmd_run(args: &ParsedArgs) -> Result<CliOutput, String> {
    // All capacity knobs are validated up front — even ones the selected
    // executor ignores — so `--queue-depth 0` fails the same clear way
    // under every `--exec`. The dataflow executor is the default; the
    // adaptive sentinels (`--chunk-kb auto`, `--queue-depth auto`) parse
    // to `None` and are rejected below for the executors that cannot
    // honor them.
    let executor = args
        .opt("exec")
        .or_else(|| args.opt("executor"))
        .unwrap_or("dataflow");
    let workers = args.opt_parse_nonzero("workers", 4)?;
    let chunk_kb = args.opt_parse_nonzero_or_auto("chunk-kb", 64)?;
    let queue_depth = args.opt_parse_nonzero_or_auto("queue-depth", 4)?;
    if executor != "dataflow" {
        if chunk_kb.is_none() {
            return Err("--chunk-kb auto requires --exec dataflow".into());
        }
        if queue_depth.is_none() {
            return Err("--queue-depth auto requires --exec dataflow".into());
        }
    }
    let fixed_chunk_bytes = |kb: Option<usize>| kb.unwrap_or(64) * 1024;
    let fixed_depth = |d: Option<usize>| d.unwrap_or(4);
    let honor = !args.flag("no-opt");
    // --spill-mb turns on bounded-memory barrier folds (streaming and
    // dataflow executors): sorted runs past the budget go to temp files
    // and come back memory-mapped for the final merge. Off by default —
    // spilling trades disk I/O for resident memory. --spill-dir overrides
    // the run-file directory (default: the system temp dir) but does not
    // by itself enable spilling.
    let spill = match args.opt("spill-mb") {
        None => None,
        Some(_) => Some(kq_dsl::SpillPolicy {
            budget_bytes: args.opt_parse_nonzero("spill-mb", 1)? * 1024 * 1024,
            dir: args.opt("spill-dir").map(std::path::PathBuf::from),
        }),
    };
    if spill.is_some() && !matches!(executor, "streaming" | "dataflow") {
        return Err("--spill-mb requires --exec streaming or --exec dataflow".into());
    }
    // The trace session wraps planning, the serial oracle, and the
    // parallel run: --trace-out captures every layer's spans, --metrics
    // aggregates them into the end-of-run metrics block. Off by default —
    // with neither flag the recorder stays a relaxed-load no-op.
    let trace_out = args.opt("trace-out").map(str::to_owned);
    let want_metrics = args.flag("metrics");
    let session = (trace_out.is_some() || want_metrics).then(kq_trace::TraceSession::start);
    let planned = plan_from_args(args)?;
    // The serial oracle gathers the whole input and output on the heap —
    // exactly what an out-of-core run cannot afford. --no-verify skips it
    // (the differential suite pins executor equivalence corpus-wide).
    let serial = if args.flag("no-verify") {
        None
    } else {
        Some(run_serial(&planned.script, &planned.ctx).map_err(|e| e.to_string())?)
    };
    let parallel = match executor {
        "static" => run_parallel(&planned.script, &planned.plan, &planned.ctx, workers, honor)
            .map_err(|e| e.to_string())?,
        "chunked" => {
            let opts = kq_pipeline::chunked::ChunkedOptions {
                workers,
                chunk_bytes: fixed_chunk_bytes(chunk_kb),
                honor_elimination: honor,
            };
            kq_pipeline::chunked::run_chunked(&planned.script, &planned.plan, &planned.ctx, &opts)
                .map_err(|e| e.to_string())?
        }
        "streaming" => {
            let opts = kq_pipeline::StreamingOptions {
                workers,
                chunk_bytes: fixed_chunk_bytes(chunk_kb),
                queue_depth: fixed_depth(queue_depth),
                fuse_streamable: honor,
                spill: spill.clone(),
            };
            kq_pipeline::run_streaming(&planned.script, &planned.plan, &planned.ctx, &opts)
                .map_err(|e| e.to_string())?
        }
        "dataflow" => {
            let opts = kq_pipeline::DataflowOptions {
                workers,
                chunk: match chunk_kb {
                    Some(kb) => kq_pipeline::ChunkSizing::Fixed(kb * 1024),
                    None => kq_pipeline::ChunkSizing::Auto,
                },
                queue: match queue_depth {
                    Some(d) => kq_pipeline::QueueCredit::Fixed(d),
                    None => kq_pipeline::QueueCredit::Auto,
                },
                fuse_streamable: honor,
                spill: spill.clone(),
            };
            kq_pipeline::run_dataflow(&planned.script, &planned.plan, &planned.ctx, &opts)
                .map_err(|e| e.to_string())?
        }
        other => {
            return Err(format!(
                "--exec must be 'static', 'chunked', 'streaming', or 'dataflow', got {other:?}"
            ))
        }
    };
    let mut notes = planned.notes;
    if let Some(serial) = &serial {
        if parallel.output != serial.output {
            return Err("parallel output diverged from serial output (combiner bug)".into());
        }
    }
    notes.extend(crate::report::render_run_notes(
        executor,
        workers,
        planned.script.statements.len(),
        &planned.plan,
        &parallel.timings,
        serial.is_some(),
    ));
    if let Some(session) = session {
        let records = session.finish();
        if let Some(path) = &trace_out {
            notes.extend(write_trace_files(path, &records)?);
        }
        if want_metrics {
            notes.extend(kq_trace::report::render_metrics(&records));
        }
    }
    Ok(CliOutput {
        stdout: parallel.output.into_string(),
        notes,
        exit_code: 0,
    })
}

/// Writes the two `--trace-out` artifacts: the JSONL record stream at
/// `path` and a Chrome `trace_event` file (loadable in Perfetto or
/// `chrome://tracing`) next to it with a `.chrome.json` suffix.
fn write_trace_files(path: &str, records: &[kq_trace::Record]) -> Result<Vec<String>, String> {
    let mut jsonl = Vec::new();
    kq_trace::write_jsonl(records, &mut jsonl).map_err(|e| format!("{path}: {e}"))?;
    std::fs::write(path, jsonl).map_err(|e| format!("{path}: {e}"))?;
    let chrome_path = match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.chrome.json"),
        None => format!("{path}.chrome.json"),
    };
    let mut chrome = Vec::new();
    kq_trace::write_chrome_trace(records, &mut chrome)
        .map_err(|e| format!("{chrome_path}: {e}"))?;
    std::fs::write(&chrome_path, chrome).map_err(|e| format!("{chrome_path}: {e}"))?;
    Ok(vec![format!(
        "trace: {} record(s) written to {path} (JSONL) and {chrome_path} (Chrome trace_event; \
         open in Perfetto or chrome://tracing)",
        records.len()
    )])
}

/// `kumquat trace report FILE [--top N]`: parse a `--trace-out` JSONL
/// file, compute per-node busy time and the critical path through the
/// dataflow graph, and print the bottleneck summary.
fn cmd_trace(args: &ParsedArgs) -> Result<CliOutput, String> {
    let top = args.opt_parse_nonzero("top", 5)?;
    match args.positional.as_slice() {
        [action, file] if action == "report" => {
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let records = kq_trace::parse_jsonl(&text).map_err(|e| format!("{file}: {e}"))?;
            let analysis = kq_trace::report::analyze(&records);
            Ok(CliOutput::from_stdout(kq_trace::report::render_report(
                &analysis, top,
            )))
        }
        _ => Err("trace expects: trace report FILE [--top N]".into()),
    }
}

fn cmd_emit(args: &ParsedArgs) -> Result<CliOutput, String> {
    let workers = args.opt_parse_nonzero("workers", 16)?;
    let opts = EmitOptions {
        workers,
        honor_elimination: !args.flag("no-opt"),
    };
    let planned = plan_from_args(args)?;
    let emitted = emit_script(&planned.script, &planned.plan, &opts);
    let mut notes = planned.notes;
    for (si, stage, combiner) in &emitted.degraded {
        notes.push(format!(
            "statement {} stage {}: combiner {combiner} has no shell translation; \
             stage emitted sequential",
            si + 1,
            stage + 1
        ));
    }
    if let Some(path) = args.opt("out") {
        std::fs::write(path, &emitted.script).map_err(|e| format!("{path}: {e}"))?;
        notes.push(format!("wrote {path}"));
        Ok(CliOutput {
            stdout: String::new(),
            notes,
            exit_code: 0,
        })
    } else {
        Ok(CliOutput {
            stdout: emitted.script,
            notes,
            exit_code: 0,
        })
    }
}

fn cmd_corpus(args: &ParsedArgs) -> Result<CliOutput, String> {
    let filter = args.opt("suite");
    if args.flag("plan") {
        return cmd_corpus_plan(args, filter);
    }
    let mut out = String::new();
    let mut shown = 0usize;
    for script in kq_workloads::corpus() {
        let suite = script.suite.dir();
        if filter.is_some_and(|f| f != suite) {
            continue;
        }
        shown += 1;
        let stages: usize = script
            .text
            .lines()
            .map(|l| l.matches('|').count() + usize::from(!l.trim().is_empty()))
            .sum();
        writeln!(
            out,
            "{suite:>14}  {:<12} {:<38} ~{stages} stage(s)",
            script.id, script.name
        )
        .unwrap();
    }
    if shown == 0 {
        return Err(format!(
            "no scripts match --suite {:?} (suites: analytics-mts, oneliners, poets, unix50)",
            filter.unwrap_or("")
        ));
    }
    writeln!(out, "{shown} script(s)").unwrap();
    Ok(CliOutput::from_stdout(out))
}

/// `kumquat corpus --plan`: generate each corpus script's inputs, plan it
/// against one shared planner (and, with `--combiner-cache`, one shared
/// on-disk store), and report per-command synthesis times plus cache
/// statistics. The trailing "synthesis rounds" line is what CI's
/// warm-cache job asserts reaches zero on the second pass.
fn cmd_corpus_plan(args: &ParsedArgs, filter: Option<&str>) -> Result<CliOutput, String> {
    let mut notes = Vec::new();
    let mut planner = planner_from_args(args, &mut notes)?;
    let scale = kq_workloads::Scale::tests();
    let mut out = String::new();
    let mut shown = 0usize;
    for script in kq_workloads::corpus() {
        let suite = script.suite.dir();
        if filter.is_some_and(|f| f != suite) {
            continue;
        }
        let ctx = ExecContext::default();
        let env = kq_workloads::setup(script, &ctx, &scale, 0xC0FFEE);
        let parsed =
            parse_script(script.text, &env).map_err(|e| format!("{suite}/{}: {e}", script.id))?;
        let sample = corpus_planning_sample(&env, &ctx)
            .ok_or_else(|| format!("{suite}/{}: no $IN input generated", script.id))?;
        let plan = planner.plan(&parsed, &ctx, &sample);
        let (k, n) = plan.parallelized_counts();
        writeln!(
            out,
            "{suite:>14}  {:<16} {k}/{n} stages parallel",
            script.id
        )
        .unwrap();
        shown += 1;
    }
    if shown == 0 {
        return Err(format!(
            "no scripts match --suite {:?} (suites: analytics-mts, oneliners, poets, unix50)",
            filter.unwrap_or("")
        ));
    }
    out.push_str(&render_synthesis_summary(
        &planner.reports,
        planner.cache_stats(),
    ));
    let rounds: usize = planner.reports.iter().map(|r| r.rounds).sum();
    writeln!(
        out,
        "planned {shown} script(s); synthesis rounds: {rounds}; \
         lattice short-circuits: {}",
        planner.lattice_short_circuits
    )
    .unwrap();
    finish_planning(&mut planner, &mut notes);
    Ok(CliOutput {
        stdout: out,
        notes,
        exit_code: 0,
    })
}

/// The planning sample for a corpus script: a line-aligned 16 KiB prefix
/// of its generated `$IN` input (the same probe the corpus test suite
/// plans against).
fn corpus_planning_sample(env: &HashMap<String, String>, ctx: &ExecContext) -> Option<String> {
    let sample = ctx.vfs.read(env.get("IN")?)?;
    Some(kq_workloads::planning_sample(&sample, 16_000).to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(words: &[&str]) -> Result<CliOutput, String> {
        let v: Vec<String> = words.iter().map(|s| (*s).to_owned()).collect();
        run_cli(&v)
    }

    #[test]
    fn synthesize_subcommand_reports_combiner() {
        let out = call(&["synthesize", "wc -l"]).unwrap();
        assert!(out.stdout.contains("(back '\\n' add)"));
    }

    #[test]
    fn synthesize_external_probes_real_binary() {
        // The paper's actual experimental setup: the black box is the
        // host's real `wc`, spawned per observation. Skip silently when
        // the host has no binaries to spawn.
        if std::process::Command::new("wc")
            .arg("--version")
            .output()
            .is_err()
        {
            eprintln!("skipping: no host wc");
            return;
        }
        let out = call(&["synthesize", "wc -l", "--external"]).unwrap();
        assert!(
            out.stdout.contains("(back '\\n' add)"),
            "got: {}",
            out.stdout
        );
        assert!(out.notes.iter().any(|n| n.contains("real system binary")));
    }

    #[test]
    fn synthesize_rejects_arity() {
        assert!(call(&["synthesize"]).is_err());
        assert!(call(&["synthesize", "wc", "-l"]).is_err());
    }

    #[test]
    fn check_classifies_and_exits_clean_on_a_good_script() {
        let out = call(&["check", "cat /in.txt | grep fox | sort | uniq -c"]).unwrap();
        assert_eq!(out.exit_code, 0);
        assert!(
            out.stdout.contains("statically stateless"),
            "{}",
            out.stdout
        );
        assert!(
            out.stdout.contains("0 error(s), 0 warning(s)"),
            "{}",
            out.stdout
        );
    }

    #[test]
    fn check_reports_hazards_and_honors_deny_warnings() {
        let script = "cat /t.txt | grep a | sort > /t.txt";
        let lenient = call(&["check", script]).unwrap();
        assert_eq!(lenient.exit_code, 0);
        assert!(lenient.stdout.contains("KQ103"), "{}", lenient.stdout);
        let strict = call(&["check", script, "--deny-warnings"]).unwrap();
        assert_eq!(strict.exit_code, 1);
    }

    #[test]
    fn check_parse_errors_carry_positions_and_fail() {
        let out = call(&["check", "cat /in.txt | sort >"]).unwrap();
        assert_eq!(out.exit_code, 1);
        assert!(
            out.stdout.contains("error[KQ001] statement 1, line 1"),
            "{}",
            out.stdout
        );
    }

    #[test]
    fn check_json_format_and_bad_format_error() {
        let out = call(&["check", "cat /in.txt | wc -l", "--format", "json"]).unwrap();
        assert!(out.stdout.starts_with("{\"summary\":"), "{}", out.stdout);
        assert!(out.stdout.ends_with("}\n"), "{}", out.stdout);
        let err = call(&["check", "cat /in.txt | wc -l", "--format", "yaml"]).unwrap_err();
        assert!(err.contains("--format must be"), "{err}");
    }

    #[test]
    fn unknown_subcommand_mentions_usage() {
        let err = call(&["frob"]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        let out = call(&["help"]).unwrap();
        assert!(out.stdout.contains("kumquat synthesize"));
    }

    #[test]
    fn corpus_lists_all_suites() {
        let out = call(&["corpus"]).unwrap();
        assert!(out.stdout.contains("70 script(s)"), "got: {}", out.stdout);
        let poets = call(&["corpus", "--suite", "poets"]).unwrap();
        assert!(poets.stdout.contains("22 script(s)"));
        assert!(call(&["corpus", "--suite", "nope"]).is_err());
    }

    #[test]
    fn inline_script_plan_and_run() {
        let dir = std::env::temp_dir().join(format!("kq-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("words.txt");
        std::fs::write(&input, "b x\na y\nb z\na w\nc q\n".repeat(20)).unwrap();
        let script = format!("cat {} | cut -d ' ' -f 1 | sort | uniq -c", input.display());

        let plan = call(&["plan", &script]).unwrap();
        assert!(plan.stdout.contains("stages parallelized"));

        let run = call(&["run", &script, "--workers", "3"]).unwrap();
        assert!(run.stdout.contains(" a\n"), "got: {}", run.stdout);
        assert!(
            run.notes.iter().any(|n| n.contains("verified")),
            "notes: {:?}",
            run.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_chunked_executor() {
        let dir = std::env::temp_dir().join(format!("kq-cli-chunk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("w.txt");
        std::fs::write(&input, "b x\na y\nb z\n".repeat(50)).unwrap();
        let script = format!("cat {} | cut -d ' ' -f 1 | sort | uniq -c", input.display());
        let run = call(&[
            "run",
            &script,
            "--workers",
            "3",
            "--executor",
            "chunked",
            "--chunk-kb",
            "1",
        ])
        .unwrap();
        assert!(run.stdout.contains(" a\n"), "got: {}", run.stdout);
        assert!(run.notes.iter().any(|n| n.contains("chunked")));
        assert!(call(&["run", &script, "--executor", "warp"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_streaming_executor() {
        let dir = std::env::temp_dir().join(format!("kq-cli-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("w.txt");
        std::fs::write(&input, "b x\na y\nb z\n".repeat(60)).unwrap();
        let script = format!(
            "cat {} | cut -d ' ' -f 1 | sort | uniq -c | sort -rn",
            input.display()
        );
        let run = call(&[
            "run",
            &script,
            "--workers",
            "2",
            "--exec",
            "streaming",
            "--chunk-kb",
            "1",
            "--queue-depth",
            "2",
        ])
        .unwrap();
        assert!(run.stdout.contains(" b\n"), "got: {}", run.stdout);
        assert!(
            run.notes.iter().any(|n| n.contains("streaming")),
            "notes: {:?}",
            run.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_head_pipeline_reports_early_exit() {
        let dir = std::env::temp_dir().join(format!("kq-cli-early-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("w.txt");
        std::fs::write(&input, "b x\na y\nb z\nc w\n".repeat(4000)).unwrap();
        let script = format!("cat {} | grep b | head -n 1", input.display());
        let run = call(&[
            "run",
            &script,
            "--exec",
            "streaming",
            "--chunk-kb",
            "1",
            "--workers",
            "2",
        ])
        .unwrap();
        assert_eq!(run.stdout, "b x\n");
        assert!(
            run.notes
                .iter()
                .any(|n| n.starts_with("early-exit:") && n.contains("head -n 1")),
            "notes: {:?}",
            run.notes
        );
        // The other executors read everything: no early-exit note.
        let chunked = call(&["run", &script, "--exec", "chunked"]).unwrap();
        assert!(
            !chunked.notes.iter().any(|n| n.starts_with("early-exit:")),
            "notes: {:?}",
            chunked.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_dataflow_executor() {
        let dir = std::env::temp_dir().join(format!("kq-cli-dataflow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("w.txt");
        std::fs::write(&input, "b x\na y\nb z\n".repeat(60)).unwrap();
        // Two statements: the second reads the first's redirect target, so
        // the scheduler must order them; both run on the one shared pool.
        let script = format!(
            "cat {inp} | cut -d ' ' -f 1 | sort > {tmp}\ncat {tmp} | uniq -c | sort -rn",
            inp = input.display(),
            tmp = dir.join("sorted.txt").display()
        );
        let run = call(&[
            "run",
            &script,
            "--workers",
            "2",
            "--exec",
            "dataflow",
            "--chunk-kb",
            "1",
            "--queue-depth",
            "2",
        ])
        .unwrap();
        assert!(run.stdout.contains(" b\n"), "got: {}", run.stdout);
        assert!(
            run.notes
                .iter()
                .any(|n| n
                    .contains("2 statement(s) share one work-stealing pool of 2 worker thread(s)")),
            "notes: {:?}",
            run.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataflow_head_pipeline_reports_early_exit() {
        let dir = std::env::temp_dir().join(format!("kq-cli-dfearly-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("w.txt");
        std::fs::write(&input, "b x\na y\nb z\nc w\n".repeat(4000)).unwrap();
        let script = format!("cat {} | grep b | head -n 1", input.display());
        let run = call(&[
            "run",
            &script,
            "--exec",
            "dataflow",
            "--chunk-kb",
            "1",
            "--workers",
            "2",
        ])
        .unwrap();
        assert_eq!(run.stdout, "b x\n");
        assert!(
            run.notes
                .iter()
                .any(|n| n.starts_with("early-exit:") && n.contains("head -n 1")),
            "notes: {:?}",
            run.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataflow_is_the_default_executor() {
        let dir = std::env::temp_dir().join(format!("kq-cli-dfdefault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("w.txt");
        std::fs::write(&input, "b x\na y\nb z\n".repeat(40)).unwrap();
        let script = format!("cat {} | cut -d ' ' -f 1 | sort | uniq -c", input.display());
        let run = call(&["run", &script, "--workers", "2"]).unwrap();
        assert!(run.stdout.contains(" b\n"), "got: {}", run.stdout);
        assert!(
            run.notes.iter().any(|n| n.contains("work-stealing pool")
                && n.contains("verified: dataflow")
                || n.contains("verified: dataflow")),
            "default run must report the dataflow executor: {:?}",
            run.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_knobs_report_and_stay_correct() {
        let dir = std::env::temp_dir().join(format!("kq-cli-adaptive-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("w.txt");
        std::fs::write(&input, "b x\na y\nb z\nc w\n".repeat(400)).unwrap();
        let script = format!(
            "cat {} | cut -d ' ' -f 1 | sort | uniq -c | sort -rn",
            input.display()
        );
        // Auto knobs run the same bytes (the run verifies against serial)
        // and add the adaptive note.
        let run = call(&[
            "run",
            &script,
            "--workers",
            "2",
            "--chunk-kb",
            "auto",
            "--queue-depth",
            "auto",
        ])
        .unwrap();
        assert!(run.stdout.contains(" b\n"), "got: {}", run.stdout);
        assert!(
            run.notes.iter().any(|n| n.starts_with("adaptive:")
                && n.contains("chunk auto")
                && n.contains("rebalanced")),
            "notes: {:?}",
            run.notes
        );
        assert!(run.notes.iter().any(|n| n.contains("verified")));
        // Fixed knobs stay silent.
        let fixed = call(&["run", &script, "--workers", "2"]).unwrap();
        assert!(
            !fixed.notes.iter().any(|n| n.starts_with("adaptive:")),
            "notes: {:?}",
            fixed.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_knobs_require_the_dataflow_executor() {
        let s = "cat x | sort";
        let err = call(&["run", s, "--exec", "streaming", "--chunk-kb", "auto"]).unwrap_err();
        assert!(
            err.contains("--chunk-kb auto requires --exec dataflow"),
            "{err}"
        );
        let err = call(&["run", s, "--exec", "chunked", "--queue-depth", "auto"]).unwrap_err();
        assert!(
            err.contains("--queue-depth auto requires --exec dataflow"),
            "{err}"
        );
    }

    #[test]
    fn run_rejects_zero_workers() {
        assert!(call(&["run", "cat x | sort", "--workers", "0"]).is_err());
    }

    #[test]
    fn run_rejects_bad_numeric_options() {
        let s = "cat x | sort";
        let err = call(&["run", s, "--queue-depth", "0"]).unwrap_err();
        assert!(err.contains("--queue-depth must be at least 1"), "{err}");
        let err = call(&["run", s, "--chunk-kb", "0"]).unwrap_err();
        assert!(err.contains("--chunk-kb must be at least 1"), "{err}");
        let err = call(&["run", s, "--queue-depth", "deep"]).unwrap_err();
        assert!(err.contains("--queue-depth: invalid value"), "{err}");
        let err = call(&["run", s, "--chunk-kb", "wide"]).unwrap_err();
        assert!(err.contains("--chunk-kb: invalid value"), "{err}");
    }

    #[test]
    fn run_rejects_bad_mmap_mode() {
        let err = call(&["run", "cat x | sort", "--mmap", "sometimes"]).unwrap_err();
        assert!(err.contains("--mmap"), "{err}");
        assert!(err.contains("'auto', 'on', or 'off'"), "{err}");
    }

    #[test]
    fn run_with_mmap_on_matches_heap_ingest() {
        let dir = std::env::temp_dir().join(format!("kq-cli-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("m.txt");
        std::fs::write(&input, "b x\na y\nb z\nc w\n".repeat(200)).unwrap();
        let script = format!("cat {} | cut -d ' ' -f 1 | sort | uniq -c", input.display());
        let mapped = call(&["run", &script, "--mmap", "on", "--exec", "streaming"]).unwrap();
        let heap = call(&["run", &script, "--mmap", "off"]).unwrap();
        assert_eq!(mapped.stdout, heap.stdout, "backings must be invisible");
        assert!(
            mapped.notes.iter().any(|n| n.contains("mapped")),
            "notes should report the mapping: {:?}",
            mapped.notes
        );
        assert!(
            !heap.notes.iter().any(|n| n.contains("mapped")),
            "--mmap off must not map: {:?}",
            heap.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_verify_skips_the_serial_oracle() {
        let dir = std::env::temp_dir().join(format!("kq-cli-nv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("n.txt");
        std::fs::write(&input, "b x\na y\n".repeat(50)).unwrap();
        let script = format!("cat {} | cut -d ' ' -f 1 | sort", input.display());
        let verified = call(&["run", &script]).unwrap();
        let unverified = call(&["run", &script, "--no-verify", "--exec", "streaming"]).unwrap();
        assert_eq!(verified.stdout, unverified.stdout);
        assert!(unverified.notes.iter().any(|n| n.contains("unverified")));
        assert!(!unverified.notes.iter().any(|n| n.contains("equals serial")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_utf8_host_file_is_attributed() {
        let dir = std::env::temp_dir().join(format!("kq-cli-utf8-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("foreign.txt");
        std::fs::write(&input, [0xff, 0xfe, b'x', b'\n']).unwrap();
        let script = format!("cat {} | sort", input.display());
        // The referenced-file ingest door degrades foreign bytes to an
        // attributed note (planning continues without the file)...
        let out = call(&["plan", &script, "--mmap", "on"]).unwrap();
        let notes = out.notes.join("\n");
        assert!(notes.contains("not valid UTF-8"), "{notes}");
        assert!(
            notes.contains(&input.display().to_string()),
            "error must name the file: {notes}"
        );
        // ...and the --input door reports through the same helper.
        let out = call(&[
            "plan",
            "cat /x | sort",
            "--input",
            &input.display().to_string(),
        ])
        .unwrap();
        assert!(
            out.notes.iter().any(|n| n.contains("not valid UTF-8")),
            "{:?}",
            out.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_reports_synthesis_times_and_cache_counts() {
        let dir = std::env::temp_dir().join(format!("kq-cli-synthrep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        std::fs::write(&input, "a x\nb y\n".repeat(40)).unwrap();
        let script = format!("cat {} | grep a | wc -l", input.display());
        let out = call(&["plan", &script]).unwrap();
        assert!(
            out.stdout.contains("command(s) synthesized"),
            "{}",
            out.stdout
        );
        // grep is lattice-short-circuited; wc -l is the synthesized one.
        assert!(out.stdout.contains(" ms  wc -l"), "{}", out.stdout);
        assert!(
            out.notes
                .iter()
                .any(|n| n.contains("lattice: 1 short-circuit(s)")),
            "{:?}",
            out.notes
        );
        assert!(out.stdout.contains("combiner cache:"), "{}", out.stdout);
        assert!(
            out.notes.iter().any(|n| n.contains("synthesis:")),
            "{:?}",
            out.notes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn combiner_cache_warms_across_invocations() {
        let dir = std::env::temp_dir().join(format!("kq-cli-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        std::fs::write(&input, "a x\nb y\na z\n".repeat(40)).unwrap();
        let cache = dir.join("combiners.v1");
        let cache_arg = cache.display().to_string();
        let script = format!("cat {} | grep a | sort | uniq -c", input.display());

        let cold = call(&["plan", &script, "--combiner-cache", &cache_arg]).unwrap();
        // grep short-circuits on the lattice; sort and uniq -c synthesize.
        assert!(
            cold.stdout.contains("2 command(s) synthesized"),
            "{}",
            cold.stdout
        );
        assert!(
            cold.notes
                .iter()
                .any(|n| n.contains("combiner cache written")),
            "{:?}",
            cold.notes
        );
        assert!(cache.is_file());

        // Second process: everything validates out of the store, nothing
        // synthesizes, and the plan is unchanged.
        let warm = call(&["plan", &script, "--combiner-cache", &cache_arg]).unwrap();
        assert!(
            warm.stdout.contains("0 command(s) synthesized"),
            "{}",
            warm.stdout
        );
        assert!(warm.stdout.contains("(2 validated"), "{}", warm.stdout);
        let plan_of = |s: &str| {
            s.lines()
                .take_while(|l| !l.starts_with("synthesis:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(plan_of(&cold.stdout), plan_of(&warm.stdout));

        // A run through the warm cache still verifies against serial.
        let run = call(&[
            "run",
            &script,
            "--combiner-cache",
            &cache_arg,
            "--exec",
            "streaming",
        ])
        .unwrap();
        assert!(
            run.notes.iter().any(|n| n.contains("verified")),
            "{:?}",
            run.notes
        );

        // A corrupted store is ignored with a warning and re-synthesized.
        std::fs::write(&cache, "garbage\nmore garbage\n").unwrap();
        let poisoned = call(&["plan", &script, "--combiner-cache", &cache_arg]).unwrap();
        assert!(
            poisoned
                .notes
                .iter()
                .any(|n| n.contains("ignoring the file")),
            "{:?}",
            poisoned.notes
        );
        assert!(
            poisoned.stdout.contains("2 command(s) synthesized"),
            "{}",
            poisoned.stdout
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_plan_warms_to_zero_rounds() {
        let dir = std::env::temp_dir().join(format!("kq-cli-corpusplan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("combiners.v1");
        let cache_arg = cache.display().to_string();
        let cold = call(&[
            "corpus",
            "--plan",
            "--suite",
            "analytics-mts",
            "--combiner-cache",
            &cache_arg,
        ])
        .unwrap();
        assert!(
            cold.stdout.contains("planned 4 script(s)"),
            "{}",
            cold.stdout
        );
        assert!(
            !cold.stdout.contains("synthesis rounds: 0"),
            "{}",
            cold.stdout
        );
        let warm = call(&[
            "corpus",
            "--plan",
            "--suite",
            "analytics-mts",
            "--combiner-cache",
            &cache_arg,
        ])
        .unwrap();
        assert!(
            warm.stdout.contains("synthesis rounds: 0"),
            "{}",
            warm.stdout
        );
        assert!(
            warm.stdout.contains("0 command(s) synthesized"),
            "{}",
            warm.stdout
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synth_workers_and_rerun_threshold_validate_up_front() {
        let s = "cat x | sort";
        let err = call(&["plan", s, "--synth-workers", "0"]).unwrap_err();
        assert!(err.contains("--synth-workers must be at least 1"), "{err}");
        let err = call(&["run", s, "--rerun-threshold", "NaN"]).unwrap_err();
        assert!(
            err.contains("--rerun-threshold must be a number in (0, 1]"),
            "{err}"
        );
        let err = call(&["run", s, "--rerun-threshold", "0"]).unwrap_err();
        assert!(err.contains("(0, 1]"), "{err}");
        let err = call(&["emit", s, "--rerun-threshold", "1.5"]).unwrap_err();
        assert!(err.contains("(0, 1]"), "{err}");
    }

    #[test]
    fn rerun_threshold_changes_the_plan() {
        // `sort -u | head` keeps a rerun stage parallel at the default
        // threshold on a duplicate-heavy input; an extreme threshold
        // (a hair above zero) demands an impossible shrink and forces it
        // sequential.
        let dir = std::env::temp_dir().join(format!("kq-cli-thresh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        std::fs::write(&input, "b\na\nb\na\nc\n".repeat(60)).unwrap();
        let script = format!("cat {} | sort -u | head -n 2", input.display());
        let default = call(&["plan", &script]).unwrap();
        let strict = call(&["plan", &script, "--rerun-threshold", "0.0001"]).unwrap();
        let par_line = |s: &str| {
            s.lines()
                .find(|l| l.contains("stages parallelized"))
                .unwrap()
                .to_owned()
        };
        assert_ne!(par_line(&default.stdout), par_line(&strict.stdout));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_script_file_is_an_error() {
        let err = call(&["plan", "/no/such/file.sh"]).unwrap_err();
        assert!(err.contains("no such file"));
    }

    #[test]
    fn emit_writes_script_text() {
        let dir = std::env::temp_dir().join(format!("kq-cli-emit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        std::fs::write(&input, "b\na\nc\n".repeat(10)).unwrap();
        let script = format!("cat {} | sort", input.display());
        let out = call(&["emit", &script, "--workers", "2"]).unwrap();
        assert!(out.stdout.starts_with("#!/bin/sh"));
        assert!(out.stdout.contains("sort -m"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
