//! A small dependency-free option parser for the `kumquat` binary.
//!
//! Grammar: `kumquat <subcommand> [positional ...] [--flag] [--opt value]`.
//! Options may appear anywhere after the subcommand; `--opt=value` and
//! `--opt value` are both accepted. A literal `--` ends option parsing.

use std::collections::HashMap;

/// A parsed command line: the subcommand, its positional arguments, and
/// its `--options`.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The subcommand word (`synthesize`, `plan`, ...).
    pub subcommand: String,
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// Option values; flags map to `"true"`.
    options: HashMap<String, String>,
}

/// Options that take a value (everything else is a boolean flag).
const VALUED: &[&str] = &[
    "workers",
    "input",
    "var",
    "seed",
    "scale-kb",
    "out",
    "suite",
    "executor",
    "exec",
    "chunk-kb",
    "queue-depth",
    "mmap",
    "synth-workers",
    "combiner-cache",
    "rerun-threshold",
    "spill-mb",
    "spill-dir",
    "trace-out",
    "top",
    "format",
];

impl ParsedArgs {
    /// Parses the argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
        let mut parsed = ParsedArgs::default();
        let mut it = args.iter().peekable();
        let Some(sub) = it.next() else {
            return Err("missing subcommand".into());
        };
        parsed.subcommand = sub.clone();
        let mut options_done = false;
        while let Some(arg) = it.next() {
            if options_done || !arg.starts_with("--") {
                parsed.positional.push(arg.clone());
                continue;
            }
            if arg == "--" {
                options_done = true;
                continue;
            }
            let body = &arg[2..];
            if let Some((name, value)) = body.split_once('=') {
                parsed.options.insert(name.to_owned(), value.to_owned());
            } else if VALUED.contains(&body) {
                match it.next() {
                    Some(v) => {
                        parsed.options.insert(body.to_owned(), v.clone());
                    }
                    None => return Err(format!("--{body} requires a value")),
                }
            } else {
                parsed.options.insert(body.to_owned(), "true".to_owned());
            }
        }
        Ok(parsed)
    }

    /// The value of `--name`, if given.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// True when the boolean flag `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.opt(name) == Some("true")
    }

    /// `--name` parsed as `T`, or `default` when absent.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("--{name}: invalid value {v:?}")),
        }
    }

    /// `--name` parsed as a *nonzero* count, or `default` when absent.
    /// Every caller is a capacity knob (workers, chunk size, queue depth)
    /// where 0 would deadlock the bounded queues or make no progress, so
    /// zero is rejected with its own message rather than a parse error.
    pub fn opt_parse_nonzero(&self, name: &str, default: usize) -> Result<usize, String> {
        let v = self.opt_parse::<usize>(name, default)?;
        if v == 0 {
            return Err(format!("--{name} must be at least 1"));
        }
        Ok(v)
    }

    /// `--name` parsed as a *nonzero* count or the literal `auto`
    /// sentinel: `Ok(None)` means auto, `Ok(Some(n))` a fixed value, and
    /// an absent option yields `Some(default)` (the static default —
    /// adaptation is opt-in). Numeric validation matches
    /// [`ParsedArgs::opt_parse_nonzero`] exactly, so `--chunk-kb 0` and
    /// `--chunk-kb wide` fail with the same messages whether or not the
    /// knob supports `auto`.
    pub fn opt_parse_nonzero_or_auto(
        &self,
        name: &str,
        default: usize,
    ) -> Result<Option<usize>, String> {
        match self.opt(name) {
            None => Ok(Some(default)),
            Some("auto") => Ok(None),
            Some(_) => self.opt_parse_nonzero(name, default).map(Some),
        }
    }

    /// `--name` parsed as a ratio in `(0, 1]`, or `default` when absent.
    /// The one caller is `--rerun-threshold` (an output/input shrink
    /// ratio): `0` would disable rerun parallelism by accident, anything
    /// above `1` would "justify" rerun combiners on growing streams, and
    /// `NaN`/`inf` parse as valid `f64`s — so all three are rejected up
    /// front with their own message, in the same style as
    /// [`ParsedArgs::opt_parse_nonzero`].
    pub fn opt_parse_ratio(&self, name: &str, default: f64) -> Result<f64, String> {
        let v = self.opt_parse::<f64>(name, default)?;
        if !(v.is_finite() && v > 0.0 && v <= 1.0) {
            return Err(format!("--{name} must be a number in (0, 1]"));
        }
        Ok(v)
    }

    /// All `--var NAME=VALUE` bindings (repeatable via comma separation).
    pub fn vars(&self) -> Result<Vec<(String, String)>, String> {
        let Some(raw) = self.opt("var") else {
            return Ok(Vec::new());
        };
        raw.split(',')
            .map(|pair| {
                pair.split_once('=')
                    .map(|(k, v)| (k.to_owned(), v.to_owned()))
                    .ok_or_else(|| format!("--var: expected NAME=VALUE, got {pair:?}"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> ParsedArgs {
        let v: Vec<String> = words.iter().map(|s| (*s).to_owned()).collect();
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn subcommand_and_positional() {
        let a = parse(&["synthesize", "wc -l"]);
        assert_eq!(a.subcommand, "synthesize");
        assert_eq!(a.positional, vec!["wc -l"]);
    }

    #[test]
    fn valued_options_both_styles() {
        let a = parse(&["run", "s.sh", "--workers", "8", "--input=in.txt"]);
        assert_eq!(a.opt("workers"), Some("8"));
        assert_eq!(a.opt("input"), Some("in.txt"));
        assert_eq!(a.opt_parse::<usize>("workers", 1).unwrap(), 8);
    }

    #[test]
    fn flags_default_off() {
        let a = parse(&["plan", "x", "--no-opt"]);
        assert!(a.flag("no-opt"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn double_dash_ends_options() {
        let a = parse(&["emit", "--", "--weird-positional"]);
        assert_eq!(a.positional, vec!["--weird-positional"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let v: Vec<String> = vec!["run".into(), "--workers".into()];
        assert!(ParsedArgs::parse(&v).is_err());
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(ParsedArgs::parse(&[]).is_err());
    }

    #[test]
    fn vars_parse() {
        let a = parse(&["run", "s.sh", "--var", "IN=/x,OUT=/y"]);
        let vars = a.vars().unwrap();
        assert_eq!(
            vars,
            vec![
                ("IN".to_owned(), "/x".to_owned()),
                ("OUT".to_owned(), "/y".to_owned())
            ]
        );
    }

    #[test]
    fn bad_var_is_an_error() {
        let a = parse(&["run", "s.sh", "--var", "oops"]);
        assert!(a.vars().is_err());
    }

    #[test]
    fn default_when_option_absent() {
        let a = parse(&["plan", "x"]);
        assert_eq!(a.opt_parse::<usize>("workers", 16).unwrap(), 16);
    }

    #[test]
    fn invalid_number_is_an_error() {
        let a = parse(&["plan", "x", "--workers", "lots"]);
        assert!(a.opt_parse::<usize>("workers", 1).is_err());
    }

    #[test]
    fn spill_options_take_values() {
        let a = parse(&[
            "run",
            "s.sh",
            "--spill-mb",
            "64",
            "--spill-dir",
            "/tmp/runs",
        ]);
        assert_eq!(a.opt_parse_nonzero("spill-mb", 1).unwrap(), 64);
        assert_eq!(a.opt("spill-dir"), Some("/tmp/runs"));
    }

    #[test]
    fn zero_counts_are_rejected_with_a_clear_message() {
        for name in ["queue-depth", "chunk-kb", "workers", "spill-mb"] {
            let a = parse(&["run", "x", &format!("--{name}"), "0"]);
            let err = a.opt_parse_nonzero(name, 4).unwrap_err();
            assert_eq!(err, format!("--{name} must be at least 1"));
        }
    }

    #[test]
    fn nonzero_counts_parse_and_default() {
        let a = parse(&["run", "x", "--queue-depth", "8"]);
        assert_eq!(a.opt_parse_nonzero("queue-depth", 4).unwrap(), 8);
        assert_eq!(a.opt_parse_nonzero("chunk-kb", 64).unwrap(), 64);
    }

    #[test]
    fn auto_sentinel_parses_alongside_numbers() {
        let a = parse(&["run", "x", "--chunk-kb", "auto", "--queue-depth", "8"]);
        assert_eq!(a.opt_parse_nonzero_or_auto("chunk-kb", 64).unwrap(), None);
        assert_eq!(
            a.opt_parse_nonzero_or_auto("queue-depth", 4).unwrap(),
            Some(8)
        );
        // Absent → the static default, not auto.
        assert_eq!(a.opt_parse_nonzero_or_auto("spill-mb", 7).unwrap(), Some(7));
        // Zero and garbage keep the plain-count messages.
        let a = parse(&["run", "x", "--chunk-kb", "0"]);
        assert_eq!(
            a.opt_parse_nonzero_or_auto("chunk-kb", 64).unwrap_err(),
            "--chunk-kb must be at least 1"
        );
        let a = parse(&["run", "x", "--chunk-kb", "wide"]);
        assert!(a
            .opt_parse_nonzero_or_auto("chunk-kb", 64)
            .unwrap_err()
            .contains("invalid value"));
    }

    #[test]
    fn ratio_rejects_nan_inf_zero_and_out_of_range() {
        for bad in ["NaN", "nan", "inf", "-inf", "0", "0.0", "-0.3", "1.5", "2"] {
            let a = parse(&["run", "x", "--rerun-threshold", bad]);
            let err = a.opt_parse_ratio("rerun-threshold", 0.5).unwrap_err();
            assert_eq!(err, "--rerun-threshold must be a number in (0, 1]", "{bad}");
        }
        let a = parse(&["run", "x", "--rerun-threshold", "lots"]);
        assert!(a
            .opt_parse_ratio("rerun-threshold", 0.5)
            .unwrap_err()
            .contains("invalid value"));
    }

    #[test]
    fn ratio_accepts_the_valid_range_and_defaults() {
        for (raw, want) in [("0.25", 0.25), ("1", 1.0), ("1.0", 1.0), ("0.999", 0.999)] {
            let a = parse(&["run", "x", "--rerun-threshold", raw]);
            assert_eq!(a.opt_parse_ratio("rerun-threshold", 0.5).unwrap(), want);
        }
        let a = parse(&["run", "x"]);
        assert_eq!(a.opt_parse_ratio("rerun-threshold", 0.5).unwrap(), 0.5);
    }

    #[test]
    fn non_numeric_count_names_the_option() {
        let a = parse(&["run", "x", "--queue-depth", "deep"]);
        let err = a.opt_parse_nonzero("queue-depth", 4).unwrap_err();
        assert!(err.contains("--queue-depth"), "{err}");
        assert!(err.contains("invalid value"), "{err}");
    }
}
