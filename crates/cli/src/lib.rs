//! `kumquat` — the command-line interface to the KumQuat reproduction.
//!
//! The binary wraps the library crates behind its subcommands
//! (`synthesize`, `check`, `plan`, `run`, `emit`, `corpus`, `trace`; see
//! [`commands::USAGE`]).
//! All logic lives in this library crate so integration tests can drive the
//! subcommands without spawning processes; `src/main.rs` is a thin shim.
//!
//! The most interesting piece is [`emit`]: it compiles a planned pipeline
//! back into a *runnable POSIX shell script* that uses the real Unix
//! commands, reproducing the paper's actual artifact — a data-parallel
//! pipeline that runs in the same environment as the original.
//!
//! ```
//! let out = kq_cli::run_cli(&["synthesize".into(), "wc -l".into()]).unwrap();
//! assert!(out.stdout.contains("(back '\\n' add)"));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod emit;
pub mod report;

pub use commands::{run_cli, CliOutput, USAGE};
pub use emit::{emit_script, quote_sh, EmitOptions, Emitted};
