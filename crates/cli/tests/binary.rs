//! Black-box tests of the `kumquat` binary itself: spawn the real
//! executable (via `CARGO_BIN_EXE_kumquat`) and check its stdout, stderr,
//! and exit codes — what a packaging smoke test would cover.

use std::process::Command;

fn kumquat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kumquat"))
}

#[test]
fn help_exits_zero_with_usage() {
    let out = kumquat().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kumquat synthesize"));
    assert!(stdout.contains("kumquat emit"));
}

#[test]
fn unknown_subcommand_exits_nonzero() {
    let out = kumquat().arg("fnord").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn synthesize_prints_report_on_stdout() {
    let out = kumquat().args(["synthesize", "wc -l"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(back '\\n' add)"), "got: {stdout}");
    assert!(stdout.contains("search space:"));
}

#[test]
fn run_streams_pipeline_output_and_notes_to_stderr() {
    let dir = std::env::temp_dir().join(format!("kq-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.txt");
    std::fs::write(&input, "pear\napple\npear\n".repeat(30)).unwrap();
    let script = format!("cat {} | sort | uniq -c", input.display());
    let out = kumquat()
        .args(["run", &script, "--workers", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("     30 apple\n"), "got: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("verified"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_planners_share_one_combiner_cache_without_losing_entries() {
    // Two *processes* plan different scripts against the same on-disk
    // combiner cache at the same time. Both load a cold store; without
    // the flock'd read-merge-write in CombinerCache::save the second
    // rename would silently discard the first process's entries. A third
    // process planning the union of both scripts must then validate
    // everything out of the store and synthesize nothing.
    let dir = std::env::temp_dir().join(format!("kq-bin-cachelock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.txt");
    std::fs::write(&input, "a x\nb y\na z\nc w\n".repeat(50)).unwrap();
    let cache = dir.join("combiners.v1");
    let cache_arg = cache.display().to_string();
    let script_a = format!("cat {} | grep a | wc -l", input.display());
    let script_b = format!("cat {} | sort | uniq -c", input.display());

    let mut children: Vec<std::process::Child> = [&script_a, &script_b]
        .iter()
        .map(|script| {
            kumquat()
                .args(["plan", script, "--combiner-cache", &cache_arg])
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn()
                .unwrap()
        })
        .collect();
    for child in children.drain(..) {
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "planner failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let union = dir.join("union.sh");
    std::fs::write(&union, format!("{script_a}\n{script_b}\n")).unwrap();
    let out = kumquat()
        .args([
            "plan",
            &union.display().to_string(),
            "--combiner-cache",
            &cache_arg,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 command(s) synthesized"),
        "a concurrent save lost cache entries: {stdout}"
    );
    // grep short-circuits on the effect lattice (never persisted); the
    // three synthesized combiners all validate out of the shared store.
    assert!(stdout.contains("(3 validated"), "got: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn emit_then_sh_round_trip() {
    let dir = std::env::temp_dir().join(format!("kq-bin-emit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("log.txt"), "b 1\na 2\nb 3\n".repeat(20)).unwrap();
    // Relative path in the script so the emitted sh runs inside `dir`.
    let out = kumquat()
        .args([
            "emit",
            "cat log.txt | cut -d ' ' -f 1 | sort | uniq -c",
            "--workers",
            "3",
        ])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(dir.join("par.sh"), &out.stdout).unwrap();
    let sh = Command::new("sh").arg("par.sh").current_dir(&dir).output();
    let Ok(sh) = sh else {
        eprintln!("skipping sh round trip: no sh on host");
        return;
    };
    assert!(
        sh.status.success(),
        "emitted script failed: {}",
        String::from_utf8_lossy(&sh.stderr)
    );
    let stdout = String::from_utf8_lossy(&sh.stdout);
    assert!(stdout.contains("     20 a\n"), "got: {stdout}");
    assert!(stdout.contains("     40 b\n"), "got: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
