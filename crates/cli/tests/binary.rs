//! Black-box tests of the `kumquat` binary itself: spawn the real
//! executable (via `CARGO_BIN_EXE_kumquat`) and check its stdout, stderr,
//! and exit codes — what a packaging smoke test would cover.

use std::process::Command;

fn kumquat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kumquat"))
}

#[test]
fn help_exits_zero_with_usage() {
    let out = kumquat().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kumquat synthesize"));
    assert!(stdout.contains("kumquat emit"));
}

#[test]
fn unknown_subcommand_exits_nonzero() {
    let out = kumquat().arg("fnord").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn synthesize_prints_report_on_stdout() {
    let out = kumquat().args(["synthesize", "wc -l"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(back '\\n' add)"), "got: {stdout}");
    assert!(stdout.contains("search space:"));
}

#[test]
fn run_streams_pipeline_output_and_notes_to_stderr() {
    let dir = std::env::temp_dir().join(format!("kq-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.txt");
    std::fs::write(&input, "pear\napple\npear\n".repeat(30)).unwrap();
    let script = format!("cat {} | sort | uniq -c", input.display());
    let out = kumquat()
        .args(["run", &script, "--workers", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("     30 apple\n"), "got: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("verified"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn emit_then_sh_round_trip() {
    let dir = std::env::temp_dir().join(format!("kq-bin-emit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("log.txt"), "b 1\na 2\nb 3\n".repeat(20)).unwrap();
    // Relative path in the script so the emitted sh runs inside `dir`.
    let out = kumquat()
        .args([
            "emit",
            "cat log.txt | cut -d ' ' -f 1 | sort | uniq -c",
            "--workers",
            "3",
        ])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(dir.join("par.sh"), &out.stdout).unwrap();
    let sh = Command::new("sh").arg("par.sh").current_dir(&dir).output();
    let Ok(sh) = sh else {
        eprintln!("skipping sh round trip: no sh on host");
        return;
    };
    assert!(
        sh.status.success(),
        "emitted script failed: {}",
        String::from_utf8_lossy(&sh.stderr)
    );
    let stdout = String::from_utf8_lossy(&sh.stdout);
    assert!(stdout.contains("     20 a\n"), "got: {stdout}");
    assert!(stdout.contains("     40 b\n"), "got: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
