//! Post-processing of the plausible set (paper §3.2, "Multiple Plausible
//! Combiners").
//!
//! When synthesis returns several plausible combiners, KumQuat keeps the
//! highest-priority class present (RecOp ⊐ StructOp ⊐ RunOp) and builds a
//! *composite* combiner: given arguments, apply the first member whose
//! legal domain contains them. When some member's domain is universal
//! (`concat`/`first`/`second`), that member alone suffices — its domain is
//! a superset of every other member's.

use kq_dsl::ast::{Candidate, Combiner, RecOp};
use kq_dsl::eval::{EvalError, RunEnv};
use kq_dsl::{domain, kway};
use kq_stream::Bytes;

/// The synthesis product: an executable combiner built from the plausible
/// set, plus the metadata the benchmark tables report.
#[derive(Debug, Clone)]
pub struct SynthesizedCombiner {
    /// The members of the composite, in application order.
    pub members: Vec<Candidate>,
    /// Every plausible combiner that survived filtering (for reporting;
    /// superset of `members`).
    pub plausible: Vec<Candidate>,
}

impl SynthesizedCombiner {
    /// Builds the composite from the full plausible set. Panics when the
    /// set is empty — callers handle the "no combiner" case beforehand.
    pub fn from_plausible(plausible: Vec<Candidate>) -> SynthesizedCombiner {
        assert!(!plausible.is_empty(), "no plausible combiners");
        let best_class = plausible
            .iter()
            .map(|c| c.op.class())
            .min()
            .expect("non-empty");
        let mut members: Vec<Candidate> = plausible
            .iter()
            .filter(|c| c.op.class() == best_class)
            .cloned()
            .collect();
        // Within RunOp, prefer merge over rerun: both are plausible for
        // sorting commands, but merge is a single k-way interleave while
        // rerun re-executes the command on the whole concatenation.
        members.sort_by_key(|c| matches!(c.op, Combiner::Run(kq_dsl::ast::RunOp::Rerun)) as u8);
        // Domain-superset reduction: a universal-domain member subsumes the
        // rest of its class.
        if let Some(universal) = members.iter().position(|c| {
            matches!(
                c.op,
                Combiner::Rec(RecOp::Concat)
                    | Combiner::Rec(RecOp::First)
                    | Combiner::Rec(RecOp::Second)
            )
        }) {
            members = vec![members[universal].clone()];
        }
        SynthesizedCombiner { members, plausible }
    }

    /// The representative combiner used for planning decisions (e.g. the
    /// Theorem 5 elimination test and the rerun-cost heuristic).
    pub fn primary(&self) -> &Candidate {
        &self.members[0]
    }

    /// True when the composite is plain concatenation, making the combiner
    /// eligible for intermediate elimination (Theorem 5).
    pub fn is_concat(&self) -> bool {
        self.members.len() == 1 && self.primary().op.is_concat() && !self.primary().swapped
    }

    /// True when the composite requires re-running the command.
    pub fn is_rerun(&self) -> bool {
        self.members
            .iter()
            .all(|c| matches!(c.op, Combiner::Run(kq_dsl::ast::RunOp::Rerun)))
    }

    /// Combines two streams: the first member whose domain admits both
    /// arguments is applied (the composite rule of §3.2).
    pub fn combine2(&self, y1: &str, y2: &str, env: &dyn RunEnv) -> Result<String, EvalError> {
        for member in &self.members {
            let (a, b) = member.oriented(y1, y2);
            if domain::in_domain(&member.op, a) && domain::in_domain(&member.op, b) {
                return kq_dsl::eval::eval(&member.op, a, b, env);
            }
        }
        // Fall back to the last member's evaluation error for diagnostics.
        let last = self.members.last().expect("non-empty");
        let (a, b) = last.oriented(y1, y2);
        kq_dsl::eval::eval(&last.op, a, b, env)
    }

    /// Combines `k` parallel substreams (paper §3.5): the first member
    /// whose domain admits all pieces is applied k-way. Pieces flow as
    /// refcounted [`Bytes`] slices; the domain checks borrow the piece
    /// text in place.
    pub fn combine_all(&self, pieces: &[Bytes], env: &dyn RunEnv) -> Result<Bytes, EvalError> {
        for member in &self.members {
            if pieces
                .iter()
                .filter(|p| !p.is_empty())
                .all(|p| p.to_str().is_ok_and(|s| domain::in_domain(&member.op, s)))
            {
                return kway::combine_all(member, pieces, env);
            }
        }
        kway::combine_all(self.members.last().expect("non-empty"), pieces, env)
    }

    /// Starts an incremental k-way combine: substreams are folded as they
    /// arrive (see [`kway::IncrementalFold`]) instead of being gathered
    /// first, so combine work overlaps with whatever produces the pieces.
    ///
    /// The fold commits to the primary member (the one
    /// [`combine_all`](Self::combine_all) picks for well-formed adjacent
    /// substreams). Whether raw piece *handles* are retained for a
    /// gather-first fallback depends on whether that commitment can ever
    /// be wrong:
    ///
    /// * **authoritative** — a single-member composite, or a primary
    ///   whose legal domain is universal ([`kq_dsl::domain::is_universal`]:
    ///   `concat`/`first`/`second`/`merge`/`rerun`). The composite's
    ///   first-member-whose-domain-admits-all-pieces rule selects the
    ///   primary for *every* piece list, so no other member can ever be
    ///   chosen: pieces fold in and their handles drop immediately. A
    ///   `sort` barrier (primary `merge`) thus frees each chunk output as
    ///   soon as it is folded into a run instead of pinning the stage's
    ///   whole output until `finish` — the memory win the out-of-core CI
    ///   job asserts. A fold error on this path is final (the fallback
    ///   would re-evaluate the very same member over the same pieces);
    /// * **selective** — a multi-member composite with a restricted
    ///   primary domain (`wc -l`'s `[back add, fuse add]`, `uniq -c`'s
    ///   stitches). An out-of-domain piece must switch members, which
    ///   requires every raw piece, so handles are retained and
    ///   [`IncrementalCombine::finish`] falls back to
    ///   [`combine_all`](Self::combine_all) when the speculation is
    ///   abandoned. These combiners certify aggregated (tiny) outputs, so
    ///   the retention is bytes-cheap.
    pub fn incremental<'a>(&'a self, env: &'a dyn RunEnv) -> IncrementalCombine<'a> {
        self.incremental_with_spill(env, None)
    }

    /// [`incremental`](Self::incremental) with an optional spill config:
    /// the primary member's fold honors the budget and temp-file policy of
    /// [`kq_dsl::spill`] (budget-sized merge runs, budget-accounted
    /// counter slots — see [`kway::IncrementalFold::new_with_spill`]), and
    /// on the selective path the retained raw handles are themselves
    /// budget-bounded: once their resident bytes cross the budget the
    /// whole list is batch-spilled to one temp file and re-pointed at
    /// mapped slices ([`kway::spill_piece_batch`]), so even the
    /// gather-first fallback cannot pin O(output) heap.
    pub fn incremental_with_spill<'a>(
        &'a self,
        env: &'a dyn RunEnv,
        spill: Option<kq_dsl::SpillConfig>,
    ) -> IncrementalCombine<'a> {
        let authoritative =
            self.members.len() == 1 || kq_dsl::domain::is_universal(&self.primary().op);
        IncrementalCombine {
            combiner: self,
            env,
            raw: (!authoritative).then(Vec::new),
            raw_spill: if authoritative { None } else { spill.clone() },
            raw_heap_bytes: 0,
            fold: Some(kway::IncrementalFold::new_with_spill(
                self.primary(),
                env,
                spill,
            )),
            failed: None,
        }
    }
}

/// Incremental combining over a [`SynthesizedCombiner`] (see
/// [`SynthesizedCombiner::incremental`]).
pub struct IncrementalCombine<'a> {
    combiner: &'a SynthesizedCombiner,
    env: &'a dyn RunEnv,
    /// Raw piece handles for the gather-first fallback — `Some` only on
    /// the *selective* path (a non-primary member could still be chosen;
    /// see [`SynthesizedCombiner::incremental`]). `None` on the
    /// authoritative path: each piece's handle drops as soon as the fold
    /// has consumed it, so a barrier stage's already-combined chunk
    /// outputs are freed instead of pinned until `finish`.
    raw: Option<Vec<Bytes>>,
    /// Spill config for the raw list (selective path only): when the
    /// heap-resident raw bytes (`raw_heap_bytes`) cross the budget, the
    /// list is batch-spilled and its entries become mapped slices.
    raw_spill: Option<kq_dsl::SpillConfig>,
    /// Heap-resident bytes currently in `raw` (mapped entries excluded).
    raw_heap_bytes: usize,
    /// The primary-member fold; `None` after the speculation (selective
    /// path) or the fold itself (authoritative path) failed.
    fold: Option<kway::IncrementalFold<'a>>,
    /// The first fold error on the authoritative path, surfaced by
    /// [`finish`](Self::finish) — with no raw handles there is no
    /// fallback, and none is needed: the fallback would re-evaluate the
    /// same (unconditionally selected) member over the same pieces.
    failed: Option<EvalError>,
}

impl IncrementalCombine<'_> {
    /// Folds in the next substream. Never fails: an error either defers
    /// to [`finish`](Self::finish) (authoritative path) or disables the
    /// speculation so `finish` takes the gather-first fallback
    /// (selective path).
    pub fn push(&mut self, piece: Bytes) {
        match &mut self.raw {
            None => {
                // Authoritative: the primary is combine_all's selection
                // for any piece list; fold and drop the handle.
                if let Some(fold) = &mut self.fold {
                    if let Err(e) = fold.push(piece) {
                        self.failed = Some(e);
                        self.fold = None;
                    }
                }
            }
            Some(raw) => {
                if let Some(fold) = &mut self.fold {
                    // Committing to the primary member is sound only under
                    // the condition
                    // [`combine_all`](SynthesizedCombiner::combine_all)
                    // would select it: every piece lies in its legal
                    // domain. An out-of-domain piece might still
                    // *evaluate* cleanly at the boundaries the fold
                    // touches while the composite would have chosen
                    // another member — so the domain check, not
                    // evaluation success, gates the speculation.
                    let primary = self.combiner.primary();
                    let admissible = piece.is_empty()
                        || piece
                            .to_str()
                            .is_ok_and(|s| domain::in_domain(&primary.op, s));
                    if !admissible || fold.push(piece.clone()).is_err() {
                        self.fold = None;
                    }
                }
                let resident = if piece.is_empty() || piece.is_mmap_backed() {
                    0
                } else {
                    piece.len()
                };
                raw.push(piece);
                if let Some(cfg) = &self.raw_spill {
                    self.raw_heap_bytes += resident;
                    if self.raw_heap_bytes > cfg.budget_bytes {
                        // Best-effort: push cannot fail, so an IO error
                        // simply leaves the heap copies in place (finish
                        // still works; only the memory bound is lost).
                        if kway::spill_piece_batch(raw, cfg).is_ok() {
                            self.raw_heap_bytes = 0;
                        }
                    }
                }
            }
        }
    }

    /// Number of raw piece handles currently retained for the
    /// gather-first fallback: always `0` on the authoritative path (the
    /// memory-parity property the streaming barrier collectors rely on),
    /// the pushed piece count on the selective path.
    pub fn retained_handles(&self) -> usize {
        self.raw.as_ref().map_or(0, Vec::len)
    }

    /// Settles into the combined stream.
    pub fn finish(self) -> Result<Bytes, EvalError> {
        match self.raw {
            None => match (self.fold, self.failed) {
                (Some(fold), None) => fold.finish(),
                (_, Some(e)) => Err(e),
                (None, None) => unreachable!("fold disabled without a recorded error"),
            },
            Some(raw) => {
                if let Some(fold) = self.fold {
                    if let Ok(combined) = fold.finish() {
                        return Ok(combined);
                    }
                }
                self.combiner.combine_all(&raw, self.env)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_dsl::ast::{RunOp, StructOp};
    use kq_dsl::eval::NoRunEnv;
    use kq_stream::Delim;

    #[test]
    fn class_priority_prefers_rec_ops() {
        let plausible = vec![
            Candidate::run(RunOp::Rerun),
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
            Candidate::structural(StructOp::Stitch(RecOp::First)),
        ];
        let s = SynthesizedCombiner::from_plausible(plausible);
        assert_eq!(s.members.len(), 1);
        assert!(matches!(s.primary().op, Combiner::Rec(RecOp::Back(..))));
    }

    #[test]
    fn universal_domain_member_subsumes() {
        let plausible = vec![
            Candidate::rec(RecOp::Concat),
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Concat))),
        ];
        let s = SynthesizedCombiner::from_plausible(plausible);
        assert_eq!(s.members.len(), 1);
        assert!(s.is_concat());
    }

    #[test]
    fn composite_falls_through_by_domain() {
        // (back '\n' add) applies to count streams; first handles the rest.
        let plausible = vec![
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
            Candidate::rec(RecOp::Fuse(Delim::Newline, Box::new(RecOp::Add))),
        ];
        let s = SynthesizedCombiner::from_plausible(plausible);
        assert_eq!(s.members.len(), 2);
        assert_eq!(s.combine2("3\n", "4\n", &NoRunEnv).unwrap(), "7\n");
    }

    #[test]
    fn rerun_detection() {
        let s = SynthesizedCombiner::from_plausible(vec![Candidate::run(RunOp::Rerun)]);
        assert!(s.is_rerun());
        assert!(!s.is_concat());
    }

    #[test]
    fn swapped_concat_is_not_theorem5_eligible() {
        let s = SynthesizedCombiner::from_plausible(vec![Candidate {
            op: Combiner::Rec(RecOp::Concat),
            swapped: true,
        }]);
        assert!(!s.is_concat());
    }

    #[test]
    fn authoritative_incremental_folds_retain_no_handles() {
        use kq_dsl::eval::{EvalError, RunEnv};
        struct MergeEnv;
        impl RunEnv for MergeEnv {
            fn rerun(&self, input: &str) -> Result<String, EvalError> {
                Ok(input.to_owned())
            }
            fn merge(&self, _flags: &[String], streams: &[&str]) -> Result<String, EvalError> {
                kq_coreutils::sort::merge_streams(&[], streams)
                    .map_err(|e| EvalError::Command(e.to_string()))
            }
        }
        // A sort-shaped composite: [merge, rerun] — multi-member, but the
        // primary's domain is universal, so the primary is always
        // selected and no fallback handles may be kept.
        let s = SynthesizedCombiner::from_plausible(vec![
            Candidate::run(RunOp::Merge(vec![])),
            Candidate::run(RunOp::Rerun),
        ]);
        let pieces: Vec<Bytes> = ["b\nd\n", "a\nc\n", "e\n"]
            .iter()
            .map(|p| Bytes::from(*p))
            .collect();
        let mut inc = s.incremental(&MergeEnv);
        for p in &pieces {
            inc.push(p.clone());
            assert_eq!(inc.retained_handles(), 0, "merge path must not pin pieces");
        }
        let expect = s.combine_all(&pieces, &MergeEnv).unwrap();
        assert_eq!(inc.finish().unwrap(), expect);
        // Single-member composites are authoritative whatever the domain.
        let s = SynthesizedCombiner::from_plausible(vec![Candidate::structural(StructOp::Stitch(
            RecOp::First,
        ))]);
        let mut inc = s.incremental(&NoRunEnv);
        inc.push(Bytes::from("a\nb\n"));
        inc.push(Bytes::from("b\nc\n"));
        assert_eq!(inc.retained_handles(), 0);
        assert_eq!(inc.finish().unwrap(), "a\nb\nc\n");
    }

    #[test]
    fn selective_incremental_folds_keep_the_fallback() {
        // wc -l-shaped composite: [back add, fuse add] — restricted
        // primary domain, so an out-of-domain piece must be able to
        // switch members over the full raw piece list.
        let s = SynthesizedCombiner::from_plausible(vec![
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
            Candidate::rec(RecOp::Fuse(Delim::Newline, Box::new(RecOp::Add))),
        ]);
        let pieces = vec![Bytes::from("3\n"), Bytes::from("4\n"), Bytes::from("5\n")];
        let mut inc = s.incremental(&NoRunEnv);
        for p in &pieces {
            inc.push(p.clone());
        }
        assert_eq!(inc.retained_handles(), pieces.len());
        assert_eq!(inc.finish().unwrap(), "12\n");
        // Pieces outside the primary's domain but inside the second
        // member's ("3\n4" has no trailing newline, so `back` rejects it
        // while `fuse` admits it): the speculation is abandoned and the
        // fallback must reproduce combine_all's member switch.
        let odd = vec![Bytes::from("3\n4"), Bytes::from("5\n6")];
        let expect = s.combine_all(&odd, &NoRunEnv).unwrap();
        let mut inc = s.incremental(&NoRunEnv);
        for p in &odd {
            inc.push(p.clone());
        }
        assert_eq!(inc.finish().unwrap(), expect);
    }

    #[test]
    fn selective_raw_handles_spill_under_budget() {
        // A selective composite retains every raw piece for the
        // gather-first fallback; under a zero budget those handles must be
        // batch-spilled to mapped slices rather than pinned on the heap —
        // and both finish paths (fold speculation, fallback over mapped
        // pieces) must still produce combine_all's answer.
        let s = SynthesizedCombiner::from_plausible(vec![
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
            Candidate::rec(RecOp::Fuse(Delim::Newline, Box::new(RecOp::Add))),
        ]);
        let dir = std::env::temp_dir().join(format!("kq-composite-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = kq_dsl::SpillConfig {
            budget_bytes: 0,
            dir: dir.clone(),
            metrics: std::sync::Arc::new(kq_dsl::SpillMetrics::default()),
        };
        // "3\n4" is outside the primary's domain: the fallback over the
        // (by then mapped) raw list is what settles the result.
        let odd = vec![
            Bytes::from("3\n4"),
            Bytes::from("5\n6"),
            Bytes::from("7\n8"),
        ];
        let expect = s.combine_all(&odd, &NoRunEnv).unwrap();
        let mut inc = s.incremental_with_spill(&NoRunEnv, Some(cfg.clone()));
        for p in &odd {
            inc.push(p.clone());
        }
        assert_eq!(inc.retained_handles(), odd.len(), "handles stay retained");
        assert_eq!(inc.finish().unwrap(), expect);
        let (runs, written, _) = cfg.metrics.snapshot();
        assert!(runs > 0, "raw handles must batch-spill at budget 0");
        assert!(written > 0);
        let leftovers = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(leftovers, 0, "spill dir must be clean after the combine");
    }

    #[test]
    fn kway_combination_via_members() {
        let s = SynthesizedCombiner::from_plausible(vec![Candidate::structural(StructOp::Stitch(
            RecOp::First,
        ))]);
        let pieces = vec![
            Bytes::from("a\nb\n"),
            Bytes::from("b\nc\n"),
            Bytes::from("d\n"),
        ];
        assert_eq!(s.combine_all(&pieces, &NoRunEnv).unwrap(), "a\nb\nc\nd\n");
    }
}
