//! Post-processing of the plausible set (paper §3.2, "Multiple Plausible
//! Combiners").
//!
//! When synthesis returns several plausible combiners, KumQuat keeps the
//! highest-priority class present (RecOp ⊐ StructOp ⊐ RunOp) and builds a
//! *composite* combiner: given arguments, apply the first member whose
//! legal domain contains them. When some member's domain is universal
//! (`concat`/`first`/`second`), that member alone suffices — its domain is
//! a superset of every other member's.

use kq_dsl::ast::{Candidate, Combiner, RecOp};
use kq_dsl::eval::{EvalError, RunEnv};
use kq_dsl::{domain, kway};
use kq_stream::Bytes;

/// The synthesis product: an executable combiner built from the plausible
/// set, plus the metadata the benchmark tables report.
#[derive(Debug, Clone)]
pub struct SynthesizedCombiner {
    /// The members of the composite, in application order.
    pub members: Vec<Candidate>,
    /// Every plausible combiner that survived filtering (for reporting;
    /// superset of `members`).
    pub plausible: Vec<Candidate>,
}

impl SynthesizedCombiner {
    /// Builds the composite from the full plausible set. Panics when the
    /// set is empty — callers handle the "no combiner" case beforehand.
    pub fn from_plausible(plausible: Vec<Candidate>) -> SynthesizedCombiner {
        assert!(!plausible.is_empty(), "no plausible combiners");
        let best_class = plausible
            .iter()
            .map(|c| c.op.class())
            .min()
            .expect("non-empty");
        let mut members: Vec<Candidate> = plausible
            .iter()
            .filter(|c| c.op.class() == best_class)
            .cloned()
            .collect();
        // Within RunOp, prefer merge over rerun: both are plausible for
        // sorting commands, but merge is a single k-way interleave while
        // rerun re-executes the command on the whole concatenation.
        members.sort_by_key(|c| matches!(c.op, Combiner::Run(kq_dsl::ast::RunOp::Rerun)) as u8);
        // Domain-superset reduction: a universal-domain member subsumes the
        // rest of its class.
        if let Some(universal) = members.iter().position(|c| {
            matches!(
                c.op,
                Combiner::Rec(RecOp::Concat)
                    | Combiner::Rec(RecOp::First)
                    | Combiner::Rec(RecOp::Second)
            )
        }) {
            members = vec![members[universal].clone()];
        }
        SynthesizedCombiner { members, plausible }
    }

    /// The representative combiner used for planning decisions (e.g. the
    /// Theorem 5 elimination test and the rerun-cost heuristic).
    pub fn primary(&self) -> &Candidate {
        &self.members[0]
    }

    /// True when the composite is plain concatenation, making the combiner
    /// eligible for intermediate elimination (Theorem 5).
    pub fn is_concat(&self) -> bool {
        self.members.len() == 1 && self.primary().op.is_concat() && !self.primary().swapped
    }

    /// True when the composite requires re-running the command.
    pub fn is_rerun(&self) -> bool {
        self.members
            .iter()
            .all(|c| matches!(c.op, Combiner::Run(kq_dsl::ast::RunOp::Rerun)))
    }

    /// Combines two streams: the first member whose domain admits both
    /// arguments is applied (the composite rule of §3.2).
    pub fn combine2(&self, y1: &str, y2: &str, env: &dyn RunEnv) -> Result<String, EvalError> {
        for member in &self.members {
            let (a, b) = member.oriented(y1, y2);
            if domain::in_domain(&member.op, a) && domain::in_domain(&member.op, b) {
                return kq_dsl::eval::eval(&member.op, a, b, env);
            }
        }
        // Fall back to the last member's evaluation error for diagnostics.
        let last = self.members.last().expect("non-empty");
        let (a, b) = last.oriented(y1, y2);
        kq_dsl::eval::eval(&last.op, a, b, env)
    }

    /// Combines `k` parallel substreams (paper §3.5): the first member
    /// whose domain admits all pieces is applied k-way. Pieces flow as
    /// refcounted [`Bytes`] slices; the domain checks borrow the piece
    /// text in place.
    pub fn combine_all(&self, pieces: &[Bytes], env: &dyn RunEnv) -> Result<Bytes, EvalError> {
        for member in &self.members {
            if pieces
                .iter()
                .filter(|p| !p.is_empty())
                .all(|p| p.to_str().is_ok_and(|s| domain::in_domain(&member.op, s)))
            {
                return kway::combine_all(member, pieces, env);
            }
        }
        kway::combine_all(self.members.last().expect("non-empty"), pieces, env)
    }

    /// Starts an incremental k-way combine: substreams are folded as they
    /// arrive (see [`kway::IncrementalFold`]) instead of being gathered
    /// first, so combine work overlaps with whatever produces the pieces.
    ///
    /// The fold speculatively commits to the primary member (the one
    /// [`combine_all`](Self::combine_all) picks for well-formed adjacent
    /// substreams). Raw piece *handles* are retained alongside, and if
    /// any incremental step fails, [`IncrementalCombine::finish`] falls
    /// back to the gather-first [`combine_all`](Self::combine_all) over
    /// them, restoring the composite's full member-selection semantics.
    ///
    /// Memory note: the handles are refcounted slices — O(pieces) extra
    /// *when the pieces share a buffer* (splits of one input). Pieces that
    /// own fresh buffers (per-chunk command outputs in the streaming
    /// barrier path) stay alive until `finish`, so a barrier stage's peak
    /// memory is on par with the gather-first executors, not below them —
    /// the safety net is reachable (fold-vs-gather error equality is only
    /// proven on success paths), so the handles cannot be dropped early.
    /// ROADMAP tracks this as streaming headroom.
    pub fn incremental<'a>(&'a self, env: &'a dyn RunEnv) -> IncrementalCombine<'a> {
        IncrementalCombine {
            combiner: self,
            env,
            raw: Vec::new(),
            fold: Some(kway::IncrementalFold::new(self.primary(), env)),
        }
    }
}

/// Incremental combining over a [`SynthesizedCombiner`] (see
/// [`SynthesizedCombiner::incremental`]).
pub struct IncrementalCombine<'a> {
    combiner: &'a SynthesizedCombiner,
    env: &'a dyn RunEnv,
    /// Every pushed piece, kept for the gather-first fallback. Handles
    /// only: the payload is shared with the fold.
    raw: Vec<Bytes>,
    /// The speculative primary-member fold; `None` after a step failed.
    fold: Option<kway::IncrementalFold<'a>>,
}

impl IncrementalCombine<'_> {
    /// Folds in the next substream. Never fails: a combine error merely
    /// disables the speculative fold, and [`finish`](Self::finish) takes
    /// the gather-first path instead.
    pub fn push(&mut self, piece: Bytes) {
        if let Some(fold) = &mut self.fold {
            // Committing to the primary member is sound only under the
            // condition [`combine_all`](SynthesizedCombiner::combine_all)
            // would select it: every piece lies in its legal domain. An
            // out-of-domain piece might still *evaluate* cleanly at the
            // boundaries the fold touches while the composite would have
            // chosen another member — so the domain check, not evaluation
            // success, gates the speculation. Single-member composites
            // skip the scan: selection is unconditional there.
            let multi = self.combiner.members.len() > 1;
            let primary = self.combiner.primary();
            let admissible = !multi
                || piece.is_empty()
                || piece
                    .to_str()
                    .is_ok_and(|s| domain::in_domain(&primary.op, s));
            if !admissible || fold.push(piece.clone()).is_err() {
                self.fold = None;
            }
        }
        self.raw.push(piece);
    }

    /// Settles into the combined stream.
    pub fn finish(self) -> Result<Bytes, EvalError> {
        if let Some(fold) = self.fold {
            if let Ok(combined) = fold.finish() {
                return Ok(combined);
            }
        }
        self.combiner.combine_all(&self.raw, self.env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_dsl::ast::{RunOp, StructOp};
    use kq_dsl::eval::NoRunEnv;
    use kq_stream::Delim;

    #[test]
    fn class_priority_prefers_rec_ops() {
        let plausible = vec![
            Candidate::run(RunOp::Rerun),
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
            Candidate::structural(StructOp::Stitch(RecOp::First)),
        ];
        let s = SynthesizedCombiner::from_plausible(plausible);
        assert_eq!(s.members.len(), 1);
        assert!(matches!(s.primary().op, Combiner::Rec(RecOp::Back(..))));
    }

    #[test]
    fn universal_domain_member_subsumes() {
        let plausible = vec![
            Candidate::rec(RecOp::Concat),
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Concat))),
        ];
        let s = SynthesizedCombiner::from_plausible(plausible);
        assert_eq!(s.members.len(), 1);
        assert!(s.is_concat());
    }

    #[test]
    fn composite_falls_through_by_domain() {
        // (back '\n' add) applies to count streams; first handles the rest.
        let plausible = vec![
            Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
            Candidate::rec(RecOp::Fuse(Delim::Newline, Box::new(RecOp::Add))),
        ];
        let s = SynthesizedCombiner::from_plausible(plausible);
        assert_eq!(s.members.len(), 2);
        assert_eq!(s.combine2("3\n", "4\n", &NoRunEnv).unwrap(), "7\n");
    }

    #[test]
    fn rerun_detection() {
        let s = SynthesizedCombiner::from_plausible(vec![Candidate::run(RunOp::Rerun)]);
        assert!(s.is_rerun());
        assert!(!s.is_concat());
    }

    #[test]
    fn swapped_concat_is_not_theorem5_eligible() {
        let s = SynthesizedCombiner::from_plausible(vec![Candidate {
            op: Combiner::Rec(RecOp::Concat),
            swapped: true,
        }]);
        assert!(!s.is_concat());
    }

    #[test]
    fn kway_combination_via_members() {
        let s = SynthesizedCombiner::from_plausible(vec![Candidate::structural(StructOp::Stitch(
            RecOp::First,
        ))]);
        let pieces = vec![
            Bytes::from("a\nb\n"),
            Bytes::from("b\nc\n"),
            Bytes::from("d\n"),
        ];
        assert_eq!(s.combine_all(&pieces, &NoRunEnv).unwrap(), "a\nb\nc\nd\n");
    }
}
