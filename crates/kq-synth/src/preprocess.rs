//! Command preprocessing (paper §3.2, "Preprocessing").
//!
//! Before synthesis, KumQuat inspects the command line and probes the
//! command with three canonical inputs:
//!
//! * literals are extracted — regex patterns from `grep`/`sed` become a
//!   dictionary of matching strings (via the `kq-pattern` sampler), numeric
//!   addresses (`sed 100q`, `head -n 3`) become line-count hints, and `cut`
//!   delimiters produce composite dictionary words that exercise the
//!   splitting path;
//! * the command runs on an unsorted word list, a sorted word list, and a
//!   file-name list. `comm`-style commands fail the first and pass the
//!   second (→ generate sorted inputs only); `xargs`-style commands fail
//!   both word lists and pass the file names (→ generate file names);
//! * the delimiter alphabet for candidate enumeration is read off the
//!   command's outputs on representative inputs.

use kq_coreutils::{Command, ExecContext};
use kq_pattern::Regex;
use kq_stream::Delim;
use rand::Rng;

/// What kind of input streams generation must produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputProfile {
    /// Arbitrary text streams.
    Plain,
    /// Sorted streams only (`comm`, `sort -m`-style consumers).
    Sorted,
    /// Streams of file names drawn from the probe filesystem (`xargs`).
    FileNames,
    /// Every probe failed; synthesis will almost surely return no combiner.
    Unsupported,
}

impl InputProfile {
    /// A short human-readable description (used by reports and the CLI).
    pub fn describe(&self) -> &'static str {
        match self {
            InputProfile::Plain => "plain text streams",
            InputProfile::Sorted => "sorted streams only (comm-style probe outcome)",
            InputProfile::FileNames => "file-name streams (xargs-style probe outcome)",
            InputProfile::Unsupported => "all probes failed",
        }
    }
}

/// The result of preprocessing a command.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Input generation profile from the three probes.
    pub profile: InputProfile,
    /// Dictionary entries biased into generated words.
    pub dictionary: Vec<String>,
    /// Line-count hint from numeric literals (`sed 100q` → 100).
    pub line_hint: Option<usize>,
    /// Delimiter alphabet observed in command outputs (always contains
    /// `'\n'`).
    pub delims: Vec<Delim>,
    /// Flags for the `merge` candidate (the command's own flags when it is
    /// a `sort`).
    pub merge_flags: Vec<String>,
}

impl Preprocessed {
    /// A plain-profile configuration for unit tests.
    pub fn plain_for_tests() -> Preprocessed {
        Preprocessed {
            profile: InputProfile::Plain,
            dictionary: Vec::new(),
            line_hint: None,
            delims: vec![Delim::Newline, Delim::Space],
            merge_flags: Vec::new(),
        }
    }
}

/// The prefix bound a command certifies for the execution planner:
/// `Some(k)` when its output depends only on the first `k` complete lines
/// of its standard input (`head -n k`, `sed kq`), `None` otherwise.
///
/// This is the planning-side twin of the [`Preprocessed::line_hint`]
/// extraction: the *hint* biases generated input sizes so synthesis
/// exercises the boundary (and deliberately widens `head -n 1` to at
/// least two lines), while the *bound* is the exact early-exit contract
/// the streaming executor cancels upstream work against — it must never
/// be widened or guessed, so it comes straight from the parsed command
/// ([`Command::line_bound`]) rather than from the literal scan.
pub fn prefix_bound(command: &Command) -> Option<usize> {
    command.line_bound()
}

/// The probe file names written by [`ensure_probe_files`]; these populate
/// the `FileNames` dictionary.
pub const PROBE_FILES: [&str; 4] = [
    "/kq/probe/alpha.txt",
    "/kq/probe/beta.txt",
    "/kq/probe/gamma.sh",
    "/kq/probe/delta.txt",
];

/// Writes the probe files into the context's filesystem (idempotent).
/// Contents differ in length so per-file statistics vary across files.
pub fn ensure_probe_files(ctx: &ExecContext) {
    let contents = [
        "alpha one\nalpha two\n",
        "beta\n",
        "#!/bin/sh\necho beta\nexit 0\n",
        "delta one\ndelta two\ndelta three\ndelta four\n",
    ];
    for (path, content) in PROBE_FILES.iter().zip(contents) {
        if !ctx.vfs.exists(path) {
            ctx.vfs.write(*path, content);
        }
    }
}

/// Runs the full preprocessing pass.
pub fn preprocess<R: Rng + ?Sized>(
    command: &Command,
    ctx: &ExecContext,
    rng: &mut R,
) -> Preprocessed {
    ensure_probe_files(ctx);
    let (dictionary, line_hint) = extract_literals(command, rng);
    let profile = probe_profile(command, ctx);
    let mut pre = Preprocessed {
        profile,
        dictionary,
        line_hint,
        delims: vec![Delim::Newline],
        merge_flags: merge_flags(command),
    };
    if matches!(profile, InputProfile::FileNames) {
        pre.dictionary = PROBE_FILES.iter().map(|s| (*s).to_owned()).collect();
    }
    pre.delims = detect_delims(command, ctx, &pre, rng);
    pre
}

/// Extracts regex/number literals from the command line.
fn extract_literals<R: Rng + ?Sized>(
    command: &Command,
    rng: &mut R,
) -> (Vec<String>, Option<usize>) {
    let argv = command.argv();
    let mut dictionary = Vec::new();
    let mut line_hint = None;
    match command.program() {
        "grep" => {
            if let Some(pattern) = argv[1..].iter().find(|a| !a.starts_with('-')) {
                if let Ok(re) = Regex::new(pattern) {
                    for _ in 0..10 {
                        let s = re.sample(rng, 3);
                        if !s.is_empty() && !s.contains('\n') {
                            dictionary.push(s);
                        }
                    }
                }
            }
        }
        "sed" => {
            if let Some(script) = argv[1..].iter().find(|a| !a.starts_with('-')) {
                let digits: String = script.chars().take_while(|c| c.is_ascii_digit()).collect();
                if !digits.is_empty() && (script.ends_with('q') || script.ends_with('d')) {
                    line_hint = digits.parse().ok();
                } else if let Some(rest) = script.strip_prefix('s') {
                    // Sample the pattern between the first two delimiters.
                    let mut chars = rest.chars();
                    if let Some(d) = chars.next() {
                        let body: String = chars.collect();
                        if let Some((re_text, _)) = body.split_once(d) {
                            if let Ok(re) = Regex::new(re_text) {
                                for _ in 0..8 {
                                    let s = re.sample(rng, 2);
                                    if !s.is_empty() && !s.contains('\n') {
                                        dictionary.push(s);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        "head" | "tail" => {
            for a in &argv[1..] {
                let trimmed = a
                    .trim_start_matches(['-', '+', 'n'])
                    .trim_start_matches(' ');
                if let Ok(n) = trimmed.parse::<usize>() {
                    line_hint = Some(n.max(2));
                }
            }
        }
        "cut" => {
            // A `-d X` delimiter only matters if inputs contain it.
            if let Some(d) = cut_delimiter(argv) {
                for seed in ["ab", "cd", "efg"] {
                    dictionary.push(format!("{seed}{d}x{d}y{d}z"));
                }
            }
        }
        _ => {}
    }
    (dictionary, line_hint)
}

fn cut_delimiter(argv: &[String]) -> Option<char> {
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a == "-d" {
            return it.next().and_then(|v| v.chars().next());
        }
        if let Some(body) = a.strip_prefix("-d") {
            return body.chars().next();
        }
    }
    None
}

/// The three canonical probes (paper §3.2): unsorted words, sorted words,
/// file names.
fn probe_profile(command: &Command, ctx: &ExecContext) -> InputProfile {
    let unsorted = "mango\napple\nzebra\nbanana\ncherry\napple\n";
    let sorted = "apple\napple\nbanana\ncherry\nmango\nzebra\n";
    let filenames: String = PROBE_FILES.iter().map(|f| format!("{f}\n")).collect();
    if command.run_str(unsorted, ctx).is_ok() {
        return InputProfile::Plain;
    }
    if command.run_str(sorted, ctx).is_ok() {
        return InputProfile::Sorted;
    }
    if command.run_str(&filenames, ctx).is_ok() {
        return InputProfile::FileNames;
    }
    InputProfile::Unsupported
}

/// Runs the command on representative inputs and reads the delimiter
/// alphabet off its outputs.
fn detect_delims<R: Rng + ?Sized>(
    command: &Command,
    ctx: &ExecContext,
    pre: &Preprocessed,
    rng: &mut R,
) -> Vec<Delim> {
    let shape = crate::shape::InputShape {
        lines: crate::shape::Config {
            min: 6,
            max: 10,
            distinct_pct: 60,
        },
        words: crate::shape::Config {
            min: 1,
            max: 3,
            distinct_pct: 80,
        },
        chars: crate::shape::Config {
            min: 1,
            max: 5,
            distinct_pct: 80,
        },
    };
    let mut seen_space = false;
    let mut seen_tab = false;
    let mut seen_comma = false;
    for _ in 0..4 {
        let Some((x1, x2)) = crate::gen::stream_pair(&shape, pre, rng) else {
            continue;
        };
        let combined = format!("{x1}{x2}");
        if let Ok(out) = command.run_str(&combined, ctx) {
            seen_space |= out.contains(' ');
            seen_tab |= out.contains('\t');
            seen_comma |= out.contains(',');
        }
    }
    let mut delims = vec![Delim::Newline];
    if seen_tab {
        delims.push(Delim::Tab);
    }
    if seen_space {
        delims.push(Delim::Space);
    }
    if seen_comma {
        delims.push(Delim::Comma);
    }
    delims
}

fn merge_flags(command: &Command) -> Vec<String> {
    if command.program() != "sort" {
        return Vec::new();
    }
    command.argv()[1..]
        .iter()
        .filter(|a| a.starts_with('-') && !a.starts_with("--parallel") && *a != "-m")
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_coreutils::parse_command;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pre(cmd: &str) -> Preprocessed {
        let command = parse_command(cmd).unwrap();
        let ctx = ExecContext::default();
        let mut rng = SmallRng::seed_from_u64(99);
        preprocess(&command, &ctx, &mut rng)
    }

    #[test]
    fn plain_commands_probe_plain() {
        assert_eq!(pre("cat").profile, InputProfile::Plain);
        assert_eq!(pre("sort").profile, InputProfile::Plain);
        assert_eq!(pre("uniq -c").profile, InputProfile::Plain);
    }

    #[test]
    fn comm_probes_sorted() {
        let command = parse_command("comm -23 - /kq/probe/dict").unwrap();
        let ctx = ExecContext::default();
        ensure_probe_files(&ctx);
        ctx.vfs.write("/kq/probe/dict", "apple\nbanana\n");
        let mut rng = SmallRng::seed_from_u64(3);
        let p = preprocess(&command, &ctx, &mut rng);
        assert_eq!(p.profile, InputProfile::Sorted);
    }

    #[test]
    fn xargs_probes_filenames() {
        let p = pre("xargs cat");
        assert_eq!(p.profile, InputProfile::FileNames);
        assert!(!p.dictionary.is_empty());
        assert!(p.dictionary.iter().all(|d| d.starts_with("/kq/probe/")));
    }

    #[test]
    fn grep_literals_sampled_into_dictionary() {
        let p = pre("grep 'light.light'");
        assert!(!p.dictionary.is_empty());
        let re = Regex::new("light.light").unwrap();
        assert!(p.dictionary.iter().all(|w| re.is_match(w)));
    }

    #[test]
    fn sed_quit_address_becomes_line_hint() {
        assert_eq!(pre("sed 100q").line_hint, Some(100));
        assert_eq!(pre("sed 5q").line_hint, Some(5));
        assert_eq!(pre("sed 1d").line_hint, Some(1));
    }

    #[test]
    fn head_count_becomes_line_hint() {
        assert_eq!(pre("head -n 3").line_hint, Some(3));
        assert_eq!(pre("head -15").line_hint, Some(15));
        assert_eq!(pre("tail +2").line_hint, Some(2));
    }

    #[test]
    fn prefix_bound_is_exact_where_the_hint_is_fuzzed() {
        // The generation hint widens head -n 1 to 2 (boundary coverage);
        // the execution bound must stay exactly 1. And the hint fires for
        // commands that are NOT prefix-bounded (sed 1d, tail +2) — the
        // bound must not.
        let bound = |line: &str| prefix_bound(&parse_command(line).unwrap());
        assert_eq!(bound("head -n 1"), Some(1));
        assert_eq!(pre("head -n 1").line_hint, Some(2));
        assert_eq!(bound("sed 100q"), Some(100));
        assert_eq!(bound("sed 1d"), None);
        assert_eq!(pre("sed 1d").line_hint, Some(1));
        assert_eq!(bound("tail +2"), None);
        assert_eq!(bound("grep x"), None);
    }

    #[test]
    fn cut_delimiter_seeds_dictionary() {
        let p = pre("cut -d ',' -f 1,3");
        assert!(p.dictionary.iter().any(|w| w.contains(',')));
    }

    #[test]
    fn merge_flags_taken_from_sort() {
        assert_eq!(pre("sort -rn").merge_flags, vec!["-rn".to_owned()]);
        assert_eq!(pre("sort -u").merge_flags, vec!["-u".to_owned()]);
        assert!(pre("sort --parallel=1").merge_flags.is_empty());
        assert!(pre("uniq").merge_flags.is_empty());
    }

    #[test]
    fn delim_detection_wc_is_newline_only() {
        let p = pre("wc -l");
        assert_eq!(p.delims, vec![Delim::Newline]);
    }

    #[test]
    fn delim_detection_cat_sees_spaces() {
        let p = pre("cat");
        assert!(p.delims.contains(&Delim::Space));
        assert!(!p.delims.contains(&Delim::Comma));
    }

    #[test]
    fn delim_detection_uniq_c_sees_spaces() {
        let p = pre("uniq -c");
        assert!(p.delims.contains(&Delim::Space));
    }
}
