//! The core synthesis loop: Algorithm 1 (`Synthesize`) driving Algorithm 2
//! (`GetEffectiveInputs`).
//!
//! Each round generates a fresh random seed shape, hill-climbs it through
//! the twelve mutations — scoring each mutation by how many candidates its
//! generated inputs eliminate — and filters the surviving candidate set
//! against every observation collected along the way. The loop stops when
//! a round eliminates nothing `stall_rounds` times in succession (the
//! paper's `MakingProgress`), or when the candidate set empties (no
//! combiner exists — Table 9).
//!
//! # Staged rounds and parallelism
//!
//! Each gradient step runs in four phases so the two expensive sides —
//! *observation generation* (three command executions per input pair) and
//! *candidate elimination* (one evaluation per candidate per observation)
//! — both fan out over a [`SynthPool`] while the RNG-driven and
//! order-sensitive bookkeeping stays serial:
//!
//! 1. **generate** (serial, RNG): input pairs for all twelve mutations, in
//!    the exact (mutation, pair) order the serial algorithm draws them —
//!    the only phase that touches the RNG;
//! 2. **observe** (pool): run `f` on each pair to form
//!    `⟨f(x1), f(x2), f(x1++x2)⟩`, one independent job per pair;
//! 3. **dedup** (serial, ordered): drop observations already seen, keeping
//!    first-occurrence order so counterexample attribution is stable;
//! 4. **filter** (pool): one plausibility verdict per (candidate, fresh
//!    observation). Gradient scores are order-independent sums over the
//!    verdict matrix, the counterexample is the first fresh observation
//!    (in generation order) that eliminates anything, and retention keeps
//!    exactly the candidates whose row is all-true.
//!
//! Retention filters against the *fresh* observations only: every live
//! candidate already passed all prior observations (that is what kept it
//! live), and plausibility over a concatenated observation list is the
//! conjunction of per-observation plausibility — so the incremental
//! filter provably equals the serial `retain` over the cumulative list.
//! Every phase's output is a pure function of the phase inputs, so the
//! whole report is byte-identical for any `workers` value (pinned over
//! the corpus by `tests/synth_engine.rs`).

use crate::composite::SynthesizedCombiner;
use crate::gen::stream_pair;
use crate::pool::SynthPool;
use crate::preprocess::{preprocess, InputProfile, Preprocessed};
use crate::shape::{InputShape, Mutation};
use kq_coreutils::{Command, ExecContext};
use kq_dsl::ast::Candidate;
use kq_dsl::eval::CommandEnv;
use kq_dsl::{enumerate_candidates, plausible, EnumConfig, Observation, SpaceBreakdown};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Synthesis tuning knobs.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Maximum combiner size `|g|` (Definition 3.6); 7 reproduces the
    /// paper's search-space sizes.
    pub max_size: usize,
    /// Gradient iterations per round (`M` in Algorithm 2).
    pub gradient_steps: usize,
    /// Input stream pairs generated per mutated shape.
    pub pairs_per_shape: usize,
    /// Rounds without elimination before declaring convergence.
    pub stall_rounds: usize,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// RNG seed (synthesis is deterministic given the seed).
    pub rng_seed: u64,
    /// Follow the elimination gradient when choosing the next shape
    /// (Algorithm 2). With `false`, mutations are chosen uniformly at
    /// random — the ablation baseline for the paper's gradient design.
    pub use_gradient: bool,
    /// Worker threads for the observe/filter phases (and, in the planner,
    /// for synthesizing distinct commands concurrently). Affects wall
    /// clock only: the report is identical for every value (see the
    /// crate-level determinism discussion).
    pub workers: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            max_size: 7,
            gradient_steps: 2,
            pairs_per_shape: 2,
            stall_rounds: 2,
            max_rounds: 8,
            rng_seed: 0x5eed,
            use_gradient: true,
            workers: 1,
        }
    }
}

/// The synthesis verdict for one command.
#[derive(Debug, Clone)]
pub enum SynthesisOutcome {
    /// A combiner (possibly composite) was found.
    Synthesized(SynthesizedCombiner),
    /// Every candidate was eliminated: no combiner exists in the space.
    NoCombiner {
        /// An input pair that eliminated one of the last candidates, kept
        /// as the counterexample for reporting (Table 9).
        counterexample: Option<(String, String)>,
    },
}

/// The full synthesis report for one command (one Table 10 row).
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// The command line.
    pub command: String,
    /// Search-space size, broken down by class as in Table 10.
    pub space: SpaceBreakdown,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
    /// Rounds executed.
    pub rounds: usize,
    /// Observations collected.
    pub observations: usize,
    /// Preprocessing results that shaped generation.
    pub profile: InputProfile,
    /// The verdict.
    pub outcome: SynthesisOutcome,
}

impl SynthesisReport {
    /// The plausible combiners, empty when no combiner exists.
    pub fn plausible(&self) -> &[Candidate] {
        match &self.outcome {
            SynthesisOutcome::Synthesized(s) => &s.plausible,
            SynthesisOutcome::NoCombiner { .. } => &[],
        }
    }

    /// The executable combiner, `None` when synthesis failed.
    pub fn combiner(&self) -> Option<&SynthesizedCombiner> {
        match &self.outcome {
            SynthesisOutcome::Synthesized(s) => Some(s),
            SynthesisOutcome::NoCombiner { .. } => None,
        }
    }
}

/// Executes `f` on an input pair, producing the observation
/// `⟨f(x1), f(x2), f(x1 ++ x2)⟩` (Definition 3.5). `None` when the command
/// rejects any of the three inputs.
fn observe(command: &Command, ctx: &ExecContext, x1: &str, x2: &str) -> Option<Observation> {
    let y1 = command.run_str(x1, ctx).ok()?;
    let y2 = command.run_str(x2, ctx).ok()?;
    let combined = format!("{x1}{x2}");
    let y12 = command.run_str(&combined, ctx).ok()?;
    Some(Observation { y1, y2, y12 })
}

/// Algorithm 1: synthesizes a combiner for `command`.
pub fn synthesize(
    command: &Command,
    ctx: &ExecContext,
    config: &SynthesisConfig,
) -> SynthesisReport {
    let span = kq_trace::span("synth", "synthesize").label(command.display());
    let start = Instant::now();
    let pool = SynthPool::new(config.workers);
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let pre = preprocess(command, ctx, &mut rng);
    let enum_config = EnumConfig {
        delims: pre.delims.clone(),
        max_size: config.max_size,
        merge_flags: pre.merge_flags.clone(),
    };
    let (mut alive, space) = enumerate_candidates(&enum_config);
    let env = CommandEnv { command, ctx };

    let mut observations: Vec<Observation> = Vec::new();
    // Cross-round dedup: every observation ever kept, hashed. Replaces
    // the former O(n²) `observations.contains` scan per candidate
    // observation (ROADMAP headroom) with one set probe; the retained
    // sequence is identical (see `hashed_dedup_matches_quadratic_scan`).
    let mut seen: HashSet<Observation> = HashSet::new();
    let mut counterexample: Option<(String, String)> = None;
    let mut rounds = 0;
    let mut stalled = 0;

    if matches!(pre.profile, InputProfile::Unsupported) {
        // Every probe failed (e.g. the command reads a file that does not
        // exist yet): no observation can certify any candidate.
        span.done();
        return SynthesisReport {
            command: command.display(),
            space,
            elapsed: start.elapsed(),
            rounds: 0,
            observations: 0,
            profile: pre.profile,
            outcome: SynthesisOutcome::NoCombiner {
                counterexample: None,
            },
        };
    }

    while rounds < config.max_rounds && !alive.is_empty() {
        rounds += 1;
        kq_trace::instant("synth", "round")
            .label(command.display())
            .seq(rounds)
            .v(alive.len() as f64)
            .emit();
        let before = alive.len();
        let seed_shape = InputShape::random(&mut rng, pre.line_hint);
        gradient_round(
            command,
            ctx,
            &pre,
            seed_shape,
            config,
            &mut rng,
            &mut alive,
            &mut observations,
            &mut seen,
            &mut counterexample,
            &env,
            &pool,
        );
        if alive.is_empty() {
            break;
        }
        if alive.len() == before {
            stalled += 1;
            if stalled >= config.stall_rounds {
                break;
            }
        } else {
            stalled = 0;
        }
    }

    // A verdict needs evidence: with no successful observations, every
    // candidate is vacuously "plausible" and none is certified.
    let outcome = if alive.is_empty() || observations.is_empty() {
        SynthesisOutcome::NoCombiner { counterexample }
    } else {
        SynthesisOutcome::Synthesized(SynthesizedCombiner::from_plausible(alive))
    };
    kq_trace::counter("synth", "rounds", rounds as f64)
        .label(command.display())
        .emit();
    kq_trace::counter("synth", "observations", observations.len() as f64)
        .label(command.display())
        .emit();
    span.done();
    SynthesisReport {
        command: command.display(),
        space,
        elapsed: start.elapsed(),
        rounds,
        observations: observations.len(),
        profile: pre.profile,
        outcome,
    }
}

/// Algorithm 2: one gradient descent over shape mutations, staged so the
/// observe and filter phases fan out over the pool (see the module docs).
/// All generated observations filter the candidate set; the mutation that
/// eliminated the most candidates seeds the next step.
#[allow(clippy::too_many_arguments)]
fn gradient_round(
    command: &Command,
    ctx: &ExecContext,
    pre: &Preprocessed,
    mut shape: InputShape,
    config: &SynthesisConfig,
    rng: &mut SmallRng,
    alive: &mut Vec<Candidate>,
    observations: &mut Vec<Observation>,
    seen: &mut HashSet<Observation>,
    counterexample: &mut Option<(String, String)>,
    env: &CommandEnv<'_>,
    pool: &SynthPool,
) {
    for _step in 0..config.gradient_steps {
        // Phase 1 — generate (serial; the RNG draws happen in the same
        // (mutation, pair) order as the serial algorithm's).
        let shapes: Vec<InputShape> = Mutation::all().iter().map(|m| shape.mutate(*m)).collect();
        let mut pairs: Vec<(usize, String, String)> = Vec::new();
        for (mi, mutated) in shapes.iter().enumerate() {
            for _ in 0..config.pairs_per_shape {
                if let Some((x1, x2)) = stream_pair(mutated, pre, rng) {
                    pairs.push((mi, x1, x2));
                }
            }
        }

        // Phase 2 — observe (pool): three command executions per pair,
        // each an independent job; results slot back in generation order.
        let observed: Vec<Option<Observation>> =
            pool.map(&pairs, |_, (_, x1, x2)| observe(command, ctx, x1, x2));

        // Phase 3 — dedup (serial, ordered): keep first occurrences only,
        // recording which span of the fresh list each mutation produced.
        // The seen-set spans rounds, so one probe covers both "already in
        // the cumulative list" and "already fresh this round".
        let mut fresh: Vec<Observation> = Vec::new();
        let mut fresh_pairs: Vec<(String, String)> = Vec::new();
        let mut spans: Vec<std::ops::Range<usize>> = Vec::with_capacity(shapes.len());
        let mut cursor = 0;
        for mi in 0..shapes.len() {
            let start = fresh.len();
            while cursor < pairs.len() && pairs[cursor].0 == mi {
                if let Some(obs) = &observed[cursor] {
                    if note_fresh(seen, obs) {
                        fresh.push(obs.clone());
                        let (_, x1, x2) = &pairs[cursor];
                        fresh_pairs.push((x1.clone(), x2.clone()));
                    }
                }
                cursor += 1;
            }
            spans.push(start..fresh.len());
        }

        // Phase 4 — filter (pool): the (candidate × fresh observation)
        // verdict matrix, partitioned over candidates.
        let verdicts: Vec<Vec<bool>> = pool.map(alive, |_, c| {
            fresh
                .iter()
                .map(|o| plausible(c, std::slice::from_ref(o), env))
                .collect()
        });

        // Counterexample: the first fresh observation (generation order)
        // that eliminates any live candidate — same pair the serial
        // algorithm records at insertion time.
        if counterexample.is_none() {
            for (oi, pair) in fresh_pairs.iter().enumerate() {
                if verdicts.iter().any(|row| !row[oi]) {
                    *counterexample = Some(pair.clone());
                    break;
                }
            }
        }

        // Score: how many live candidates does each mutation's batch
        // eliminate? A candidate is eliminated by a batch iff some
        // observation in the batch's span fails it — an order-independent
        // sum over the verdict matrix. Ties keep the earliest mutation,
        // as the serial fold does.
        let mut best: Option<(usize, usize)> = None;
        for (mi, span) in spans.iter().enumerate() {
            let eliminated = verdicts
                .iter()
                .filter(|row| span.clone().any(|oi| !row[oi]))
                .count();
            match best {
                Some((score, _)) if score >= eliminated => {}
                _ => best = Some((eliminated, mi)),
            }
        }

        // Retention: every live candidate already passed the cumulative
        // observation set (that is the loop invariant the previous retain
        // established), so keeping the all-true rows equals the serial
        // retain over `observations ++ fresh`.
        let mask: Vec<bool> = verdicts.iter().map(|row| row.iter().all(|&b| b)).collect();
        kq_dsl::retain_by_mask(alive, &mask);
        observations.extend(fresh);
        if alive.is_empty() {
            return;
        }
        if config.use_gradient {
            if let Some((_, mi)) = best {
                shape = shapes[mi];
            }
        } else {
            // Ablation: ignore the gradient, take a uniformly random step.
            use rand::Rng;
            let all = Mutation::all();
            shape = shape.mutate(all[rng.gen_range(0..all.len())]);
        }
    }
}

/// Records `obs` in the cross-round seen-set, returning whether it is
/// fresh (its first occurrence). This is the hashed replacement for the
/// quadratic `Vec::contains` scan the dedup phase used to run per
/// observation: the set keys on the observation's content hash and
/// resolves collisions by full equality, so the retained sequence —
/// order included — is exactly the quadratic scan's (pinned by
/// `hashed_dedup_matches_quadratic_scan`).
fn note_fresh(seen: &mut HashSet<Observation>, obs: &Observation) -> bool {
    if seen.contains(obs) {
        false
    } else {
        seen.insert(obs.clone());
        true
    }
}

/// Replays cached candidates against the first observation synthesis
/// itself would generate for `command` under `config` — the persistent
/// combiner cache's load-validation step.
///
/// The probe regenerates round 1's first successful observation from
/// `config.rng_seed` (same preprocessing, same seed shape, same mutation
/// order), so a genuine cache entry — a plausible set that survived that
/// very observation during synthesis — always passes, while an entry that
/// belongs to a different command (a cache-key collision), a different
/// configuration, or a corrupted file is rejected unless it happens to be
/// plausible for this command too. Returns `false` when no observation
/// can be generated at all (e.g. a missing file dependency): with zero
/// evidence the entry must not be trusted.
pub fn spot_check(
    command: &Command,
    ctx: &ExecContext,
    config: &SynthesisConfig,
    candidates: &[Candidate],
) -> bool {
    if candidates.is_empty() {
        return false;
    }
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let pre = preprocess(command, ctx, &mut rng);
    if matches!(pre.profile, InputProfile::Unsupported) {
        return false;
    }
    let env = CommandEnv { command, ctx };
    let seed_shape = InputShape::random(&mut rng, pre.line_hint);
    for mutation in Mutation::all() {
        let mutated = seed_shape.mutate(mutation);
        for _ in 0..config.pairs_per_shape {
            let Some((x1, x2)) = stream_pair(&mutated, &pre, &mut rng) else {
                continue;
            };
            let Some(obs) = observe(command, ctx, &x1, &x2) else {
                continue;
            };
            return candidates
                .iter()
                .all(|c| plausible(c, std::slice::from_ref(&obs), &env));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_coreutils::parse_command;
    use kq_dsl::ast::{Combiner, RecOp, RunOp, StructOp};
    use kq_stream::Delim;

    fn synth(cmd: &str) -> SynthesisReport {
        let command = parse_command(cmd).unwrap();
        let ctx = ExecContext::default();
        synthesize(&command, &ctx, &SynthesisConfig::default())
    }

    fn has(report: &SynthesisReport, op: &Combiner) -> bool {
        report.plausible().iter().any(|c| &c.op == op)
    }

    #[test]
    fn wc_l_synthesizes_back_newline_add() {
        let r = synth("wc -l");
        let want = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        assert!(
            has(&r, &want),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
        // concat must have been eliminated.
        assert!(!has(&r, &Combiner::Rec(RecOp::Concat)));
        // Space matches Table 10's wc -l row: newline-only outputs.
        assert_eq!(r.space.total(), 2700);
    }

    #[test]
    fn grep_c_synthesizes_count_adder() {
        let r = synth("grep -c a");
        let want = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        assert!(has(&r, &want));
    }

    #[test]
    fn tr_translate_synthesizes_concat() {
        let r = synth("tr A-Z a-z");
        let s = r.combiner().expect("combiner");
        assert!(
            s.is_concat(),
            "members: {:?}",
            s.members.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniq_synthesizes_stitch_selection() {
        let r = synth("uniq");
        let stitch_first = Combiner::Struct(StructOp::Stitch(RecOp::First));
        let stitch_second = Combiner::Struct(StructOp::Stitch(RecOp::Second));
        assert!(
            has(&r, &stitch_first) || has(&r, &stitch_second),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
        assert!(!has(&r, &Combiner::Rec(RecOp::Concat)));
    }

    #[test]
    fn uniq_c_synthesizes_stitch2_add() {
        let r = synth("uniq -c");
        let want = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
        let alt = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::Second));
        assert!(
            has(&r, &want) || has(&r, &alt),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sort_synthesizes_merge() {
        let r = synth("sort");
        assert!(has(&r, &Combiner::Run(RunOp::Merge(vec![]))));
        assert!(!has(&r, &Combiner::Rec(RecOp::Concat)));
    }

    #[test]
    fn sort_rn_merge_carries_flags() {
        let r = synth("sort -rn");
        assert!(has(
            &r,
            &Combiner::Run(RunOp::Merge(vec!["-rn".to_owned()]))
        ));
    }

    #[test]
    fn tr_squeeze_requires_rerun() {
        // The §2 example: only rerun survives for tr -cs.
        let r = synth(r"tr -cs A-Za-z '\n'");
        let s = r.combiner().expect("combiner");
        assert!(
            s.is_rerun(),
            "members: {:?}",
            s.members.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sed_1d_has_no_combiner() {
        let r = synth("sed 1d");
        assert!(
            r.combiner().is_none(),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn tail_plus_2_has_no_combiner() {
        let r = synth("tail +2");
        assert!(r.combiner().is_none());
    }

    #[test]
    fn head_n_1_synthesizes_first() {
        let r = synth("head -n 1");
        assert!(has(&r, &Combiner::Rec(RecOp::First)));
    }

    #[test]
    fn tail_n_1_synthesizes_second() {
        let r = synth("tail -n 1");
        assert!(has(&r, &Combiner::Rec(RecOp::Second)));
    }

    #[test]
    fn sed_100q_synthesizes_rerun() {
        let r = synth("sed 100q");
        let s = r.combiner().expect("combiner");
        assert!(
            s.is_rerun(),
            "members: {:?}",
            s.members.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn missing_file_dependency_yields_no_combiner() {
        // A command whose file dependency does not exist yet (written by
        // an earlier pipeline statement) must not be certified: with zero
        // observations every candidate would be vacuously plausible.
        let command = parse_command("comm -23 - /not/written/yet").unwrap();
        let ctx = ExecContext::default();
        let r = synthesize(&command, &ctx, &SynthesisConfig::default());
        assert!(r.combiner().is_none());
        assert_eq!(r.observations, 0);
    }

    #[test]
    fn hashed_dedup_matches_quadratic_scan() {
        // A duplicate-heavy observation stream (23×11 distinct among 600):
        // the hashed seen-set must retain exactly what the replaced
        // quadratic `contains` scan retained, in the same order.
        let stream: Vec<Observation> = (0..600)
            .map(|i| {
                let y1 = format!("{}\n", i % 23);
                let y2 = format!("{}\n", (i * 7) % 11);
                let y12 = format!("{y1}{y2}");
                Observation::new(y1, y2, y12)
            })
            .collect();
        let mut seen = HashSet::new();
        let mut hashed: Vec<Observation> = Vec::new();
        let mut quadratic: Vec<Observation> = Vec::new();
        for obs in &stream {
            if note_fresh(&mut seen, obs) {
                hashed.push(obs.clone());
            }
            if !quadratic.contains(obs) {
                quadratic.push(obs.clone());
            }
        }
        assert_eq!(hashed, quadratic);
        assert!(
            hashed.len() < stream.len() / 2,
            "the stream must actually contain duplicates"
        );
        // Replaying the whole stream finds nothing fresh.
        assert!(stream.iter().all(|o| !note_fresh(&mut seen, o)));
    }

    #[test]
    fn report_metadata_populated() {
        let r = synth("cat");
        assert!(r.rounds >= 1);
        assert!(r.observations > 0);
        assert!(r.elapsed.as_nanos() > 0);
        assert_eq!(r.command, "cat");
    }
}
