//! The core synthesis loop: Algorithm 1 (`Synthesize`) driving Algorithm 2
//! (`GetEffectiveInputs`).
//!
//! Each round generates a fresh random seed shape, hill-climbs it through
//! the twelve mutations — scoring each mutation by how many candidates its
//! generated inputs eliminate — and filters the surviving candidate set
//! against every observation collected along the way. The loop stops when
//! a round eliminates nothing `stall_rounds` times in succession (the
//! paper's `MakingProgress`), or when the candidate set empties (no
//! combiner exists — Table 9).

use crate::composite::SynthesizedCombiner;
use crate::gen::stream_pair;
use crate::preprocess::{preprocess, InputProfile, Preprocessed};
use crate::shape::{InputShape, Mutation};
use kq_coreutils::{Command, ExecContext};
use kq_dsl::ast::Candidate;
use kq_dsl::eval::CommandEnv;
use kq_dsl::{enumerate_candidates, plausible, EnumConfig, Observation, SpaceBreakdown};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Synthesis tuning knobs.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Maximum combiner size `|g|` (Definition 3.6); 7 reproduces the
    /// paper's search-space sizes.
    pub max_size: usize,
    /// Gradient iterations per round (`M` in Algorithm 2).
    pub gradient_steps: usize,
    /// Input stream pairs generated per mutated shape.
    pub pairs_per_shape: usize,
    /// Rounds without elimination before declaring convergence.
    pub stall_rounds: usize,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// RNG seed (synthesis is deterministic given the seed).
    pub rng_seed: u64,
    /// Follow the elimination gradient when choosing the next shape
    /// (Algorithm 2). With `false`, mutations are chosen uniformly at
    /// random — the ablation baseline for the paper's gradient design.
    pub use_gradient: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            max_size: 7,
            gradient_steps: 2,
            pairs_per_shape: 2,
            stall_rounds: 2,
            max_rounds: 8,
            rng_seed: 0x5eed,
            use_gradient: true,
        }
    }
}

/// The synthesis verdict for one command.
#[derive(Debug, Clone)]
pub enum SynthesisOutcome {
    /// A combiner (possibly composite) was found.
    Synthesized(SynthesizedCombiner),
    /// Every candidate was eliminated: no combiner exists in the space.
    NoCombiner {
        /// An input pair that eliminated one of the last candidates, kept
        /// as the counterexample for reporting (Table 9).
        counterexample: Option<(String, String)>,
    },
}

/// The full synthesis report for one command (one Table 10 row).
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// The command line.
    pub command: String,
    /// Search-space size, broken down by class as in Table 10.
    pub space: SpaceBreakdown,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
    /// Rounds executed.
    pub rounds: usize,
    /// Observations collected.
    pub observations: usize,
    /// Preprocessing results that shaped generation.
    pub profile: InputProfile,
    /// The verdict.
    pub outcome: SynthesisOutcome,
}

impl SynthesisReport {
    /// The plausible combiners, empty when no combiner exists.
    pub fn plausible(&self) -> &[Candidate] {
        match &self.outcome {
            SynthesisOutcome::Synthesized(s) => &s.plausible,
            SynthesisOutcome::NoCombiner { .. } => &[],
        }
    }

    /// The executable combiner, `None` when synthesis failed.
    pub fn combiner(&self) -> Option<&SynthesizedCombiner> {
        match &self.outcome {
            SynthesisOutcome::Synthesized(s) => Some(s),
            SynthesisOutcome::NoCombiner { .. } => None,
        }
    }
}

/// Executes `f` on an input pair, producing the observation
/// `⟨f(x1), f(x2), f(x1 ++ x2)⟩` (Definition 3.5). `None` when the command
/// rejects any of the three inputs.
fn observe(command: &Command, ctx: &ExecContext, x1: &str, x2: &str) -> Option<Observation> {
    let y1 = command.run_str(x1, ctx).ok()?;
    let y2 = command.run_str(x2, ctx).ok()?;
    let combined = format!("{x1}{x2}");
    let y12 = command.run_str(&combined, ctx).ok()?;
    Some(Observation { y1, y2, y12 })
}

/// Algorithm 1: synthesizes a combiner for `command`.
pub fn synthesize(
    command: &Command,
    ctx: &ExecContext,
    config: &SynthesisConfig,
) -> SynthesisReport {
    let start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let pre = preprocess(command, ctx, &mut rng);
    let enum_config = EnumConfig {
        delims: pre.delims.clone(),
        max_size: config.max_size,
        merge_flags: pre.merge_flags.clone(),
    };
    let (mut alive, space) = enumerate_candidates(&enum_config);
    let env = CommandEnv { command, ctx };

    let mut observations: Vec<Observation> = Vec::new();
    let mut counterexample: Option<(String, String)> = None;
    let mut rounds = 0;
    let mut stalled = 0;

    if matches!(pre.profile, InputProfile::Unsupported) {
        // Every probe failed (e.g. the command reads a file that does not
        // exist yet): no observation can certify any candidate.
        return SynthesisReport {
            command: command.display(),
            space,
            elapsed: start.elapsed(),
            rounds: 0,
            observations: 0,
            profile: pre.profile,
            outcome: SynthesisOutcome::NoCombiner {
                counterexample: None,
            },
        };
    }

    while rounds < config.max_rounds && !alive.is_empty() {
        rounds += 1;
        let before = alive.len();
        let seed_shape = InputShape::random(&mut rng, pre.line_hint);
        gradient_round(
            command,
            ctx,
            &pre,
            seed_shape,
            config,
            &mut rng,
            &mut alive,
            &mut observations,
            &mut counterexample,
            &env,
        );
        if alive.is_empty() {
            break;
        }
        if alive.len() == before {
            stalled += 1;
            if stalled >= config.stall_rounds {
                break;
            }
        } else {
            stalled = 0;
        }
    }

    // A verdict needs evidence: with no successful observations, every
    // candidate is vacuously "plausible" and none is certified.
    let outcome = if alive.is_empty() || observations.is_empty() {
        SynthesisOutcome::NoCombiner { counterexample }
    } else {
        SynthesisOutcome::Synthesized(SynthesizedCombiner::from_plausible(alive))
    };
    SynthesisReport {
        command: command.display(),
        space,
        elapsed: start.elapsed(),
        rounds,
        observations: observations.len(),
        profile: pre.profile,
        outcome,
    }
}

/// Algorithm 2: one gradient descent over shape mutations. All generated
/// observations filter the candidate set; the mutation that eliminated the
/// most candidates seeds the next step.
#[allow(clippy::too_many_arguments)]
fn gradient_round(
    command: &Command,
    ctx: &ExecContext,
    pre: &Preprocessed,
    mut shape: InputShape,
    config: &SynthesisConfig,
    rng: &mut SmallRng,
    alive: &mut Vec<Candidate>,
    observations: &mut Vec<Observation>,
    counterexample: &mut Option<(String, String)>,
    env: &CommandEnv<'_>,
) {
    for _step in 0..config.gradient_steps {
        let mut best: Option<(usize, InputShape)> = None;
        for mutation in Mutation::all() {
            let mutated = shape.mutate(mutation);
            // Generate this mutation's input set and collect observations.
            let mut batch: Vec<Observation> = Vec::new();
            for _ in 0..config.pairs_per_shape {
                let Some((x1, x2)) = stream_pair(&mutated, pre, rng) else {
                    continue;
                };
                if let Some(obs) = observe(command, ctx, &x1, &x2) {
                    if !observations.contains(&obs) && !batch.contains(&obs) {
                        if alive
                            .iter()
                            .any(|c| !plausible(c, std::slice::from_ref(&obs), env))
                        {
                            counterexample.get_or_insert((x1.clone(), x2.clone()));
                        }
                        batch.push(obs);
                    }
                }
            }
            // Score: how many live candidates does this batch eliminate?
            let eliminated = alive.iter().filter(|c| !plausible(c, &batch, env)).count();
            match best {
                Some((score, _)) if score >= eliminated => {}
                _ => best = Some((eliminated, mutated)),
            }
            // Every batch joins the cumulative observation set (the paper
            // adds all twelve I_j sets to I).
            observations.extend(batch);
        }
        // Filter against everything seen so far.
        alive.retain(|c| plausible(c, observations, env));
        if alive.is_empty() {
            return;
        }
        if config.use_gradient {
            if let Some((_, next)) = best {
                shape = next;
            }
        } else {
            // Ablation: ignore the gradient, take a uniformly random step.
            use rand::Rng;
            let all = Mutation::all();
            shape = shape.mutate(all[rng.gen_range(0..all.len())]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_coreutils::parse_command;
    use kq_dsl::ast::{Combiner, RecOp, RunOp, StructOp};
    use kq_stream::Delim;

    fn synth(cmd: &str) -> SynthesisReport {
        let command = parse_command(cmd).unwrap();
        let ctx = ExecContext::default();
        synthesize(&command, &ctx, &SynthesisConfig::default())
    }

    fn has(report: &SynthesisReport, op: &Combiner) -> bool {
        report.plausible().iter().any(|c| &c.op == op)
    }

    #[test]
    fn wc_l_synthesizes_back_newline_add() {
        let r = synth("wc -l");
        let want = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        assert!(
            has(&r, &want),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
        // concat must have been eliminated.
        assert!(!has(&r, &Combiner::Rec(RecOp::Concat)));
        // Space matches Table 10's wc -l row: newline-only outputs.
        assert_eq!(r.space.total(), 2700);
    }

    #[test]
    fn grep_c_synthesizes_count_adder() {
        let r = synth("grep -c a");
        let want = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        assert!(has(&r, &want));
    }

    #[test]
    fn tr_translate_synthesizes_concat() {
        let r = synth("tr A-Z a-z");
        let s = r.combiner().expect("combiner");
        assert!(
            s.is_concat(),
            "members: {:?}",
            s.members.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniq_synthesizes_stitch_selection() {
        let r = synth("uniq");
        let stitch_first = Combiner::Struct(StructOp::Stitch(RecOp::First));
        let stitch_second = Combiner::Struct(StructOp::Stitch(RecOp::Second));
        assert!(
            has(&r, &stitch_first) || has(&r, &stitch_second),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
        assert!(!has(&r, &Combiner::Rec(RecOp::Concat)));
    }

    #[test]
    fn uniq_c_synthesizes_stitch2_add() {
        let r = synth("uniq -c");
        let want = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
        let alt = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::Second));
        assert!(
            has(&r, &want) || has(&r, &alt),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sort_synthesizes_merge() {
        let r = synth("sort");
        assert!(has(&r, &Combiner::Run(RunOp::Merge(vec![]))));
        assert!(!has(&r, &Combiner::Rec(RecOp::Concat)));
    }

    #[test]
    fn sort_rn_merge_carries_flags() {
        let r = synth("sort -rn");
        assert!(has(
            &r,
            &Combiner::Run(RunOp::Merge(vec!["-rn".to_owned()]))
        ));
    }

    #[test]
    fn tr_squeeze_requires_rerun() {
        // The §2 example: only rerun survives for tr -cs.
        let r = synth(r"tr -cs A-Za-z '\n'");
        let s = r.combiner().expect("combiner");
        assert!(
            s.is_rerun(),
            "members: {:?}",
            s.members.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sed_1d_has_no_combiner() {
        let r = synth("sed 1d");
        assert!(
            r.combiner().is_none(),
            "plausible: {:?}",
            r.plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn tail_plus_2_has_no_combiner() {
        let r = synth("tail +2");
        assert!(r.combiner().is_none());
    }

    #[test]
    fn head_n_1_synthesizes_first() {
        let r = synth("head -n 1");
        assert!(has(&r, &Combiner::Rec(RecOp::First)));
    }

    #[test]
    fn tail_n_1_synthesizes_second() {
        let r = synth("tail -n 1");
        assert!(has(&r, &Combiner::Rec(RecOp::Second)));
    }

    #[test]
    fn sed_100q_synthesizes_rerun() {
        let r = synth("sed 100q");
        let s = r.combiner().expect("combiner");
        assert!(
            s.is_rerun(),
            "members: {:?}",
            s.members.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn missing_file_dependency_yields_no_combiner() {
        // A command whose file dependency does not exist yet (written by
        // an earlier pipeline statement) must not be certified: with zero
        // observations every candidate would be vacuously plausible.
        let command = parse_command("comm -23 - /not/written/yet").unwrap();
        let ctx = ExecContext::default();
        let r = synthesize(&command, &ctx, &SynthesisConfig::default());
        assert!(r.combiner().is_none());
        assert_eq!(r.observations, 0);
    }

    #[test]
    fn report_metadata_populated() {
        let r = synth("cat");
        assert!(r.rounds >= 1);
        assert!(r.observations > 0);
        assert!(r.elapsed.as_nanos() > 0);
        assert_eq!(r.command, "cat");
    }
}
