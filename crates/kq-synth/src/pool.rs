//! The synthesis worker pool.
//!
//! One pool serves both parallel axes of the synthesis engine:
//!
//! * **within one command** — candidate filtering fans partitions of the
//!   candidate set out over the pool
//!   ([`kq_dsl::filter_candidates_partitioned`]), and observation
//!   collection maps command executions over generated stream pairs
//!   ([`SynthPool::map`]);
//! * **across commands** — the planner synthesizes a script's distinct
//!   stdin-reading commands concurrently, one [`SynthPool::map`] item per
//!   command.
//!
//! Like the executors' pools, workers are *scoped threads spawned per
//! batch* (there is no long-lived pool object to keep alive across
//! borrows); work is handed out through an atomic cursor so an expensive
//! item (one slow command synthesis, one rerun-heavy candidate partition)
//! does not straggle a whole fixed partition. Results land in input order,
//! and every job is a pure function of its item — so the output is
//! byte-for-byte independent of worker count and scheduling, which is
//! what keeps synthesis deterministic under `--synth-workers`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A handle describing how wide synthesis work may fan out.
#[derive(Debug, Clone, Copy)]
pub struct SynthPool {
    workers: usize,
}

impl SynthPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> SynthPool {
        SynthPool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Work distribution is dynamic (atomic next-item cursor), so item
    /// costs may be arbitrarily skewed; because each `f(i, item)` is
    /// independent, the result vector is identical to the serial
    /// `items.iter().enumerate().map(..)` regardless of scheduling. A
    /// panic inside `f` propagates to the caller.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        let mut produced: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            produced.push((i, f(i, &items[i])));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("synthesis worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every item produced a result"))
            .collect()
    }

    /// Candidate filtering on the pool: one `bool` per candidate, equal to
    /// the serial filter (see [`kq_dsl::filter`]).
    pub fn filter(
        &self,
        candidates: &[kq_dsl::Candidate],
        observations: &[kq_dsl::Observation],
        env: &dyn kq_dsl::RunEnv,
    ) -> Vec<bool> {
        kq_dsl::filter_candidates_partitioned(candidates, observations, env, self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 4, 9] {
            let pool = SynthPool::new(workers);
            let out = pool.map(&items, |i, v| {
                assert_eq!(i, *v);
                v * 3
            });
            assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_degenerate_sizes() {
        let pool = SynthPool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map(&empty, |_, v| *v).is_empty());
        assert_eq!(pool.map(&[7u8], |_, v| *v), vec![7]);
        assert_eq!(SynthPool::new(0).workers(), 1);
    }

    #[test]
    fn skewed_item_costs_still_slot_correctly() {
        let items: Vec<u64> = (0..32).collect();
        let pool = SynthPool::new(4);
        let out = pool.map(&items, |_, v| {
            if v % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            v + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }
}
