//! Shape-conforming input stream generation (`GetInputStreamPairs`).
//!
//! A generated *pair* `⟨x1, x2⟩` satisfies a shape `s` when the combined
//! stream `x1 ++ x2` does (Definition 3.12), so generation builds one
//! combined stream from the shape and splits it at a random line boundary.
//! The word pool is seeded from the command's dictionary (regex samples,
//! file names, numeric literals) so the command exercises its matching
//! paths, and the element pools honour each dimension's distinctness
//! percentage.

use crate::preprocess::{InputProfile, Preprocessed};
use crate::shape::InputShape;
use rand::Rng;

/// The alphabet for synthetic word characters: letters plus digits, so
/// numeric comparisons (`awk "$1 >= 1000"`, `sort -n`) see both kinds.
const WORD_ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'l', 'm', 'n', 'o', 'r', 's', 't', 'u', 'w', 'A',
    'B', 'T', '0', '1', '2', '3', '5', '7', '9',
];

/// Generates one stream pair conforming to `shape`, honouring the
/// preprocessing profile (sorted-only inputs, file-name dictionaries).
/// Returns `None` when the shape cannot produce a splittable stream.
pub fn stream_pair<R: Rng + ?Sized>(
    shape: &InputShape,
    pre: &Preprocessed,
    rng: &mut R,
) -> Option<(String, String)> {
    let n_lines = shape.lines.sample_count(rng).max(2);
    let mut lines = generate_lines(shape, pre, n_lines, rng);
    if matches!(pre.profile, InputProfile::Sorted) {
        lines.sort_by(|a, b| a.as_bytes().cmp(b.as_bytes()));
    }
    // Encourage boundary duplicates occasionally: the `uniq`
    // counterexample needs x1 to end with the line x2 starts with.
    let cut = 1 + rng.gen_range(0..n_lines - 1);
    if !matches!(pre.profile, InputProfile::Sorted) && rng.gen_bool(0.3) && cut < lines.len() {
        lines[cut] = lines[cut - 1].clone();
    }
    let mut x1 = String::new();
    let mut x2 = String::new();
    for (i, l) in lines.iter().enumerate() {
        let target = if i < cut { &mut x1 } else { &mut x2 };
        target.push_str(l);
        target.push('\n');
    }
    if x1.is_empty() || x2.is_empty() {
        return None;
    }
    Some((x1, x2))
}

fn generate_lines<R: Rng + ?Sized>(
    shape: &InputShape,
    pre: &Preprocessed,
    n_lines: usize,
    rng: &mut R,
) -> Vec<String> {
    // Word pool, sized by the words dimension's distinctness.
    let max_words_per_line = shape.words.max.max(1);
    let word_pool_size = shape.words.pool_size(max_words_per_line * 4).max(2);
    let mut word_pool: Vec<String> = Vec::with_capacity(word_pool_size);
    for _ in 0..word_pool_size {
        word_pool.push(sample_word(shape, pre, rng));
    }
    // Line pool, sized by the lines dimension's distinctness.
    let line_pool_size = shape.lines.pool_size(n_lines);
    let mut line_pool: Vec<String> = Vec::with_capacity(line_pool_size);
    for _ in 0..line_pool_size {
        line_pool.push(sample_line(shape, pre, &word_pool, rng));
    }
    (0..n_lines)
        .map(|_| line_pool[rng.gen_range(0..line_pool.len())].clone())
        .collect()
}

fn sample_line<R: Rng + ?Sized>(
    shape: &InputShape,
    pre: &Preprocessed,
    word_pool: &[String],
    rng: &mut R,
) -> String {
    if matches!(pre.profile, InputProfile::FileNames) {
        // File-name streams are one path per line.
        return pre.dictionary[rng.gen_range(0..pre.dictionary.len())].clone();
    }
    let n_words = shape.words.sample_count(rng);
    let mut line = String::new();
    for w in 0..n_words {
        if w > 0 {
            line.push(' ');
        }
        line.push_str(&word_pool[rng.gen_range(0..word_pool.len())]);
    }
    line
}

fn sample_word<R: Rng + ?Sized>(shape: &InputShape, pre: &Preprocessed, rng: &mut R) -> String {
    // Bias toward dictionary entries (regex samples, numeric literals) so
    // matching code paths are exercised; mix in random words so mismatch
    // paths are too.
    if !pre.dictionary.is_empty() && rng.gen_bool(0.5) {
        return pre.dictionary[rng.gen_range(0..pre.dictionary.len())].clone();
    }
    let n_chars = shape.chars.sample_count(rng).max(1);
    let pool_size = shape.chars.pool_size(n_chars).min(WORD_ALPHABET.len());
    let offset = rng.gen_range(0..WORD_ALPHABET.len());
    let mut word = String::with_capacity(n_chars);
    for _ in 0..n_chars {
        let idx = (offset + rng.gen_range(0..pool_size)) % WORD_ALPHABET.len();
        word.push(WORD_ALPHABET[idx]);
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::Preprocessed;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn plain() -> Preprocessed {
        Preprocessed::plain_for_tests()
    }

    #[test]
    fn pair_components_are_streams() {
        let mut rng = SmallRng::seed_from_u64(7);
        let shape = InputShape::seed();
        for _ in 0..50 {
            let (x1, x2) = stream_pair(&shape, &plain(), &mut rng).unwrap();
            assert!(x1.ends_with('\n'));
            assert!(x2.ends_with('\n'));
        }
    }

    #[test]
    fn combined_stream_respects_line_bounds() {
        let mut rng = SmallRng::seed_from_u64(8);
        let shape = InputShape::seed();
        for _ in 0..50 {
            let (x1, x2) = stream_pair(&shape, &plain(), &mut rng).unwrap();
            let combined = format!("{x1}{x2}");
            let n = kq_stream::line_count(&combined);
            assert!(
                n >= shape.lines.min && n <= shape.lines.max,
                "line count {n} outside [{}, {}]",
                shape.lines.min,
                shape.lines.max
            );
        }
    }

    #[test]
    fn low_distinctness_produces_duplicates() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut shape = InputShape::seed();
        shape.lines.min = 12;
        shape.lines.max = 16;
        shape.lines.distinct_pct = 10;
        let (x1, x2) = stream_pair(&shape, &plain(), &mut rng).unwrap();
        let combined = format!("{x1}{x2}");
        let lines: Vec<&str> = kq_stream::lines_of(&combined).collect();
        let distinct: std::collections::HashSet<_> = lines.iter().collect();
        assert!(distinct.len() < lines.len());
    }

    #[test]
    fn sorted_profile_yields_sorted_streams() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut pre = plain();
        pre.profile = InputProfile::Sorted;
        let shape = InputShape::seed();
        for _ in 0..20 {
            let (x1, x2) = stream_pair(&shape, &pre, &mut rng).unwrap();
            let combined = format!("{x1}{x2}");
            let lines: Vec<&str> = kq_stream::lines_of(&combined).collect();
            for w in lines.windows(2) {
                assert!(w[0].as_bytes() <= w[1].as_bytes(), "unsorted: {lines:?}");
            }
        }
    }

    #[test]
    fn filename_profile_draws_from_dictionary() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut pre = plain();
        pre.profile = InputProfile::FileNames;
        pre.dictionary = vec!["/v/a.txt".to_owned(), "/v/b.txt".to_owned()];
        let shape = InputShape::seed();
        let (x1, x2) = stream_pair(&shape, &pre, &mut rng).unwrap();
        for line in kq_stream::lines_of(&format!("{x1}{x2}")) {
            assert!(pre.dictionary.iter().any(|d| d == line), "line {line:?}");
        }
    }

    #[test]
    fn dictionary_words_appear_in_output() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut pre = plain();
        pre.dictionary = vec!["lightXlight".to_owned()];
        let mut shape = InputShape::seed();
        shape.words.min = 1;
        shape.lines.min = 20;
        shape.lines.max = 30;
        let (x1, x2) = stream_pair(&shape, &pre, &mut rng).unwrap();
        let combined = format!("{x1}{x2}");
        assert!(combined.contains("lightXlight"));
    }
}
