//! KumQuat combiner synthesis.
//!
//! Given a black-box command `f`, the synthesizer (paper Algorithm 1):
//!
//! 1. preprocesses the command line — extracting regex/number literals and
//!    probing `f` with three canonical inputs to pick an input profile
//!    ([`preprocess`]);
//! 2. enumerates the candidate combiner space `G_n` for the command's
//!    delimiter alphabet (`kq_dsl::enumerate`);
//! 3. repeatedly generates input stream pairs from gradient-mutated *input
//!    shapes* ([`shape`], [`gen`]; paper Algorithm 2), runs `f` to obtain
//!    observations `⟨f(x1), f(x2), f(x1++x2)⟩`, and discards candidates
//!    that are not plausible (Definition 3.9);
//! 4. stops when no progress is made for several rounds, returning either
//!    a composite combiner over the surviving set ([`composite`]) or `None`
//!    when every candidate was eliminated (Table 9's unsupported commands).
//!
//! ```
//! use kq_coreutils::{parse_command, ExecContext};
//! use kq_synth::{synthesize, SynthesisConfig};
//!
//! let command = parse_command("wc -l").unwrap();
//! let report = synthesize(&command, &ExecContext::default(), &SynthesisConfig::default());
//! let combiner = report.combiner().expect("wc -l is divide-and-conquer");
//! assert_eq!(combiner.primary().to_string(), "((back '\\n' add) a b)");
//! ```

#![warn(missing_docs)]

pub mod composite;
pub mod gen;
pub mod preprocess;
pub mod shape;
pub mod synthesize;

pub use composite::{IncrementalCombine, SynthesizedCombiner};
pub use preprocess::{preprocess, InputProfile, Preprocessed};
pub use shape::{Config, InputShape, Mutation};
pub use synthesize::{synthesize, SynthesisConfig, SynthesisOutcome, SynthesisReport};
