//! KumQuat combiner synthesis.
//!
//! Given a black-box command `f`, the synthesizer (paper Algorithm 1):
//!
//! 1. preprocesses the command line — extracting regex/number literals and
//!    probing `f` with three canonical inputs to pick an input profile
//!    ([`preprocess`]);
//! 2. enumerates the candidate combiner space `G_n` for the command's
//!    delimiter alphabet (`kq_dsl::enumerate`);
//! 3. repeatedly generates input stream pairs from gradient-mutated *input
//!    shapes* ([`shape`], [`gen`]; paper Algorithm 2), runs `f` to obtain
//!    observations `⟨f(x1), f(x2), f(x1++x2)⟩`, and discards candidates
//!    that are not plausible (Definition 3.9);
//! 4. stops when no progress is made for several rounds, returning either
//!    a composite combiner over the surviving set ([`composite`]) or `None`
//!    when every candidate was eliminated (Table 9's unsupported commands).
//!
//! # The parallel synthesis engine
//!
//! Synthesis is staged so its two expensive sides fan out over a
//! [`SynthPool`] ([`pool`]): *observation generation* (command executions
//! on generated stream pairs) and *candidate elimination* (plausibility
//! checks over the candidate set) each run as independent jobs, while the
//! RNG-driven input generation and the order-sensitive dedup stay serial.
//! Every parallel phase is a pure map whose results slot back in input
//! order, so a report is **byte-identical for every worker count** — the
//! pool buys wall clock, never different answers (`SynthesisConfig::workers`;
//! pinned corpus-wide by `tests/synth_engine.rs`). The same pool fans a
//! script's *distinct* commands out during planning
//! (`kq_pipeline::plan::Planner`).
//!
//! # Caching and validation
//!
//! Synthesis results are cacheable: the planner keys them by a normalized
//! command signature and can persist them across processes
//! (`kq_pipeline::cache::CombinerCache`). A cache hit loaded from disk is
//! **validated before it is trusted**: [`spot_check`] regenerates, from
//! the configured RNG seed, the first observation synthesis itself would
//! produce for the command and replays every cached candidate against it.
//! Genuine entries always pass (they survived that very observation when
//! they were synthesized); colliding or stale entries are rejected and the
//! command is re-synthesized. Negative entries ("no combiner") skip
//! validation — there is nothing to replay — and can only cost
//! parallelism, never correctness, because the planner treats them as
//! sequential stages.
//!
//! ```
//! use kq_coreutils::{parse_command, ExecContext};
//! use kq_synth::{synthesize, SynthesisConfig};
//!
//! let command = parse_command("wc -l").unwrap();
//! let report = synthesize(&command, &ExecContext::default(), &SynthesisConfig::default());
//! let combiner = report.combiner().expect("wc -l is divide-and-conquer");
//! assert_eq!(combiner.primary().to_string(), "((back '\\n' add) a b)");
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
pub mod gen;
pub mod pool;
pub mod preprocess;
pub mod shape;
pub mod synthesize;

pub use composite::{IncrementalCombine, SynthesizedCombiner};
pub use pool::SynthPool;
pub use preprocess::{prefix_bound, preprocess, InputProfile, Preprocessed};
pub use shape::{Config, InputShape, Mutation};
pub use synthesize::{spot_check, synthesize, SynthesisConfig, SynthesisOutcome, SynthesisReport};
