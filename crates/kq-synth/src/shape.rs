//! Input shapes (paper Definition 3.11) and their twelve mutations.
//!
//! A shape bounds three dimensions of a generated input stream — lines per
//! stream, words per line, characters per word — each with a minimum count,
//! a maximum count, and a *distinct percentage* controlling how much the
//! units repeat. Low distinctness produces the duplicate boundary lines
//! that defeat `concat` for `uniq`; small word/character counts produce the
//! empty-line boundaries that defeat `concat` for `tr -cs`.

use rand::Rng;

/// Per-dimension configuration `⟨l, u, d⟩` (Definition 3.11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Minimum element count.
    pub min: usize,
    /// Maximum element count (inclusive).
    pub max: usize,
    /// Percentage of distinct elements, 1..=100.
    pub distinct_pct: u8,
}

impl Config {
    /// Clamps the configuration into a sane range after mutations.
    fn normalized(mut self) -> Config {
        if self.max < self.min {
            self.max = self.min;
        }
        self.distinct_pct = self.distinct_pct.clamp(1, 100);
        self
    }

    /// Samples an element count within the bounds.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.gen_range(self.min..=self.max)
    }

    /// Pool size for `n` elements at this distinctness.
    pub fn pool_size(&self, n: usize) -> usize {
        ((n * self.distinct_pct as usize).div_ceil(100)).max(1)
    }
}

/// An input shape `s = ⟨s_L, s_W, s_C⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputShape {
    /// Lines per (combined) input stream.
    pub lines: Config,
    /// Words per line. A minimum of zero permits empty lines.
    pub words: Config,
    /// Characters per word.
    pub chars: Config,
}

impl InputShape {
    /// The seed shape the search starts from: short streams of short
    /// lines with moderate repetition.
    pub fn seed() -> InputShape {
        InputShape {
            lines: Config {
                min: 2,
                max: 8,
                distinct_pct: 50,
            },
            words: Config {
                min: 0,
                max: 3,
                distinct_pct: 60,
            },
            chars: Config {
                min: 1,
                max: 4,
                distinct_pct: 60,
            },
        }
    }

    /// `RandomShape()` from Algorithm 1: a randomized perturbation of the
    /// seed, optionally biased toward a line-count hint extracted by
    /// preprocessing (e.g. `sed 100q` → streams of about a hundred lines).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, line_hint: Option<usize>) -> InputShape {
        let mut s = InputShape::seed();
        s.lines.max = rng.gen_range(3..=16);
        s.lines.min = rng.gen_range(2..=s.lines.max.min(4));
        s.lines.distinct_pct = rng.gen_range(20..=100);
        s.words.max = rng.gen_range(1..=5);
        s.words.distinct_pct = rng.gen_range(20..=100);
        s.chars.max = rng.gen_range(1..=6);
        s.chars.distinct_pct = rng.gen_range(20..=100);
        if let Some(hint) = line_hint {
            // Straddle the literal so both branches of the command run.
            s.lines.min = (hint / 2).max(2);
            s.lines.max = (hint * 2).max(s.lines.min + 2);
        }
        s.normalized()
    }

    fn normalized(mut self) -> InputShape {
        self.lines = self.lines.normalized();
        if self.lines.min < 2 {
            // Streams must be splittable into two non-empty halves.
            self.lines.min = 2;
            self.lines.max = self.lines.max.max(2);
        }
        self.words = self.words.normalized();
        self.chars = self.chars.normalized();
        if self.chars.min == 0 {
            self.chars.min = 1;
        }
        self
    }

    /// Applies one of the twelve mutations (Algorithm 2's `MutateShape`).
    pub fn mutate(&self, m: Mutation) -> InputShape {
        let mut s = *self;
        let dim = match m.dimension {
            Dimension::Lines => &mut s.lines,
            Dimension::Words => &mut s.words,
            Dimension::Chars => &mut s.chars,
        };
        match m.direction {
            Direction::MoreElements => {
                dim.max = (dim.max * 2).clamp(1, 512);
            }
            Direction::FewerElements => {
                dim.max =
                    (dim.max / 2)
                        .max(dim.min)
                        .max(if matches!(m.dimension, Dimension::Words) {
                            0
                        } else {
                            1
                        });
                dim.min = dim.min.min(dim.max);
            }
            Direction::MoreVaried => {
                dim.distinct_pct = dim.distinct_pct.saturating_add(25).min(100);
            }
            Direction::LessVaried => {
                dim.distinct_pct = dim.distinct_pct.saturating_sub(25).max(1);
            }
        }
        s.normalized()
    }
}

/// The three shape dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// Lines per input stream.
    Lines,
    /// Words per line.
    Words,
    /// Characters per word.
    Chars,
}

/// The four mutation directions (paper §3.2: "three dimensions … and four
/// directions (more/fewer elements, more/less varied)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Raise the element-count bounds.
    MoreElements,
    /// Lower the element-count bounds.
    FewerElements,
    /// Raise the distinct-element percentage.
    MoreVaried,
    /// Lower the distinct-element percentage.
    LessVaried,
}

/// One of the twelve shape mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mutation {
    /// Which shape dimension to mutate.
    pub dimension: Dimension,
    /// Which way to push it.
    pub direction: Direction,
}

impl Mutation {
    /// All twelve mutations, indexed `j = 0..12` as in Algorithm 2.
    pub fn all() -> [Mutation; 12] {
        let mut out = [Mutation {
            dimension: Dimension::Lines,
            direction: Direction::MoreElements,
        }; 12];
        let dims = [Dimension::Lines, Dimension::Words, Dimension::Chars];
        let dirs = [
            Direction::MoreElements,
            Direction::FewerElements,
            Direction::MoreVaried,
            Direction::LessVaried,
        ];
        let mut i = 0;
        for &dimension in &dims {
            for &direction in &dirs {
                out[i] = Mutation {
                    dimension,
                    direction,
                };
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn twelve_distinct_mutations() {
        let all = Mutation::all();
        assert_eq!(all.len(), 12);
        let set: std::collections::HashSet<_> = all
            .iter()
            .map(|m| (m.dimension as u8 as usize, m.direction as u8 as usize))
            .collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn mutations_move_the_intended_knob() {
        let s = InputShape::seed();
        let grown = s.mutate(Mutation {
            dimension: Dimension::Lines,
            direction: Direction::MoreElements,
        });
        assert!(grown.lines.max > s.lines.max);
        assert_eq!(grown.words, s.words);

        let less_varied = s.mutate(Mutation {
            dimension: Dimension::Chars,
            direction: Direction::LessVaried,
        });
        assert!(less_varied.chars.distinct_pct < s.chars.distinct_pct);
    }

    #[test]
    fn mutation_keeps_shapes_sane() {
        let mut s = InputShape::seed();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let all = Mutation::all();
            let m = all[rng.gen_range(0..all.len())];
            s = s.mutate(m);
            assert!(s.lines.min >= 2);
            assert!(s.lines.max >= s.lines.min);
            assert!(s.words.max >= s.words.min);
            assert!(s.chars.min >= 1);
            assert!((1..=100).contains(&s.lines.distinct_pct));
        }
    }

    #[test]
    fn random_shape_respects_line_hint() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = InputShape::random(&mut rng, Some(100));
        assert!(s.lines.min <= 100 && s.lines.max >= 100);
    }

    #[test]
    fn pool_size_tracks_distinctness() {
        let c = Config {
            min: 1,
            max: 10,
            distinct_pct: 50,
        };
        assert_eq!(c.pool_size(10), 5);
        assert_eq!(c.pool_size(1), 1);
        let all_distinct = Config {
            min: 1,
            max: 10,
            distinct_pct: 100,
        };
        assert_eq!(all_distinct.pool_size(7), 7);
    }
}
