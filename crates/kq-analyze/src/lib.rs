//! # kq-analyze — static analysis over KumQuat scripts and dataflow graphs
//!
//! KumQuat's core loop is *dynamic*: it observes a command on generated
//! inputs and synthesizes its combiner from behavior alone (the paper's
//! Figure 2). This crate is the static complement — the analysis that can
//! run without executing anything, in three layers:
//!
//! 1. **Effect lattice** ([`kq_pipeline::lattice`], re-exported here):
//!    per-command effect classes derived from the normalized command
//!    signature. `stateless` classifications short-circuit dynamic
//!    synthesis in the planner; the analyzer surfaces all classes as
//!    `KQ301`/`KQ302` infos.
//! 2. **Graph verification** ([`graph`]): each statement compiles to the
//!    same [`kq_pipeline::dataflow::DataflowGraph`] IR the work-stealing
//!    scheduler executes, and the graph's structural invariants,
//!    queue-credit coverage, and fusion legality are checked
//!    (`KQ201`–`KQ203`).
//! 3. **Hazard lints** ([`hazards`]): use-before-def, dead writes, and
//!    read/write aliasing over the exact access relation the scheduler's
//!    dependency pass uses (`KQ101`–`KQ103`).
//!
//! The entry point is [`check_script`]; `kumquat check <script>` is its
//! CLI face. Findings carry stable codes, severities, and source spans
//! (see [`diag`] for the code table) and render as human text
//! ([`Analysis::render_human`]) or JSON ([`Analysis::to_json`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod graph;
pub mod hazards;

pub use diag::{Diagnostic, Severity};
pub use kq_pipeline::lattice::{classify, effects, EffectClass, EffectSet};

use kq_pipeline::lattice;
use kq_pipeline::parse::parse_script;
use kq_pipeline::{Script, SourceSpan};
use std::collections::HashMap;

/// One stage's static classification, for reporting.
#[derive(Debug, Clone)]
pub struct StageClass {
    /// Statement index (0-based).
    pub statement: usize,
    /// Stage index within the statement (0-based).
    pub stage: usize,
    /// The command's display form.
    pub command: String,
    /// The effect class.
    pub class: EffectClass,
}

/// The result of analyzing one script.
#[derive(Debug)]
pub struct Analysis {
    /// Every finding, in source order (parse errors first, then lattice
    /// infos, hazards, and graph findings per statement).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of statements the script parsed into (0 on parse error).
    pub statements: usize,
    /// Total stage count.
    pub stages: usize,
    /// Per-stage effect classes, flattened.
    pub classes: Vec<StageClass>,
}

impl Analysis {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Stages whose class is [`EffectClass::Stateless`] — the ones whose
    /// combiner the planner materializes without dynamic synthesis.
    pub fn short_circuitable(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.class == EffectClass::Stateless)
            .count()
    }

    /// Whether the check passes: no errors, and no warnings either when
    /// `deny_warnings` is set.
    pub fn passes(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Renders the analysis as human-readable text: one line per finding
    /// plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "check: {} statement(s), {} stage(s), {} statically classified \
             ({} short-circuit synthesis), {} error(s), {} warning(s)\n",
            self.statements,
            self.stages,
            self.classes
                .iter()
                .filter(|c| c.class != EffectClass::Unknown)
                .count(),
            self.short_circuitable(),
            self.errors(),
            self.warnings(),
        ));
        out
    }

    /// Renders the analysis as a JSON document (stable field names; no
    /// external serializer — the build is offline).
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(diag::diagnostic_json).collect();
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"statement\":{},\"stage\":{},\"command\":\"{}\",\"class\":\"{}\"}}",
                    c.statement,
                    c.stage,
                    diag::json_escape(&c.command),
                    c.class.as_str()
                )
            })
            .collect();
        format!(
            "{{\"summary\":{{\"statements\":{},\"stages\":{},\"short_circuitable\":{},\
             \"errors\":{},\"warnings\":{}}},\"classes\":[{}],\"diagnostics\":[{}]}}",
            self.statements,
            self.stages,
            self.short_circuitable(),
            self.errors(),
            self.warnings(),
            classes.join(","),
            diags.join(",")
        )
    }
}

/// Analyzes a script text against shell variables: parse, classify every
/// stage on the effect lattice, lint for VFS hazards, and verify each
/// statement's dataflow graph. Never executes a command.
pub fn check_script(script_text: &str, env: &HashMap<String, String>) -> Analysis {
    let script = match parse_script(script_text, env) {
        Ok(script) => script,
        Err(e) => {
            let span = SourceSpan {
                line: e.line,
                col: e.col,
                offset: e.offset,
                len: 1,
            };
            return Analysis {
                diagnostics: vec![Diagnostic::new(
                    "KQ001",
                    Severity::Error,
                    format!("parse error: {}", e.message),
                )
                .at_statement(e.statement, span)],
                statements: 0,
                stages: 0,
                classes: Vec::new(),
            };
        }
    };
    check_parsed(&script)
}

/// [`check_script`] for an already-parsed script.
pub fn check_parsed(script: &Script) -> Analysis {
    let mut diagnostics = Vec::new();
    let mut classes = Vec::new();
    let mut class_table: Vec<Vec<EffectClass>> = Vec::new();

    for (si, statement) in script.statements.iter().enumerate() {
        let mut row = Vec::new();
        for (gi, stage) in statement.stages.iter().enumerate() {
            let class = lattice::classify(&stage.command);
            row.push(class);
            classes.push(StageClass {
                statement: si,
                stage: gi,
                command: stage.command.display(),
                class,
            });
            match class {
                EffectClass::Unknown => {}
                EffectClass::Stateless => diagnostics.push(
                    Diagnostic::new(
                        "KQ301",
                        Severity::Info,
                        format!(
                            "`{}` is statically stateless: its concat combiner \
                             needs no dynamic synthesis",
                            stage.command.display()
                        ),
                    )
                    .at_stage(si, gi, stage.span),
                ),
                class => diagnostics.push(
                    Diagnostic::new(
                        "KQ302",
                        Severity::Info,
                        format!(
                            "`{}` classifies as {} on the effect lattice \
                             (advisory; synthesis still provides the combiner)",
                            stage.command.display(),
                            class.as_str()
                        ),
                    )
                    .at_stage(si, gi, stage.span),
                ),
            }
        }
        class_table.push(row);
    }

    diagnostics.extend(hazards::vfs_hazards(script));
    diagnostics.extend(graph::verify_graphs(script, &class_table));

    Analysis {
        diagnostics,
        statements: script.statements.len(),
        stages: script.statements.iter().map(|s| s.stages.len()).sum(),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &str) -> Analysis {
        check_script(text, &HashMap::new())
    }

    #[test]
    fn clean_pipeline_passes_with_lattice_infos_only() {
        let a = check("cat /in.txt | grep fox | tr A-Z a-z | sort | uniq -c\n");
        assert!(a.passes(true), "unexpected findings: {:?}", a.diagnostics);
        assert_eq!(a.statements, 1);
        assert_eq!(a.stages, 4);
        assert_eq!(a.short_circuitable(), 2); // grep, tr
        let infos: Vec<&str> = a.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(infos, vec!["KQ301", "KQ301", "KQ302", "KQ302"]);
    }

    #[test]
    fn parse_errors_surface_as_kq001_with_position() {
        let a = check("cat /in.txt | sort >\n");
        assert!(!a.passes(false));
        assert_eq!(a.diagnostics.len(), 1);
        let d = &a.diagnostics[0];
        assert_eq!((d.code, d.severity), ("KQ001", Severity::Error));
        assert!(d.message.contains("missing redirection target"));
        assert_eq!(d.span.unwrap().line, 1);
    }

    #[test]
    fn hazards_fail_only_under_deny_warnings() {
        let a = check("cat /t.txt | grep a | sort > /t.txt\n");
        assert_eq!(a.warnings(), 1);
        assert!(a.passes(false));
        assert!(!a.passes(true));
    }

    #[test]
    fn json_output_round_trips_the_counts() {
        let a = check("cat /in.txt | grep fox | wc -l\n");
        let json = a.to_json();
        assert!(json.starts_with("{\"summary\":{\"statements\":1,\"stages\":2,"));
        assert!(json.contains("\"class\":\"stateless\""));
        assert!(json.contains("\"class\":\"commutative-fold\""));
    }
}
