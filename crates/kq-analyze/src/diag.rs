//! Diagnostics: lint codes, severities, source locations, and the two
//! rendering formats (human text and JSON).
//!
//! # Lint codes
//!
//! Codes are stable — tests, CI jobs, and editor integrations key on
//! them — and grouped by analysis layer:
//!
//! | code | severity | meaning |
//! |---|---|---|
//! | `KQ001` | error | the script does not parse |
//! | `KQ101` | warning | use-before-def: a statement reads a path the script only writes *later* |
//! | `KQ102` | warning | dead write: a redirection target is overwritten before anything reads it |
//! | `KQ103` | warning | self-alias: a statement reads its own redirection target |
//! | `KQ201` | error | a statement's dataflow graph violates a structural invariant |
//! | `KQ202` | error | bounded-queue credit cannot cover the graph (deadlock) |
//! | `KQ203` | error | illegal fusion: a fused run spans a stage that is not chunk-local |
//! | `KQ301` | info | a stage is statically `stateless`; dynamic synthesis is short-circuited |
//! | `KQ302` | info | a stage's effect class is known statically (advisory; synthesis still runs) |

use kq_pipeline::SourceSpan;
use std::fmt;

/// How serious a finding is. Ordering: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: static facts worth surfacing (effect classes).
    Info,
    /// A hazard that executes today but is fragile or wasteful; fails the
    /// check under `--deny-warnings`.
    Warning,
    /// The script cannot be analyzed or would misbehave; always fails.
    Error,
}

impl Severity {
    /// Lowercase name (`"info"`, `"warning"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: a stable code, a severity, a message, and where.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable lint code (`"KQ101"`).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Statement index (0-based) the finding anchors to, if any.
    pub statement: Option<usize>,
    /// Stage index within the statement, if the finding is stage-level.
    pub stage: Option<usize>,
    /// Source position in the original script text, if known.
    pub span: Option<SourceSpan>,
}

impl Diagnostic {
    /// Builds a diagnostic with no location; chain the `at_*` builders.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            statement: None,
            stage: None,
            span: None,
        }
    }

    /// Anchors the diagnostic to a statement and its source span.
    pub fn at_statement(mut self, statement: usize, span: SourceSpan) -> Diagnostic {
        self.statement = Some(statement);
        self.span = Some(span);
        self
    }

    /// Anchors the diagnostic to a stage within a statement.
    pub fn at_stage(mut self, statement: usize, stage: usize, span: SourceSpan) -> Diagnostic {
        self.statement = Some(statement);
        self.stage = Some(stage);
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `warning[KQ102] statement 1, line 1, col 1: write to /tmp/x ...`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.as_str(), self.code)?;
        if let Some(si) = self.statement {
            write!(f, " statement {}", si + 1)?;
            if let Some(gi) = self.stage {
                write!(f, " stage {}", gi + 1)?;
            }
            if let Some(span) = self.span {
                write!(f, ", line {}, col {}", span.line, span.col)?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one diagnostic as a JSON object.
pub(crate) fn diagnostic_json(d: &Diagnostic) -> String {
    let mut fields = vec![
        format!("\"code\":\"{}\"", d.code),
        format!("\"severity\":\"{}\"", d.severity.as_str()),
        format!("\"message\":\"{}\"", json_escape(&d.message)),
    ];
    if let Some(si) = d.statement {
        fields.push(format!("\"statement\":{si}"));
    }
    if let Some(gi) = d.stage {
        fields.push(format!("\"stage\":{gi}"));
    }
    if let Some(span) = d.span {
        fields.push(format!(
            "\"span\":{{\"line\":{},\"col\":{},\"offset\":{},\"len\":{}}}",
            span.line, span.col, span.offset, span.len
        ));
    }
    format!("{{{}}}", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_location_and_message() {
        let span = SourceSpan {
            line: 2,
            col: 5,
            offset: 20,
            len: 9,
        };
        let d = Diagnostic::new("KQ102", Severity::Warning, "dead write").at_statement(1, span);
        assert_eq!(
            d.to_string(),
            "warning[KQ102] statement 2, line 2, col 5: dead write"
        );
    }

    #[test]
    fn json_escapes_control_characters_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn diagnostic_json_serializes_optional_fields() {
        let d = Diagnostic::new("KQ001", Severity::Error, "nope");
        assert_eq!(
            diagnostic_json(&d),
            "{\"code\":\"KQ001\",\"severity\":\"error\",\"message\":\"nope\"}"
        );
    }
}
