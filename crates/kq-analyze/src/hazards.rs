//! VFS hazard lints over a parsed script.
//!
//! These lints reuse the *exact* access model the dataflow scheduler's
//! dependency pass ([`kq_pipeline::scheduler::statement_deps`]) runs
//! under — reads are the statement's input files plus every argv word
//! after the program name (any word could name a file: `comm - dict`),
//! `xargs` reads unboundedly, and the only write is the statement's `>`
//! redirection target. Working on the same relation means a hazard the
//! lints flag is a hazard the scheduler actually orders around (or, for
//! `KQ101`, cannot order around).
//!
//! To keep the conservative read set from spraying false positives
//! (`grep fox` does not read a file named `fox`), the lints only consider
//! paths the script itself writes: a token is treated as a path exactly
//! when some statement's redirection targets it.

use crate::diag::{Diagnostic, Severity};
use kq_pipeline::{InputSource, Script};

/// One statement's accesses under the scheduler's model.
struct Access {
    reads: Vec<String>,
    reads_everything: bool,
    write: Option<String>,
}

fn access_model(script: &Script) -> Vec<Access> {
    script
        .statements
        .iter()
        .map(|st| {
            let mut reads: Vec<String> = match &st.input {
                InputSource::Files(files) => files.clone(),
                InputSource::None => Vec::new(),
            };
            let mut reads_everything = false;
            for stage in &st.stages {
                if stage.command.program() == "xargs" {
                    reads_everything = true;
                }
                reads.extend(stage.command.argv().iter().skip(1).cloned());
            }
            Access {
                reads,
                reads_everything,
                write: st.output.clone(),
            }
        })
        .collect()
}

/// Runs the three VFS hazard lints (`KQ101`, `KQ102`, `KQ103`).
pub fn vfs_hazards(script: &Script) -> Vec<Diagnostic> {
    let access = access_model(script);
    let mut out = Vec::new();

    let reads_path = |j: usize, path: &str| access[j].reads.iter().any(|r| r == path);

    for (j, st) in script.statements.iter().enumerate() {
        // KQ103 — self-alias: the statement reads the very path its `>`
        // redirection writes. The VFS gathers input before storing output,
        // so this runs, but it silently depends on that buffering order
        // and breaks under any emitter that streams to the target.
        if let Some(w) = &access[j].write {
            if reads_path(j, w) {
                out.push(
                    Diagnostic::new(
                        "KQ103",
                        Severity::Warning,
                        format!(
                            "statement reads its own redirection target {w}; \
                             the result depends on input being gathered before \
                             the write"
                        ),
                    )
                    .at_statement(j, st.span),
                );
            }
        }

        // KQ101 — use-before-def: the statement reads a path that only
        // *later* statements write. Statements execute in dependency
        // order, never backwards, so the read sees stale (or missing)
        // data no schedule can fix.
        for r in &access[j].reads {
            let written_earlier = (0..j).any(|i| access[i].write.as_deref() == Some(r));
            let written_later =
                (j + 1..access.len()).any(|i| access[i].write.as_deref() == Some(r.as_str()));
            let own_write = access[j].write.as_deref() == Some(r.as_str());
            if written_later && !written_earlier && !own_write {
                out.push(
                    Diagnostic::new(
                        "KQ101",
                        Severity::Warning,
                        format!(
                            "{r} is read here but only written by a later \
                             statement; the read sees stale or missing data"
                        ),
                    )
                    .at_statement(j, st.span),
                );
            }
        }
    }

    // KQ102 — dead write: statement i's redirection target is overwritten
    // by a later statement before anything reads it, so i's output (and
    // possibly i itself) is wasted work. An intervening `xargs` statement
    // may read anything, which suppresses the lint.
    for i in 0..access.len() {
        let Some(w) = access[i].write.clone() else {
            continue;
        };
        let Some(next_write) =
            (i + 1..access.len()).find(|&k| access[k].write.as_deref() == Some(w.as_str()))
        else {
            continue;
        };
        let read_in_between =
            (i + 1..=next_write).any(|k| access[k].reads_everything || reads_path(k, &w));
        if !read_in_between {
            out.push(
                Diagnostic::new(
                    "KQ102",
                    Severity::Warning,
                    format!(
                        "write to {w} is dead: statement {} overwrites it \
                         before any statement reads it",
                        next_write + 1
                    ),
                )
                .at_statement(i, script.statements[i].span),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lint(script_text: &str) -> Vec<Diagnostic> {
        let env: HashMap<String, String> = HashMap::new();
        let script = kq_pipeline::parse::parse_script(script_text, &env).unwrap();
        vfs_hazards(&script)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn well_formed_scripts_are_clean() {
        let d = lint("cat /in.txt | grep fox | sort > /tmp/a\ncat /tmp/a | wc -l\n");
        assert_eq!(codes(&d), Vec::<&str>::new());
    }

    #[test]
    fn use_before_def_fires_only_for_script_written_paths() {
        let d = lint("cat /tmp/out | wc -l\ncat /in.txt | sort > /tmp/out\n");
        assert_eq!(codes(&d), vec!["KQ101"]);
        assert_eq!(d[0].statement, Some(0));
        // `grep fox` never trips the lint: fox is not a write target.
        let d = lint("cat /in.txt | grep fox\n");
        assert!(d.is_empty());
    }

    #[test]
    fn dead_write_detected_unless_read_or_xargs_intervenes() {
        let d = lint("cat /a | sort > /t\ncat /b | sort > /t\ncat /t | wc -l\n");
        assert_eq!(codes(&d), vec!["KQ102"]);
        assert_eq!(d[0].statement, Some(0));
        // A read between the writes keeps the first write alive.
        let d =
            lint("cat /a | sort > /t\ncat /t | wc -l\ncat /b | sort > /t\ncat /t | head -n 1\n");
        assert!(codes(&d).is_empty());
        // xargs may read anything: suppressed.
        let d = lint(
            "cat /a | sort > /t\ncat /lst | xargs wc -l\ncat /b | sort > /t\ncat /t | wc -l\n",
        );
        assert!(codes(&d).is_empty());
    }

    #[test]
    fn self_alias_is_flagged_once_as_kq103() {
        let d = lint("cat /t | sort > /t\n");
        assert_eq!(codes(&d), vec!["KQ103"]);
    }
}
