//! Graph verification: compile each statement to the dataflow IR the
//! scheduler executes — without running anything — and check it.
//!
//! The planner normally decides stage modes from synthesis results and
//! runtime probes. The analyzer has neither, so it assembles a *static
//! plan* from the effect lattice alone: a stage statically classified
//! [`EffectClass::Stateless`] becomes a chunk-local parallel stage (its
//! combiner is the same `concat` the short-circuit hands the planner);
//! every other stage becomes sequential. That plan is conservative — the
//! dynamic plan may parallelize more — but it exercises the same
//! [`DataflowGraph::build`] + fusion rewrite the scheduler runs, so the
//! structural invariants ([`DataflowGraph::validate`]) and the fusion
//! legality rule (fused runs span chunk-local stages only) are checked on
//! a graph of the real shape family.

use crate::diag::{Diagnostic, Severity};
use kq_pipeline::lattice::{self, EffectClass};
use kq_pipeline::plan::{PlannedStage, PlannedStatement, StageMode};
use kq_pipeline::scheduler::DEFAULT_QUEUE_DEPTH;
use kq_pipeline::{DataflowGraph, NodeKind, Script, Statement};
use std::sync::Arc;

/// Builds the conservative static plan for one statement from its
/// per-stage effect classes.
pub fn static_plan(statement: &Statement, classes: &[EffectClass]) -> PlannedStatement {
    let mut stages: Vec<PlannedStage> = statement
        .stages
        .iter()
        .zip(classes)
        .enumerate()
        .map(|(stage_idx, (stage, class))| {
            let mode = match lattice::static_combiner(*class) {
                Some(combiner) => StageMode::Parallel {
                    combiner: Arc::new(combiner),
                    eliminated: false,
                },
                None => StageMode::Sequential,
            };
            let streamable = mode.is_parallel();
            PlannedStage {
                stage_idx,
                mode,
                streamable,
                line_bound: kq_synth::prefix_bound(&stage.command),
            }
        })
        .collect();
    // Mirror the planner's Theorem 5 pass: a chunk-local stage followed by
    // another parallel stage sheds its intermediate combiner.
    for i in 0..stages.len() {
        let next_parallel = stages
            .get(i + 1)
            .map(|s| s.mode.is_parallel())
            .unwrap_or(false);
        if stages[i].streamable && next_parallel {
            if let StageMode::Parallel { eliminated, .. } = &mut stages[i].mode {
                *eliminated = true;
            }
        }
    }
    PlannedStatement { stages }
}

/// Verifies every statement's dataflow graph (`KQ201`–`KQ203`).
pub fn verify_graphs(script: &Script, classes: &[Vec<EffectClass>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (si, (statement, stage_classes)) in script.statements.iter().zip(classes).enumerate() {
        let planned = static_plan(statement, stage_classes);
        let graph = DataflowGraph::build(&planned, true);

        // KQ201/KQ202 — structural invariants and queue-credit coverage.
        for problem in graph.validate(planned.stages.len(), DEFAULT_QUEUE_DEPTH) {
            let code = if problem.contains("queue credit") {
                "KQ202"
            } else {
                "KQ201"
            };
            out.push(
                Diagnostic::new(code, Severity::Error, format!("dataflow graph: {problem}"))
                    .at_statement(si, statement.span),
            );
        }

        // KQ203 — fusion legality: a fused StageWorker run must span
        // chunk-local stages only. `fuse_streamable` only merges
        // StageWorker neighbors, so this can fire only if the rewrite (or
        // a hand-built graph) regresses; it is the static twin of the
        // scheduler's debug assertion.
        for node in &graph.nodes {
            if node.kind == NodeKind::StageWorker && node.stages.len() > 1 {
                for idx in node.stages.clone() {
                    if !planned.stages[idx].streamable {
                        out.push(
                            Diagnostic::new(
                                "KQ203",
                                Severity::Error,
                                format!(
                                    "fused run over stages {:?} includes stage {idx}, \
                                     which is not chunk-local",
                                    node.stages
                                ),
                            )
                            .at_stage(
                                si,
                                idx,
                                statement.stages[idx].span,
                            ),
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_pipeline::parse::parse_script;
    use std::collections::HashMap;

    fn classes_for(script: &Script) -> Vec<Vec<EffectClass>> {
        script
            .statements
            .iter()
            .map(|st| {
                st.stages
                    .iter()
                    .map(|s| lattice::classify(&s.command))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn corpus_shaped_statements_verify_clean() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(
            "cat /in.txt | tr A-Z a-z | grep fox | sort | uniq -c | head -n 5\n\
             cat /a /b | cut -d ' ' -f 1 | wc -l > /tmp/count\n",
            &env,
        )
        .unwrap();
        let classes = classes_for(&script);
        assert!(verify_graphs(&script, &classes).is_empty());
    }

    #[test]
    fn static_plan_parallelizes_exactly_the_stateless_stages() {
        let env: HashMap<String, String> = HashMap::new();
        let script =
            parse_script("cat /in.txt | grep fox | tr A-Z a-z | sort | wc -l\n", &env).unwrap();
        let classes = classes_for(&script);
        let planned = static_plan(&script.statements[0], &classes[0]);
        let shape: Vec<(bool, bool, bool)> = planned
            .stages
            .iter()
            .map(|s| (s.mode.is_parallel(), s.mode.is_eliminated(), s.streamable))
            .collect();
        // grep and tr are stateless (grep eliminated into tr); sort and wc
        // are folds the static plan conservatively leaves sequential.
        assert_eq!(
            shape,
            vec![
                (true, true, true),
                (true, false, true),
                (false, false, false),
                (false, false, false),
            ]
        );
    }
}
