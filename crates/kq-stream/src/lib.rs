//! Stream model and string-splitting primitives for the KumQuat reproduction.
//!
//! The KumQuat paper (Definition 3.1) models a *stream* as a string that ends
//! with a newline character: `Stream = { x ++ "\n" | x ∈ String }`. Commands
//! are functions `Stream -> Stream`, and the combiner DSL semantics (Figure 6
//! of the paper) are defined in terms of a small vocabulary of string
//! helpers: `splitFirst`, `splitLast`, `splitFirstLine`, `splitLastLine`,
//! `splitLastNonemptyLine`, `delFront`, `delBack`, `delPad`, `addPad`, and
//! delimiter counting. This crate implements that vocabulary exactly, plus
//! the line-boundary stream splitting used to create the parallel input
//! substreams.
//!
//! Everything here is pure string/byte manipulation with no I/O, so both
//! the synthesizer and the parallel executors can share it.
//!
//! Two views of the same stream model coexist:
//!
//! * **Borrowed text** — the paper-vocabulary helpers below and the
//!   [`split_stream`]/[`split_chunks`] functions returning `&str` views,
//!   used by the synthesizer's small probe streams and the DSL evaluator;
//! * **Shared bytes** — [`Bytes`] (an `Arc`'d backing plus range) and
//!   [`Rope`] (a segment list), the zero-copy data plane the executors
//!   move payloads through. [`Bytes::split_stream`]/[`Bytes::split_chunks`]
//!   share the exact boundary computation with the borrowed splitters, so
//!   the two views can never disagree about where a stream splits. The
//!   backing is either an owned heap buffer or a memory-mapped file
//!   region ([`MmapRegion`], created by `kq-io`) — see the
//!   [`bytes`] module docs for the backing-store rules, the unmap
//!   lifecycle, and the truncation/`SIGBUS` caveat.
//!
//! ```
//! // Line-aligned splitting never cuts a line and reassembles exactly.
//! let stream = "alpha\nbeta\ngamma\ndelta\n";
//! let pieces = kq_stream::split_stream(stream, 3);
//! assert_eq!(pieces.concat(), stream);
//! assert!(pieces.iter().all(|p| p.ends_with('\n')));
//!
//! // The zero-copy equivalent: pieces are refcounted slices.
//! let shared = kq_stream::Bytes::from(stream);
//! let pieces = shared.split_stream(3);
//! assert!(pieces.iter().all(|p| p.shares_buffer(&shared)));
//!
//! // The appendix string helpers used by the DSL semantics.
//! assert_eq!(kq_stream::del_pad("   42 apple"), (3, "42 apple"));
//! assert_eq!(kq_stream::split_first(' ', "42 apple pie"), ("42", Some("apple pie")));
//! ```

#![warn(missing_docs)]

pub mod bytes;
pub mod chunker;
pub mod delim;
pub mod split;

#[cfg(unix)]
pub use bytes::MmapRegion;
pub use bytes::{concat_bytes, Bytes, ChunkIter, ReleaseCursor, Rope};
pub use chunker::IncrementalChunker;
pub use delim::Delim;
pub use split::{split_chunks, split_stream};

/// Returns true if `s` is a stream in the sense of Definition 3.1: a
/// non-empty string whose final character is a newline.
///
/// The empty string is *not* a stream; the minimal stream is `"\n"`.
#[inline]
pub fn is_stream(s: &str) -> bool {
    s.ends_with('\n')
}

/// Appends a trailing newline if `s` does not already end with one, making
/// it a stream. The empty string becomes `"\n"` — callers that want to keep
/// "no output" distinct from "one empty line" should branch before calling.
pub fn ensure_stream(s: &str) -> String {
    if is_stream(s) {
        s.to_owned()
    } else {
        let mut out = String::with_capacity(s.len() + 1);
        out.push_str(s);
        out.push('\n');
        out
    }
}

/// `splitFirst d y` from the paper's appendix: splits `y` into elements
/// separated by `d`, returns the first element, and re-joins the remaining
/// elements with `d` as the second output.
///
/// When `d` does not occur in `y` the tail is `None` (the paper's `nil`).
#[inline]
pub fn split_first(d: char, y: &str) -> (&str, Option<&str>) {
    match y.find(d) {
        Some(i) => (&y[..i], Some(&y[i + d.len_utf8()..])),
        None => (y, None),
    }
}

/// `splitLast d y`: splits `y` with `d`, returns the last element as the
/// second output and the re-joined remaining elements as the first output
/// (`None` when `d` does not occur).
#[inline]
pub fn split_last(d: char, y: &str) -> (Option<&str>, &str) {
    match y.rfind(d) {
        Some(i) => (Some(&y[..i]), &y[i + d.len_utf8()..]),
        None => (None, y),
    }
}

/// `splitFirstLine y`: returns the first line of a stream (without its
/// newline) and the remaining suffix *including* all of its newlines.
///
/// For the single-line stream `"b\n"` this yields `("b", "")`.
/// For a non-stream (no trailing newline anywhere) the whole string is the
/// line and the rest is empty.
#[inline]
pub fn split_first_line(y: &str) -> (&str, &str) {
    match y.find('\n') {
        Some(i) => (&y[..i], &y[i + 1..]),
        None => (y, ""),
    }
}

/// `splitLastLine y`: for a stream `y` (ends with `'\n'`), strips the final
/// newline and splits off the last line. The first output is the prefix
/// *without* its trailing newline (`None` when `y` has a single line), the
/// second output is the last line.
///
/// `split_last_line("a\nb\n") == (Some("a"), "b")`,
/// `split_last_line("b\n") == (None, "b")`.
#[inline]
pub fn split_last_line(y: &str) -> (Option<&str>, &str) {
    let body = y.strip_suffix('\n').unwrap_or(y);
    match body.rfind('\n') {
        Some(i) => (Some(&body[..i]), &body[i + 1..]),
        None => (None, body),
    }
}

/// `splitLastNonemptyLine y`: like [`split_last_line`] but skips trailing
/// empty lines when locating the last line. The first output is everything
/// before the returned line (without the separating newline). Returns
/// `None` for the line when every line is empty.
pub fn split_last_nonempty_line(y: &str) -> (Option<&str>, Option<&str>) {
    let mut body = y.strip_suffix('\n').unwrap_or(y);
    loop {
        match body.rfind('\n') {
            Some(i) => {
                let cand = &body[i + 1..];
                if cand.is_empty() {
                    body = &body[..i];
                } else {
                    return (Some(&body[..i]), Some(cand));
                }
            }
            None => {
                if body.is_empty() {
                    return (None, None);
                }
                return (None, Some(body));
            }
        }
    }
}

/// `delFront d y`: removes one occurrence of delimiter `d` from the front of
/// `y`; `None` when `y` does not start with `d` (the evaluation is then a
/// domain error in the DSL).
#[inline]
pub fn del_front(d: char, y: &str) -> Option<&str> {
    y.strip_prefix(d)
}

/// `delBack d y`: removes one occurrence of delimiter `d` from the back of
/// `y`; `None` when `y` does not end with `d`.
#[inline]
pub fn del_back(d: char, y: &str) -> Option<&str> {
    y.strip_suffix(d)
}

/// `delPad y`: removes leading pad characters (spaces, or a run of leading
/// tabs as produced by some tabulating commands) and returns the number of
/// removed characters together with the remaining substring.
///
/// The paper's Definition B.1 restricts pads to `[' '+ | '\t']`; we accept
/// any mix of leading blanks, which is a superset that behaves identically
/// on the command outputs in the corpus (`uniq -c`, `wc`, `xargs wc`).
#[inline]
pub fn del_pad(y: &str) -> (usize, &str) {
    let trimmed = y.trim_start_matches([' ', '\t']);
    (y.len() - trimmed.len(), trimmed)
}

/// `addPad` with the alignment rule implied by the paper's `calcPad`: pads
/// `s` with leading spaces so that it occupies at least `width` columns
/// (right-aligned). When `s` is already wider, no padding is added.
pub fn add_pad(width: usize, s: &str) -> String {
    let len = s.chars().count();
    if len >= width {
        s.to_owned()
    } else {
        let mut out = String::with_capacity(width.saturating_sub(len) + s.len());
        for _ in 0..(width - len) {
            out.push(' ');
        }
        out.push_str(s);
        out
    }
}

/// `C(d, y)` from Definition B.10: the number of occurrences of delimiter
/// `d` in `y`.
#[inline]
pub fn count_delim(d: char, y: &str) -> usize {
    y.as_bytes().iter().filter(|&&b| b == d as u8).count()
}

/// Iterates over the lines of a stream *without* their trailing newlines,
/// preserving empty lines. `"\n"` yields one empty line; `""` yields none;
/// an unterminated final line is yielded as-is.
pub fn lines_of(y: &str) -> impl Iterator<Item = &str> {
    let terminated = y.ends_with('\n');
    let body = if terminated { &y[..y.len() - 1] } else { y };
    let empty = y.is_empty();
    let single_empty = y == "\n";
    let mut it = body.split('\n');
    let mut emitted_single = false;
    std::iter::from_fn(move || {
        if empty {
            return None;
        }
        if single_empty {
            if emitted_single {
                return None;
            }
            emitted_single = true;
            return Some("");
        }
        it.next()
    })
}

/// Number of lines in a stream: the number of `'\n'` characters, plus one
/// when the final line is unterminated (non-stream strings).
pub fn line_count(y: &str) -> usize {
    let n = count_delim('\n', y);
    if y.is_empty() || y.ends_with('\n') {
        n
    } else {
        n + 1
    }
}

/// Parses a GNU-style padded integer field (`delPad` then digits), returning
/// the pad width consumed, the integer value, and the remaining suffix.
/// Returns `None` when the deformatted prefix is not a non-empty digit run.
pub fn parse_padded_int(y: &str) -> Option<(usize, i64, &str)> {
    let (pad, rest) = del_pad(y);
    let digits_len = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
    if digits_len == 0 {
        return None;
    }
    let value: i64 = rest[..digits_len].parse().ok()?;
    Some((pad, value, &rest[digits_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stream_predicate() {
        assert!(is_stream("abc\n"));
        assert!(is_stream("\n"));
        assert!(!is_stream(""));
        assert!(!is_stream("abc"));
    }

    #[test]
    fn ensure_stream_appends_only_when_needed() {
        assert_eq!(ensure_stream("a"), "a\n");
        assert_eq!(ensure_stream("a\n"), "a\n");
        assert_eq!(ensure_stream(""), "\n");
    }

    #[test]
    fn split_first_basic() {
        assert_eq!(split_first(',', "a,b,c"), ("a", Some("b,c")));
        assert_eq!(split_first(',', "abc"), ("abc", None));
        assert_eq!(split_first(',', ",x"), ("", Some("x")));
        assert_eq!(split_first(',', "x,"), ("x", Some("")));
    }

    #[test]
    fn split_last_basic() {
        assert_eq!(split_last(',', "a,b,c"), (Some("a,b"), "c"));
        assert_eq!(split_last(',', "abc"), (None, "abc"));
        assert_eq!(split_last(',', "x,"), (Some("x"), ""));
    }

    #[test]
    fn split_first_line_cases() {
        assert_eq!(split_first_line("a\nb\nc\n"), ("a", "b\nc\n"));
        assert_eq!(split_first_line("a\n"), ("a", ""));
        assert_eq!(split_first_line("\n"), ("", ""));
        assert_eq!(split_first_line("nolf"), ("nolf", ""));
    }

    #[test]
    fn split_last_line_cases() {
        assert_eq!(split_last_line("a\nb\nc\n"), (Some("a\nb"), "c"));
        assert_eq!(split_last_line("a\n"), (None, "a"));
        assert_eq!(split_last_line("\n"), (None, ""));
        // Unterminated final line behaves like the line itself.
        assert_eq!(split_last_line("a\nb"), (Some("a"), "b"));
    }

    #[test]
    fn split_last_nonempty_line_skips_trailing_blanks() {
        assert_eq!(
            split_last_nonempty_line("a\nb\n\n\n"),
            (Some("a"), Some("b"))
        );
        assert_eq!(split_last_nonempty_line("a\n"), (None, Some("a")));
        assert_eq!(split_last_nonempty_line("\n\n"), (None, None));
        assert_eq!(split_last_nonempty_line("\n"), (None, None));
    }

    #[test]
    fn del_front_back() {
        assert_eq!(del_front('\n', "\nabc"), Some("abc"));
        assert_eq!(del_front('\n', "abc"), None);
        assert_eq!(del_back('\n', "abc\n"), Some("abc"));
        assert_eq!(del_back('\n', "abc"), None);
    }

    #[test]
    fn del_pad_counts_blanks() {
        assert_eq!(del_pad("   4 word"), (3, "4 word"));
        assert_eq!(del_pad("x"), (0, "x"));
        assert_eq!(del_pad("\t9"), (1, "9"));
        assert_eq!(del_pad("    "), (4, ""));
    }

    #[test]
    fn add_pad_right_aligns() {
        assert_eq!(add_pad(7, "4"), "      4");
        assert_eq!(add_pad(2, "123"), "123");
        assert_eq!(add_pad(0, ""), "");
    }

    #[test]
    fn uniq_c_roundtrip_padding() {
        // GNU uniq -c prints "%7d %s"; combining 4 and 9 must stay aligned.
        let line = "      4 word";
        let (pad, rest) = del_pad(line);
        let (count, tail) = split_first(' ', rest);
        assert_eq!((pad, count, tail), (6, "4", Some("word")));
        let new = add_pad(pad + count.len(), "13");
        assert_eq!(format!("{new} {}", tail.unwrap()), "     13 word");
    }

    #[test]
    fn count_delim_counts() {
        assert_eq!(count_delim('\n', "a\nb\n"), 2);
        assert_eq!(count_delim(',', "a,b,c"), 2);
        assert_eq!(count_delim('\t', "ab"), 0);
    }

    #[test]
    fn lines_of_stream() {
        let ls: Vec<_> = lines_of("a\nb\n\nc\n").collect();
        assert_eq!(ls, vec!["a", "b", "", "c"]);
        let ls: Vec<_> = lines_of("\n").collect();
        assert_eq!(ls, vec![""]);
        let ls: Vec<_> = lines_of("").collect();
        assert!(ls.is_empty());
        let ls: Vec<_> = lines_of("a\nb").collect();
        assert_eq!(ls, vec!["a", "b"]);
    }

    #[test]
    fn line_count_matches_lines_of() {
        for s in ["", "\n", "a\n", "a\nb\n", "a\nb", "\n\n\n"] {
            assert_eq!(line_count(s), lines_of(s).count(), "input {s:?}");
        }
    }

    #[test]
    fn parse_padded_int_cases() {
        assert_eq!(parse_padded_int("      4 word"), Some((6, 4, " word")));
        assert_eq!(parse_padded_int("12"), Some((0, 12, "")));
        assert_eq!(parse_padded_int("  x"), None);
        assert_eq!(parse_padded_int(""), None);
    }

    proptest! {
        #[test]
        fn prop_split_first_reassembles(s in "[a-z,]{0,40}") {
            let (h, t) = split_first(',', &s);
            match t {
                Some(t) => prop_assert_eq!(format!("{h},{t}"), s),
                None => prop_assert_eq!(h, s.as_str()),
            }
        }

        #[test]
        fn prop_split_last_reassembles(s in "[a-z,]{0,40}") {
            let (i, l) = split_last(',', &s);
            match i {
                Some(i) => prop_assert_eq!(format!("{i},{l}"), s),
                None => prop_assert_eq!(l, s.as_str()),
            }
        }

        #[test]
        fn prop_split_lines_reassemble(body in "[a-c\n]{0,60}") {
            let y = format!("{body}\n");
            let (pre, last) = split_last_line(&y);
            let rebuilt = match pre {
                Some(p) => format!("{p}\n{last}\n"),
                None => format!("{last}\n"),
            };
            prop_assert_eq!(rebuilt, y);
        }

        #[test]
        fn prop_first_line_reassembles(body in "[a-c\n]{0,60}") {
            let y = format!("{body}\n");
            let (first, rest) = split_first_line(&y);
            prop_assert_eq!(format!("{first}\n{rest}"), y);
        }

        #[test]
        fn prop_del_pad_add_pad_roundtrip(pad in 0usize..10, s in "[a-z0-9]{1,10}") {
            let padded = add_pad(pad + s.len(), &s);
            let (got, rest) = del_pad(&padded);
            prop_assert_eq!(got, pad);
            prop_assert_eq!(rest, s.as_str());
        }

        #[test]
        fn prop_lines_of_roundtrip(lines in proptest::collection::vec("[a-z]{0,6}", 0..12)) {
            let mut y = String::new();
            for l in &lines {
                y.push_str(l);
                y.push('\n');
            }
            let got: Vec<_> = lines_of(&y).map(str::to_owned).collect();
            prop_assert_eq!(got, lines);
        }
    }
}
