//! The delimiter alphabet of the combiner DSL (Figure 3 of the paper):
//! `d ∈ Delim := '\n' | '\t' | ' ' | ','`.

use std::fmt;

/// A delimiter character usable by the `front`/`back`/`fuse`/`stitch2`/
/// `offset` combiner operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Delim {
    /// `'\n'` — the line delimiter; always part of the candidate alphabet.
    Newline,
    /// `'\t'` — field delimiter produced by e.g. `cut -f` and `awk` OFS.
    Tab,
    /// `' '` — word delimiter; separates `uniq -c`/`wc` count fields.
    Space,
    /// `','` — CSV field delimiter (mass-transit analytics scripts).
    Comma,
}

impl Delim {
    /// Every delimiter in the DSL grammar, in the paper's order.
    pub const ALL: [Delim; 4] = [Delim::Newline, Delim::Tab, Delim::Space, Delim::Comma];

    /// The underlying character.
    #[inline]
    pub const fn as_char(self) -> char {
        match self {
            Delim::Newline => '\n',
            Delim::Tab => '\t',
            Delim::Space => ' ',
            Delim::Comma => ',',
        }
    }

    /// Maps a character back to a DSL delimiter, if it is one.
    pub fn from_char(c: char) -> Option<Delim> {
        match c {
            '\n' => Some(Delim::Newline),
            '\t' => Some(Delim::Tab),
            ' ' => Some(Delim::Space),
            ',' => Some(Delim::Comma),
            _ => None,
        }
    }

    /// True when `c` is any DSL delimiter (used by the `E(g, Y)` sufficiency
    /// predicates, which require observations containing characters outside
    /// `Delim ∪ {'0'}`).
    #[inline]
    pub fn is_delim_char(c: char) -> bool {
        matches!(c, '\n' | '\t' | ' ' | ',')
    }
}

impl fmt::Display for Delim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delim::Newline => write!(f, "'\\n'"),
            Delim::Tab => write!(f, "'\\t'"),
            Delim::Space => write!(f, "' '"),
            Delim::Comma => write!(f, "','"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_roundtrip() {
        for d in Delim::ALL {
            assert_eq!(Delim::from_char(d.as_char()), Some(d));
        }
        assert_eq!(Delim::from_char('x'), None);
    }

    #[test]
    fn delim_char_predicate() {
        assert!(Delim::is_delim_char(' '));
        assert!(Delim::is_delim_char('\n'));
        assert!(!Delim::is_delim_char('0'));
        assert!(!Delim::is_delim_char('a'));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Delim::Newline.to_string(), "'\\n'");
        assert_eq!(Delim::Space.to_string(), "' '");
    }
}
