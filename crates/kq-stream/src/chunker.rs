//! Incremental line-aligned chunking of a stream that arrives in pieces.
//!
//! The batch splitters ([`split_chunks`](crate::split_chunks),
//! [`Bytes::split_chunks`](crate::Bytes::split_chunks)) need the whole
//! stream up front. The streaming executor instead receives a stage's
//! output as a sequence of [`Bytes`] segments of drifting sizes (a
//! selective `grep` shrinks its chunks, `uniq -c` collapses them) and
//! wants to forward line-aligned chunks of roughly the configured size as
//! soon as they exist — without waiting for the stream to end.
//!
//! [`IncrementalChunker`] does that: segments are pushed into a growing
//! [`Rope`], and whenever enough bytes have accumulated the pending run is
//! gathered and re-cut at line boundaries. Chunks are yielded as `Bytes`
//! sub-slices of the gathered buffer — zero-copy whenever the pending run
//! was a single segment (the dominant case when upstream chunks are
//! already near the target size); a gather memcpy only happens when small
//! segments genuinely coalesce.
//!
//! ```
//! use kq_stream::{Bytes, IncrementalChunker};
//!
//! let mut chunker = IncrementalChunker::new(8);
//! let mut out = chunker.push(Bytes::from("alpha\n"));
//! out.extend(chunker.push(Bytes::from("beta\ngamma\n")));
//! out.extend(chunker.finish());
//! let rebuilt: String = out.iter().map(|c| c.as_str().to_owned()).collect();
//! assert_eq!(rebuilt, "alpha\nbeta\ngamma\n");
//! assert!(out.iter().all(|c| c.ends_with_newline()));
//! ```

use crate::bytes::{Bytes, Rope};

/// Re-chunks an incrementally arriving stream at line boundaries (see the
/// [module docs](self)).
///
/// Invariants over the emitted chunks (property-tested in
/// `tests/properties.rs`):
///
/// * concatenating every chunk from `push` calls plus [`finish`]
///   reproduces the concatenation of the pushed segments exactly;
/// * every chunk except possibly the final one ends with `'\n'` (the
///   final one is unterminated only when the input is);
/// * a chunk only exceeds `target_bytes` when a single line forces it:
///   the bytes past the target contain no interior newline.
///
/// [`finish`]: IncrementalChunker::finish
#[derive(Debug)]
pub struct IncrementalChunker {
    target: usize,
    pending: Rope,
}

impl IncrementalChunker {
    /// A chunker targeting `target_bytes` per chunk (0 behaves as 1, like
    /// the batch splitter).
    pub fn new(target_bytes: usize) -> IncrementalChunker {
        IncrementalChunker {
            target: target_bytes.max(1),
            pending: Rope::new(),
        }
    }

    /// Bytes buffered but not yet emitted (always less than the target, or
    /// a single unterminated line).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The current chunk-size target in bytes.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Retargets future cuts to `target_bytes` (0 behaves as 1).
    ///
    /// Takes effect from the next `push`/`finish`: already-emitted chunks
    /// are untouched, and the pending tail is simply re-cut at the new
    /// target. Every invariant on the emitted stream is per-cut, so the
    /// exact-reassembly and line-termination guarantees hold across any
    /// sequence of retargets — only chunk *boundaries* move. The dataflow
    /// runtime uses this to coarsen barrier-feeding chunks online.
    pub fn set_target(&mut self, target_bytes: usize) {
        self.target = target_bytes.max(1);
    }

    /// Appends a segment and returns the chunks that became complete.
    ///
    /// A returned chunk is *complete*: line-terminated and at least the
    /// target size (or oversized because one line is). An undersized or
    /// unterminated tail stays pending for the next push.
    pub fn push(&mut self, segment: Bytes) -> Vec<Bytes> {
        if segment.is_empty() {
            return Vec::new();
        }
        self.pending.push(segment);
        if self.pending.len() < self.target {
            return Vec::new();
        }
        self.cut(false)
    }

    /// Flushes the remaining tail as final chunks (empty when nothing is
    /// pending). The last chunk may be undersized, and is unterminated
    /// exactly when the overall input was.
    pub fn finish(mut self) -> Vec<Bytes> {
        self.cut(true)
    }

    /// Flushes every *complete line* currently pending as one undersized
    /// chunk, keeping only an unterminated line tail. `None` when no
    /// complete line is pending.
    ///
    /// This is the low-latency mode for a prefix-bounded downstream
    /// consumer (`head -n 1` behind a sparse `grep`): re-normalizing to
    /// the size target would buffer the first — possibly only — matching
    /// lines until end-of-input, so the demand is never satisfied and the
    /// early-exit cancellation never fires. Callers that know downstream
    /// needs only a line prefix trade chunk-size regularity for immediate
    /// delivery; the emitted stream content is identical either way.
    pub fn flush_pending(&mut self) -> Option<Bytes> {
        if self.pending.is_empty() {
            return None;
        }
        let flat = std::mem::take(&mut self.pending).into_bytes();
        let cut = match flat.as_bytes().iter().rposition(|&b| b == b'\n') {
            Some(pos) => pos + 1,
            None => 0,
        };
        if cut == 0 {
            // A single unterminated line: nothing complete to ship.
            self.pending.push(flat);
            return None;
        }
        let head = flat.slice(0..cut);
        if cut < flat.len() {
            self.pending.push(flat.slice(cut..flat.len()));
        }
        Some(head)
    }

    /// Gathers the pending rope and emits its complete chunks, retaining
    /// the tail unless `flush`. The gather is zero-copy for a
    /// single-segment rope ([`Rope::into_bytes`]).
    fn cut(&mut self, flush: bool) -> Vec<Bytes> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let flat = std::mem::take(&mut self.pending).into_bytes();
        let mut chunks = flat.split_chunks(self.target);
        if !flush {
            if let Some(last) = chunks.last() {
                // An undersized or unterminated tail waits for more data;
                // an oversized newline-terminated chunk (single long line)
                // is complete and ships now.
                if last.len() < self.target || !last.ends_with_newline() {
                    let tail = chunks.pop().expect("non-empty chunk list");
                    self.pending.push(tail);
                }
            }
        }
        if !chunks.is_empty() {
            kq_trace::counter("chunk", "cut", chunks.len() as f64).emit();
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(target: usize, segments: &[&str]) -> (Vec<Bytes>, String) {
        let mut chunker = IncrementalChunker::new(target);
        let mut out = Vec::new();
        for s in segments {
            out.extend(chunker.push(Bytes::from(*s)));
        }
        out.extend(chunker.finish());
        let rebuilt = out.iter().map(|c| c.as_str().to_owned()).collect();
        (out, rebuilt)
    }

    #[test]
    fn reassembles_exactly() {
        let segs = ["a\nbb\n", "ccc\n", "", "d\ne\nf\n"];
        let (_, rebuilt) = drain(4, &segs);
        assert_eq!(rebuilt, segs.concat());
    }

    #[test]
    fn chunks_are_line_aligned() {
        let (chunks, _) = drain(4, &["aa\nbb\ncc\n", "dd\n"]);
        assert!(chunks.iter().all(|c| c.ends_with_newline()));
        assert!(chunks.len() > 1);
    }

    #[test]
    fn undersized_tail_waits_for_more_data() {
        let mut chunker = IncrementalChunker::new(16);
        assert!(chunker.push(Bytes::from("ab\n")).is_empty());
        assert_eq!(chunker.pending_len(), 3);
        assert!(chunker.push(Bytes::from("cd\n")).is_empty());
        let rest = chunker.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0], "ab\ncd\n");
    }

    #[test]
    fn single_segment_emits_zero_copy() {
        let big = Bytes::from("x\n".repeat(64));
        let mut chunker = IncrementalChunker::new(16);
        let chunks = chunker.push(big.clone());
        assert!(!chunks.is_empty());
        for c in &chunks {
            assert!(c.shares_buffer(&big), "single-segment cut must not copy");
        }
    }

    #[test]
    fn long_line_ships_once_terminated() {
        let mut chunker = IncrementalChunker::new(4);
        // Unterminated long line stays pending...
        assert!(chunker.push(Bytes::from("very-long-line")).is_empty());
        // ...and ships as one oversized chunk once its newline arrives.
        let chunks = chunker.push(Bytes::from("-continued\n"));
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], "very-long-line-continued\n");
    }

    #[test]
    fn unterminated_overall_input_keeps_tail() {
        let (chunks, rebuilt) = drain(4, &["aa\nbb\n", "tail-without-newline"]);
        assert_eq!(rebuilt, "aa\nbb\ntail-without-newline");
        assert!(!chunks.last().unwrap().ends_with_newline());
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.ends_with_newline());
        }
    }

    #[test]
    fn flush_pending_ships_complete_lines_early() {
        let mut chunker = IncrementalChunker::new(1 << 20);
        // Far below the target: push alone ships nothing...
        assert!(chunker.push(Bytes::from("match one\nmatch tw")).is_empty());
        // ...but a flush delivers the complete line now, keeping the
        // unterminated tail.
        assert_eq!(chunker.flush_pending().unwrap(), "match one\n");
        assert_eq!(chunker.pending_len(), "match tw".len());
        // Nothing complete pending: no flush.
        assert!(chunker.flush_pending().is_none());
        assert!(chunker.push(Bytes::from("o\n")).is_empty());
        assert_eq!(chunker.flush_pending().unwrap(), "match two\n");
        assert!(chunker.finish().is_empty());
        // Empty chunker flushes nothing.
        assert!(IncrementalChunker::new(8).flush_pending().is_none());
    }

    #[test]
    fn flush_pending_interleaves_with_push_without_losing_bytes() {
        let mut chunker = IncrementalChunker::new(8);
        let mut out: Vec<Bytes> = Vec::new();
        let segs = ["aa\nbb", "\ncc\n", "dd", "ee\nff"];
        for s in segs {
            out.extend(chunker.push(Bytes::from(s)));
            out.extend(chunker.flush_pending());
        }
        out.extend(chunker.finish());
        let rebuilt: String = out.iter().map(|c| c.as_str().to_owned()).collect();
        assert_eq!(rebuilt, segs.concat());
        for c in &out[..out.len() - 1] {
            assert!(c.ends_with_newline());
        }
    }

    #[test]
    fn empty_input_yields_nothing() {
        let (chunks, rebuilt) = drain(8, &[]);
        assert!(chunks.is_empty());
        assert_eq!(rebuilt, "");
        let (chunks, _) = drain(8, &["", ""]);
        assert!(chunks.is_empty());
    }

    #[test]
    fn retarget_changes_boundaries_not_bytes() {
        let mut chunker = IncrementalChunker::new(4);
        let mut out = chunker.push(Bytes::from("aa\nbb\ncc\n"));
        chunker.set_target(64);
        assert_eq!(chunker.target(), 64);
        // Under the coarser target the pending tail and the remaining
        // segments coalesce into one chunk.
        out.extend(chunker.push(Bytes::from("dd\nee\n")));
        out.extend(chunker.push(Bytes::from("ff\n")));
        out.extend(chunker.finish());
        let rebuilt: String = out.iter().map(|c| c.as_str().to_owned()).collect();
        assert_eq!(rebuilt, "aa\nbb\ncc\ndd\nee\nff\n");
        assert!(out.iter().all(|c| c.ends_with_newline()));
        assert_eq!(out.last().unwrap(), "cc\ndd\nee\nff\n");
        // Retarget-to-zero clamps like the constructor.
        chunker = IncrementalChunker::new(4);
        chunker.set_target(0);
        assert_eq!(chunker.target(), 1);
    }

    #[test]
    fn target_zero_behaves_as_one() {
        let (chunks, rebuilt) = drain(0, &["a\nb\n"]);
        assert_eq!(rebuilt, "a\nb\n");
        assert_eq!(chunks.len(), 2);
    }
}
