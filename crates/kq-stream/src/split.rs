//! Line-boundary splitting of an input stream into `k` substreams.
//!
//! KumQuat's parallel pipelines split the input into contiguous substreams at
//! line boundaries (the model of computation requires `x1` and `x2` to be
//! streams, i.e. newline-terminated), run one command instance per substream,
//! and combine the outputs. This module implements the byte-balanced splitter
//! used by both the executor and the synthesizer's observation harness.

/// Piece boundaries for [`split_stream`]: `(start, end)` byte ranges of at
/// most `k` contiguous, newline-aligned, roughly equal pieces.
///
/// This is the single boundary computation shared by the `&str` splitter
/// and the zero-copy [`Bytes`](crate::Bytes) splitter, so the two can
/// never diverge. Cost is O(bytes scanned) for the boundary search and
/// O(k) allocation.
pub(crate) fn stream_boundaries(bytes: &[u8], k: usize) -> Vec<(usize, usize)> {
    assert!(k > 0, "cannot split into zero substreams");
    if bytes.is_empty() {
        return Vec::new();
    }
    if k == 1 {
        return vec![(0, bytes.len())];
    }
    let mut pieces = Vec::with_capacity(k);
    let mut start = 0usize;
    for piece_idx in 0..k {
        if start >= bytes.len() {
            break;
        }
        let remaining_pieces = k - piece_idx;
        if remaining_pieces == 1 {
            pieces.push((start, bytes.len()));
            break;
        }
        let remaining = bytes.len() - start;
        let target = start + remaining.div_ceil(remaining_pieces);
        // Advance to the next newline at or after `target - 1` so the piece
        // ends on a line boundary.
        let mut end = target.min(bytes.len());
        while end < bytes.len() && bytes[end - 1] != b'\n' {
            end += 1;
        }
        pieces.push((start, end));
        start = end;
    }
    pieces
}

/// Chunk boundaries for [`split_chunks`]: `(start, end)` byte ranges of
/// contiguous newline-aligned chunks of roughly `target_bytes` each.
///
/// Total-by-construction: `target_bytes = 0` is clamped to 1, a target
/// larger than the input yields exactly one chunk, and non-empty input
/// always yields at least one chunk (the loop pushes a range on every
/// iteration and each range is non-empty because `end > start`).
pub(crate) fn chunk_boundaries(bytes: &[u8], target_bytes: usize) -> Vec<(usize, usize)> {
    let target = target_bytes.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < bytes.len() {
        let end = next_chunk_end(bytes, start, target);
        chunks.push((start, end));
        start = end;
    }
    chunks
}

/// One step of the chunk-boundary rule: the end of the chunk starting at
/// `start` — `target` bytes, extended to the next newline. Shared by
/// [`chunk_boundaries`] (eager) and [`Bytes::chunks`](crate::Bytes::chunks)
/// (lazy), so the two can never disagree; the lazy form only ever touches
/// the pages of the chunk it is producing, which is what keeps mapped
/// multi-GB inputs out-of-core.
pub(crate) fn next_chunk_end(bytes: &[u8], start: usize, target: usize) -> usize {
    let mut end = (start + target.max(1)).min(bytes.len());
    while end < bytes.len() && bytes[end - 1] != b'\n' {
        end += 1;
    }
    end
}

/// Splits a stream into at most `k` contiguous, newline-terminated pieces of
/// roughly equal byte size.
///
/// Invariants (see the unit and property tests):
/// * concatenating the pieces reproduces the input exactly;
/// * every piece is a stream (ends with `'\n'`) provided the input is;
/// * no line is split across pieces;
/// * at most `k` pieces are produced; fewer when the input has fewer lines.
///
/// An empty input produces no pieces. When the input is a non-stream
/// (unterminated final line), the final piece carries the unterminated tail.
///
/// The returned pieces borrow `input`; the parallel executors use the
/// zero-copy owned equivalent [`Bytes::split_stream`](crate::Bytes::split_stream)
/// instead, which shares this function's boundary computation.
pub fn split_stream(input: &str, k: usize) -> Vec<&str> {
    stream_boundaries(input.as_bytes(), k)
        .into_iter()
        .map(|(s, e)| &input[s..e])
        .collect()
}

/// Splits a stream into contiguous, newline-terminated chunks of roughly
/// `target_bytes` bytes each (at least one line per chunk).
///
/// Unlike [`split_stream`], the chunk *count* is data-driven: a 1 MiB
/// stream with `target_bytes = 64 KiB` yields ≈ 16 chunks. The chunked
/// executor feeds these to a worker pool, so many small chunks give
/// dynamic load balancing where [`split_stream`]'s `k` equal pieces give
/// static assignment.
///
/// Shares [`split_stream`]'s invariants: concatenation reproduces the
/// input, no line is split, every chunk but possibly the last ends with
/// `'\n'`. Edge cases are total: `target_bytes = 0` behaves as 1, a
/// target larger than the input yields one chunk, and non-empty input
/// never yields an empty chunk list.
pub fn split_chunks(input: &str, target_bytes: usize) -> Vec<&str> {
    chunk_boundaries(input.as_bytes(), target_bytes)
        .into_iter()
        .map(|(s, e)| &input[s..e])
        .collect()
}

/// Splits a stream into exactly two substreams at the line boundary closest
/// to the byte `at` (used by the synthesizer to make `⟨x1, x2⟩` pairs from a
/// generated combined stream). Returns `None` when no interior line boundary
/// exists (single-line streams cannot be split).
pub fn split_at_line_boundary(input: &str, at: usize) -> Option<(&str, &str)> {
    if input.len() < 2 {
        return None;
    }
    let bytes = input.as_bytes();
    let at = at.min(input.len() - 1).max(1);
    // Find the nearest '\n' whose *successor* position is a valid interior
    // split point (not 0, not len).
    let mut best: Option<usize> = None;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            let cut = i + 1;
            if cut == input.len() {
                continue;
            }
            match best {
                Some(b0) if b0.abs_diff(at) <= cut.abs_diff(at) => {}
                _ => best = Some(cut),
            }
        }
    }
    best.map(|cut| (&input[..cut], &input[cut..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn split_reassembles() {
        let s = "one\ntwo\nthree\nfour\nfive\n";
        for k in 1..=8 {
            let pieces = split_stream(s, k);
            assert!(pieces.len() <= k);
            assert_eq!(pieces.concat(), s, "k = {k}");
            for p in &pieces {
                assert!(p.ends_with('\n'), "piece {p:?} not a stream");
            }
        }
    }

    #[test]
    fn split_fewer_lines_than_workers() {
        let s = "only\n";
        let pieces = split_stream(s, 4);
        assert_eq!(pieces, vec!["only\n"]);
    }

    #[test]
    fn split_empty_input() {
        assert!(split_stream("", 4).is_empty());
    }

    #[test]
    fn chunks_reassemble_and_hit_target() {
        let s: String = (0..500).map(|i| format!("line number {i}\n")).collect();
        let chunks = split_chunks(&s, 256);
        assert_eq!(chunks.concat(), s);
        assert!(
            chunks.len() > 10,
            "expected many chunks, got {}",
            chunks.len()
        );
        for c in &chunks {
            assert!(c.ends_with('\n'));
            // Each chunk is at most target + one line.
            assert!(c.len() <= 256 + "line number 499\n".len());
        }
    }

    #[test]
    fn chunks_never_split_a_line() {
        let s = "short\nmuch-longer-than-the-target-size-line\nshort\n";
        let chunks = split_chunks(s, 4);
        assert_eq!(chunks.concat(), s);
        for c in &chunks {
            assert!(s.contains(c.trim_end_matches('\n')));
        }
        assert_eq!(chunks[1], "much-longer-than-the-target-size-line\n");
    }

    #[test]
    fn chunks_empty_input() {
        assert!(split_chunks("", 64).is_empty());
    }

    #[test]
    fn chunk_target_larger_than_input_is_one_chunk() {
        let s = "a\nb\n";
        assert_eq!(split_chunks(s, 1 << 20), vec![s]);
    }

    #[test]
    fn chunk_unterminated_tail_is_preserved() {
        let s = "a\nb\nno-newline-tail";
        let chunks = split_chunks(s, 2);
        assert_eq!(chunks.concat(), s);
        assert_eq!(*chunks.last().unwrap(), "no-newline-tail");
    }

    #[test]
    fn split_balances_bytes() {
        let s: String = (0..1000).map(|i| format!("line{i}\n")).collect();
        let pieces = split_stream(&s, 8);
        assert_eq!(pieces.len(), 8);
        let max = pieces.iter().map(|p| p.len()).max().unwrap();
        let min = pieces.iter().map(|p| p.len()).min().unwrap();
        // Balanced within one line length of each other.
        assert!(max - min <= 16, "max {max} min {min}");
    }

    #[test]
    fn split_unterminated_tail_stays_in_last_piece() {
        let s = "a\nb\nc"; // no trailing newline
        let pieces = split_stream(s, 2);
        assert_eq!(pieces.concat(), s);
        assert!(pieces.last().unwrap().ends_with('c'));
    }

    #[test]
    fn boundary_split_picks_interior_cut() {
        let s = "aa\nbb\ncc\n";
        let (x1, x2) = split_at_line_boundary(s, 4).unwrap();
        assert_eq!(format!("{x1}{x2}"), s);
        assert!(x1.ends_with('\n'));
        assert!(!x1.is_empty() && !x2.is_empty());
    }

    #[test]
    fn boundary_split_single_line_is_none() {
        assert_eq!(split_at_line_boundary("abc\n", 1), None);
        assert_eq!(split_at_line_boundary("\n", 0), None);
    }

    #[test]
    fn chunk_target_zero_is_total() {
        // target 0 behaves as 1: one chunk per line, no panic, no empties.
        let s = "a\nbb\nccc\n";
        let chunks = split_chunks(s, 0);
        assert_eq!(chunks, vec!["a\n", "bb\n", "ccc\n"]);
        assert!(split_chunks("", 0).is_empty());
    }

    #[test]
    fn chunk_nonempty_input_never_yields_empty_vec() {
        for target in [0, 1, 2, 7, usize::MAX] {
            for input in ["x", "x\n", "\n", "a\nb", "long-single-line"] {
                let chunks = split_chunks(input, target);
                assert!(!chunks.is_empty(), "target {target} input {input:?}");
                assert!(chunks.iter().all(|c| !c.is_empty()));
                assert_eq!(chunks.concat(), input);
            }
        }
    }

    #[test]
    fn chunk_single_long_line_is_one_chunk() {
        let line = "no-newline-anywhere-in-this-very-long-line";
        assert_eq!(split_chunks(line, 4), vec![line]);
        let line_nl = "one-terminated-line-longer-than-target\n";
        assert_eq!(split_chunks(line_nl, 4), vec![line_nl]);
    }

    #[test]
    fn bytes_and_str_splitters_agree() {
        use crate::Bytes;
        let s: String = (0..200).map(|i| format!("ln {i}\n")).collect();
        let b = Bytes::from(s.as_str());
        for k in [1, 2, 5, 13] {
            let from_str: Vec<&str> = split_stream(&s, k);
            let from_bytes = b.split_stream(k);
            assert_eq!(from_str.len(), from_bytes.len(), "k={k}");
            for (a, c) in from_str.iter().zip(&from_bytes) {
                assert_eq!(*a, c.as_str());
                assert!(c.shares_buffer(&b), "piece must be zero-copy");
            }
        }
        for target in [0, 1, 17, 1000, 1 << 20] {
            let from_str: Vec<&str> = split_chunks(&s, target);
            let from_bytes = b.split_chunks(target);
            assert_eq!(from_str.len(), from_bytes.len(), "target={target}");
            for (a, c) in from_str.iter().zip(&from_bytes) {
                assert_eq!(*a, c.as_str());
            }
        }
    }

    proptest! {
        #[test]
        fn prop_split_concat_identity(
            lines in proptest::collection::vec("[a-z]{0,8}", 0..50),
            k in 1usize..10,
        ) {
            let s: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let pieces = split_stream(&s, k);
            prop_assert_eq!(pieces.concat(), s.clone());
            prop_assert!(pieces.len() <= k);
            for p in &pieces {
                prop_assert!(p.ends_with('\n'));
            }
        }

        #[test]
        fn prop_chunks_partition_input(
            lines in proptest::collection::vec("[a-z]{0,12}", 0..60),
            target in 1usize..64,
        ) {
            let s: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let chunks = split_chunks(&s, target);
            prop_assert_eq!(chunks.concat(), s.clone());
            for c in &chunks {
                prop_assert!(!c.is_empty());
                prop_assert!(c.ends_with('\n'));
            }
            // Every chunk boundary falls on a line boundary: re-splitting
            // the concatenation by lines yields the original lines.
            let rejoined: Vec<&str> = s.lines().collect();
            let from_chunks: Vec<&str> = chunks.iter().flat_map(|c| c.lines()).collect();
            prop_assert_eq!(rejoined, from_chunks);
        }

        #[test]
        fn prop_boundary_split_is_stream_pair(
            lines in proptest::collection::vec("[a-z]{0,8}", 2..30),
            at in 0usize..400,
        ) {
            let s: String = lines.iter().map(|l| format!("{l}\n")).collect();
            if let Some((x1, x2)) = split_at_line_boundary(&s, at) {
                prop_assert!(x1.ends_with('\n'));
                prop_assert!(x2.ends_with('\n'));
                prop_assert_eq!(format!("{x1}{x2}"), s);
            }
        }
    }
}
