//! Shared-ownership byte slices: the zero-copy data plane.
//!
//! KumQuat's parallel executors split a stream into line-aligned pieces,
//! hand each piece to a command instance, and pass eliminated-combiner
//! outputs straight to the next stage. With owned `String`s every one of
//! those hand-offs is a memcpy of the piece — O(bytes) per stage. [`Bytes`]
//! makes the hand-off a refcount bump instead: it is an `Arc`-shared
//! buffer plus a range, so [`Bytes::slice`] and [`Bytes::clone`] are O(1)
//! and splitting an N-byte stream into k pieces allocates O(k), not O(N).
//!
//! [`Rope`] is the companion for the *gather* direction: stage outputs and
//! multi-file inputs accumulate as a segment list and flatten at most once,
//! when a contiguous view is actually demanded (and not at all when the
//! rope holds a single segment).
//!
//! # Backing stores
//!
//! A `Bytes` views one of two backings, chosen at construction and
//! invisible to every consumer:
//!
//! * **Heap** — an owned `Vec<u8>` (command outputs, test fixtures, small
//!   files). `From<String>`/`From<Vec<u8>>` move the buffer in, O(1).
//! * **Mmap** — a memory-mapped file region ([`MmapRegion`], unix only),
//!   created by the `kq-io` crate so multi-GB corpus files enter the data
//!   plane as O(1) maps instead of O(file) heap reads. The pages are
//!   demand-paged and evictable; the region is unmapped exactly once, when
//!   the last `Bytes` referencing it drops (the `Arc` refcount *is* the
//!   unmap lifecycle).
//!
//! Slicing, splitting, hashing, comparison, and `compact()` behave
//! identically across backings — the line-aligned splitters cut mapped
//! memory verbatim. The differences are confined to ownership hand-offs:
//! [`Bytes::into_string`] moves a uniquely-owned whole *heap* buffer but
//! must copy out of a mapped region (a map cannot become a `Vec`).
//!
//! **Sharp edge (SIGBUS):** a mapped region snapshots the file's length at
//! open time. If another process truncates the file while the map is live,
//! touching pages past the new end raises `SIGBUS` — this is inherent to
//! `mmap` and documented rather than defended against; the corpus inputs
//! are not mutated during a run. Heap backings are immune (the read
//! completed before the `Bytes` existed).
//!
//! ```
//! use kq_stream::Bytes;
//!
//! let stream = Bytes::from("alpha\nbeta\ngamma\n");
//! let pieces = stream.split_stream(2);
//! // Zero-copy: both pieces view the same allocation.
//! assert_eq!(pieces.len(), 2);
//! assert_eq!(pieces[0].as_str(), "alpha\nbeta\n");
//! assert!(pieces.iter().all(|p| p.shares_buffer(&stream)));
//! ```

use std::fmt;
use std::sync::Arc;

/// A read-only memory-mapped file region: the out-of-core backing for
/// [`Bytes`] (unix only; created by the `kq-io` crate).
///
/// Owns the mapping: dropping the region calls `munmap` exactly once.
/// Inside a `Bytes` the region sits behind an `Arc`, so the unmap happens
/// when the *last* clone or sub-slice referencing the map drops — O(1)
/// clones and slices of mapped files are as safe as heap ones.
///
/// See the [module docs](self) for the truncation/`SIGBUS` caveat.
#[cfg(unix)]
pub struct MmapRegion {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the region is an immutable, privately mapped byte range; no
// interior mutability, and `munmap` in Drop runs on whichever thread drops
// the last reference — both are thread-safe kernel operations.
#[cfg(unix)]
unsafe impl Send for MmapRegion {}
#[cfg(unix)]
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
impl MmapRegion {
    /// Takes ownership of a live mapping.
    ///
    /// # Safety
    /// `ptr` must be the non-`MAP_FAILED` result of an `mmap` call of
    /// exactly `len > 0` bytes, readable for the mapping's whole lifetime,
    /// and not unmapped by anyone else: this region's `Drop` performs the
    /// one `munmap`.
    pub unsafe fn from_raw(ptr: *mut u8, len: usize) -> MmapRegion {
        debug_assert!(!ptr.is_null() && len > 0);
        MmapRegion { ptr, len }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `from_raw`'s contract — `ptr` is a live readable mapping
        // of `len` bytes until this region drops.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: we own the mapping (from_raw's contract); this is the
        // single munmap of the region.
        unsafe {
            libc::munmap(self.ptr as *mut libc::c_void, self.len);
        }
    }
}

#[cfg(unix)]
impl fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MmapRegion({} bytes)", self.len)
    }
}

/// The storage behind a [`Bytes`]: an owned heap buffer or a mapped file
/// region. Everything above the backing works on `as_slice()` and cannot
/// tell the two apart.
enum Backing {
    Heap(Vec<u8>),
    #[cfg(unix)]
    Mmap(MmapRegion),
}

impl Backing {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Heap(v) => v,
            #[cfg(unix)]
            Backing::Mmap(m) => m.as_slice(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.as_slice().len()
    }
}

/// A cheaply clonable, cheaply sliceable view into shared immutable bytes.
///
/// Always holds valid UTF-8 in this workspace (every constructor the
/// pipeline uses starts from `str`, and the splitters only cut at `'\n'`
/// boundaries, which cannot fall inside a UTF-8 code point). The type
/// itself does not enforce UTF-8; use [`Bytes::to_str`] for checked
/// access and [`Bytes::as_str`] where the text invariant is established.
///
/// The backing store is a refcounted [`Backing`]: either an owned
/// `Vec<u8>` — so `From<String>`/`From<Vec<u8>>` *move* the buffer
/// instead of copying it, and commands wrapping their `String` output
/// stay O(1) — or a memory-mapped file region ([`MmapRegion`]) so
/// out-of-core inputs enter the data plane without a heap read. See the
/// [module docs](self) for the backing-store rules.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Backing>,
    start: usize,
    end: usize,
    /// The *entire backing buffer* is known-valid UTF-8 (set by the
    /// `str`/`String` constructors). A view into such a buffer is valid
    /// UTF-8 iff its two endpoints are char boundaries, so [`Bytes::to_str`]
    /// checks O(1) bytes instead of rescanning the payload at every
    /// pipeline stage.
    text: bool,
}

impl Bytes {
    /// An empty slice (no allocation is shared; cloning is still O(1)).
    pub fn new() -> Bytes {
        Bytes::from_heap(Vec::new(), true)
    }

    fn from_heap(vec: Vec<u8>, text: bool) -> Bytes {
        let end = vec.len();
        Bytes {
            buf: Arc::new(Backing::Heap(vec)),
            start: 0,
            end,
            text,
        }
    }

    /// Wraps a mapped file region as a whole-buffer view — the `kq-io`
    /// ingest door. O(1): no page is touched here. The bytes are *not*
    /// assumed to be UTF-8 (a file can hold anything); run the result
    /// through [`Bytes::into_text`] once to establish the text fast path,
    /// or let per-command validation reject foreign data lazily.
    #[cfg(unix)]
    pub fn from_mmap_region(region: MmapRegion) -> Bytes {
        let end = region.as_slice().len();
        Bytes {
            buf: Arc::new(Backing::Mmap(region)),
            start: 0,
            end,
            text: false,
        }
    }

    /// True when this view is backed by a memory-mapped file region (the
    /// zero-copy ingest tests use this to prove no heap read happened).
    pub fn is_mmap_backed(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(*self.buf, Backing::Mmap(_))
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// True when `pos` does not fall inside a multi-byte UTF-8 sequence of
    /// the backing buffer.
    #[inline]
    fn is_char_boundary(&self, pos: usize) -> bool {
        let buf = self.buf.as_slice();
        pos == 0 || pos == buf.len() || (buf[pos] & 0xC0) != 0x80
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes of this view.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf.as_slice()[self.start..self.end]
    }

    /// Checked UTF-8 view of the bytes.
    ///
    /// O(1) when the backing buffer came from `str`/`String` data (the
    /// endpoints are checked for char boundaries; the payload needs no
    /// rescan); a full validation scan only for byte-constructed buffers.
    #[inline]
    pub fn to_str(&self) -> Result<&str, std::str::Utf8Error> {
        if self.text && self.is_char_boundary(self.start) && self.is_char_boundary(self.end) {
            // SAFETY: `text` asserts the whole backing buffer is valid
            // UTF-8 (established at construction from `str`/`String`),
            // and a sub-slice of valid UTF-8 whose endpoints are char
            // boundaries is itself valid UTF-8.
            return Ok(unsafe { std::str::from_utf8_unchecked(self.as_bytes()) });
        }
        std::str::from_utf8(self.as_bytes())
    }

    /// UTF-8 view of the bytes.
    ///
    /// # Panics
    /// Panics when the bytes are not valid UTF-8. The pipeline only
    /// constructs `Bytes` from `str` data and slices at newline
    /// boundaries, so this holds throughout the workspace; callers
    /// ingesting foreign byte data should use [`Bytes::to_str`].
    #[inline]
    pub fn as_str(&self) -> &str {
        self.to_str().expect("Bytes holds non-UTF-8 data")
    }

    /// An owned `String` of the bytes. When this view covers a uniquely
    /// owned whole *heap* buffer (the common final-output case), the
    /// buffer is moved out — no copy; otherwise one allocation. A mapped
    /// region can never become a `Vec`, so mmap-backed views always copy
    /// out (and, when this was the last reference, unmap on return).
    pub fn into_string(self) -> String {
        if self.start == 0 && self.end == self.buf.len() {
            let (text, end) = (self.text, self.end);
            match Arc::try_unwrap(self.buf) {
                Ok(Backing::Heap(vec)) if text => {
                    // SAFETY: `text` asserts the whole buffer is valid
                    // UTF-8 (see `to_str`), and this view covers all of it.
                    return unsafe { String::from_utf8_unchecked(vec) };
                }
                Ok(Backing::Heap(vec)) => {
                    return String::from_utf8(vec).expect("Bytes holds non-UTF-8 data")
                }
                #[cfg(unix)]
                Ok(backing @ Backing::Mmap(_)) => {
                    // Unique but mapped: copy out; dropping `backing`
                    // afterwards performs the unmap.
                    let whole = Bytes {
                        buf: Arc::new(backing),
                        start: 0,
                        end,
                        text,
                    };
                    return whole.as_str().to_owned();
                }
                Err(buf) => {
                    // Still shared: copy, taking the text fast path for
                    // the validity check.
                    let whole = Bytes {
                        buf,
                        start: 0,
                        end,
                        text,
                    };
                    return whole.as_str().to_owned();
                }
            }
        }
        self.as_str().to_owned()
    }

    /// Establishes the text invariant for a whole-buffer view: validates
    /// the bytes as UTF-8 **once** and records the result, so every later
    /// [`Bytes::to_str`] across the pipeline is O(1) instead of an
    /// O(bytes) rescan. This is how ingest marks a freshly mapped (or
    /// byte-read) file as known text.
    ///
    /// The scan runs in bounded windows with a trailing
    /// [`Bytes::release_range`] hint, so validating a mapped multi-GB
    /// file keeps O(window) pages resident instead of pinning the whole
    /// map — the validated pages refault from the file when the pipeline
    /// actually consumes them. (Heap backings scan the same way; the
    /// release is a no-op.)
    ///
    /// Partial views validate but cannot record (the flag asserts the
    /// *whole backing* is UTF-8); they are returned unchanged.
    pub fn into_text(self) -> Result<Bytes, std::str::Utf8Error> {
        if self.text && self.is_char_boundary(self.start) && self.is_char_boundary(self.end) {
            return Ok(self);
        }
        const WINDOW: usize = 4 << 20;
        let bytes = self.as_bytes();
        let mut pos = 0usize;
        let mut released = 0usize;
        while pos < bytes.len() {
            let end = (pos + WINDOW).min(bytes.len());
            match std::str::from_utf8(&bytes[pos..end]) {
                Ok(_) => pos = end,
                // An incomplete final sequence at an interior window edge
                // is not an error — resume the next window at the char
                // boundary. (`valid_up_to() == 0` cannot stall: a UTF-8
                // sequence is at most 4 bytes and WINDOW is far larger,
                // so zero progress means genuinely invalid bytes.)
                Err(e) if e.error_len().is_none() && end < bytes.len() && e.valid_up_to() > 0 => {
                    pos += e.valid_up_to();
                }
                // Genuinely invalid: rescan the whole view so the returned
                // error carries offsets relative to the *view*, not to the
                // failing window (the error path may touch every page —
                // the caller is about to abort the ingest anyway).
                Err(_) => {
                    return Err(
                        std::str::from_utf8(bytes).expect_err("windowed scan found invalid bytes")
                    )
                }
            }
            if pos > released + 2 * WINDOW {
                let upto = pos - WINDOW;
                self.release_range(released..upto);
                released = upto;
            }
        }
        // Drop the tail too: without this, a view smaller than the release
        // hysteresis (2 × WINDOW) stays *fully* resident after validation —
        // for a spilled run that's every run pinned until its merge, which
        // defeats the memory bound the spill exists to provide.
        if released < bytes.len() {
            self.release_range(released..bytes.len());
        }
        let whole = self.start == 0 && self.end == self.buf.len();
        Ok(Bytes {
            text: self.text || whole,
            ..self
        })
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            buf: self.buf.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
            text: self.text,
        }
    }

    /// True when `other` views the same underlying allocation — the
    /// zero-copy tests use this to prove splitting did not copy.
    pub fn shares_buffer(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// Releases an oversized backing buffer: when this view covers less
    /// than a quarter of a non-trivial allocation, the bytes are copied
    /// into a right-sized buffer; otherwise the slice is returned as-is.
    ///
    /// Slice-returning commands (`head -n 1` of a 64 MiB stream) would
    /// otherwise pin the whole input allocation for as long as their
    /// output lives. Long-lived stores (the virtual filesystem) call this
    /// at the storage boundary; transient pipeline hand-offs do not.
    ///
    /// The same rule applies to both backings: a small slice of a large
    /// mapped file copies into a right-sized heap buffer (releasing the
    /// map when the last reference drops), so a few-line result never
    /// keeps a multi-GB file mapped — and never assumes the backing is a
    /// `Vec` it could shrink in place.
    pub fn compact(self) -> Bytes {
        const COMPACT_MIN_BACKING: usize = 4096;
        if self.buf.len() < COMPACT_MIN_BACKING || self.len() * 4 >= self.buf.len() {
            self
        } else {
            // The copy covers its whole new buffer, so it is text iff this
            // view is valid UTF-8 (O(1) to determine for text buffers).
            let text = self.to_str().is_ok();
            Bytes::from_heap(self.as_bytes().to_vec(), text)
        }
    }

    /// Number of `'\n'` bytes in the view (shared by the line-window and
    /// line-count commands; counting on raw bytes needs no UTF-8 view).
    pub fn count_newlines(&self) -> usize {
        self.as_bytes().iter().filter(|&&b| b == b'\n').count()
    }

    /// True when the final byte is `'\n'` (the stream predicate of
    /// Definition 3.1 on the byte plane).
    #[inline]
    pub fn ends_with_newline(&self) -> bool {
        self.as_bytes().last() == Some(&b'\n')
    }

    /// Splits into at most `k` contiguous newline-aligned pieces of
    /// roughly equal size — the zero-copy analogue of
    /// [`split_stream`](crate::split_stream). Each piece is an O(1) slice
    /// of this buffer; total allocation is the O(k) vector.
    pub fn split_stream(&self, k: usize) -> Vec<Bytes> {
        crate::split::stream_boundaries(self.as_bytes(), k)
            .into_iter()
            .map(|(s, e)| self.slice(s..e))
            .collect()
    }

    /// Splits into contiguous newline-aligned chunks of roughly
    /// `target_bytes` each — the zero-copy analogue of
    /// [`split_chunks`](crate::split_chunks).
    pub fn split_chunks(&self, target_bytes: usize) -> Vec<Bytes> {
        crate::split::chunk_boundaries(self.as_bytes(), target_bytes)
            .into_iter()
            .map(|(s, e)| self.slice(s..e))
            .collect()
    }

    /// Lazy [`Bytes::split_chunks`]: yields the same chunks in the same
    /// order, but computes each boundary on demand, touching only the
    /// pages of the chunk being produced. The streaming feeder uses this
    /// so a mapped multi-GB input is paged in chunk by chunk, just ahead
    /// of consumption, instead of being fully scanned (and made fully
    /// resident) before the first chunk is sent.
    pub fn chunks(&self, target_bytes: usize) -> ChunkIter<'_> {
        ChunkIter {
            source: self,
            pos: 0,
            target: target_bytes.max(1),
        }
    }

    /// Hints that `range` (relative to this view) will not be needed
    /// again: for a mapped backing, drops the resident pages wholly inside
    /// the range (`madvise(MADV_DONTNEED)`); a heap backing is untouched.
    ///
    /// Purely a memory-pressure hint — correctness is unaffected either
    /// way, because a read-only file-backed private map refaults dropped
    /// pages from the file on the next touch (at re-read cost; callers
    /// should only release data they have structurally finished with).
    /// The streaming feeder trails one of these behind its chunk cursor so
    /// a sequential pass over a mapped file keeps O(window) pages
    /// resident, not O(file).
    pub fn release_range(&self, range: std::ops::Range<usize>) {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "release {range:?} out of bounds for {} bytes",
            self.len()
        );
        #[cfg(unix)]
        if let Backing::Mmap(region) = &*self.buf {
            // Align to a generous 64 KiB grain: a multiple of every real
            // page size, so the madvise range is always page-aligned. Both
            // endpoints round *down*, so back-to-back windows from a
            // trailing cursor tile exactly: the grain block straddling a
            // shared boundary is dropped by the later window (whose head
            // bytes the caller already finished). Rounding the start up
            // instead would leave that block un-released at *every* window
            // boundary — a cursor advancing in ~grain-sized steps would
            // then leak most of the mapping. The end still rounds down: a
            // partially covered final block may hold bytes the caller
            // still needs.
            const GRAIN: usize = 1 << 16;
            let abs_start = (self.start + range.start) / GRAIN * GRAIN;
            let abs_end = (self.start + range.end) / GRAIN * GRAIN;
            if abs_start < abs_end {
                kq_trace::instant("ingest", "release")
                    .v((abs_end - abs_start) as f64)
                    .emit();
                // SAFETY: the region is live for as long as `self` exists
                // and the aligned range is inside it; DONTNEED on a
                // read-only file mapping only drops reconstructible pages.
                unsafe {
                    libc::madvise(
                        region.ptr.add(abs_start) as *mut libc::c_void,
                        abs_end - abs_start,
                        libc::MADV_DONTNEED,
                    );
                }
            }
        }
        #[cfg(not(unix))]
        let _ = range;
    }
}

/// The trailing-release discipline as a reusable cursor: callers making a
/// sequential pass over a (possibly mapped) [`Bytes`] report their consumed
/// frontier, and the cursor issues [`Bytes::release_range`] hints a bounded
/// `lag` behind it — batched so the madvise syscall fires once per `lag`
/// window, not once per advance. The lag keeps recently-read pages resident
/// for any short backtrack; everything older is structurally finished and
/// may be dropped. Heap backings make every call a no-op.
#[derive(Debug)]
pub struct ReleaseCursor {
    released: usize,
    lag: usize,
}

impl ReleaseCursor {
    /// A cursor that keeps roughly `lag` bytes behind the frontier
    /// resident.
    pub fn new(lag: usize) -> ReleaseCursor {
        ReleaseCursor {
            released: 0,
            lag: lag.max(1),
        }
    }

    /// How far behind the last released boundary each new release window
    /// re-sweeps. A release is only a hint: a fault near the frontier maps
    /// page-cache-hot neighbours *around* the touched address (kernel
    /// fault-around; with large page-cache folios a single fault can map
    /// the whole folio), so reads can quietly refault pages behind a
    /// boundary the cursor already passed — and a cursor that never looks
    /// back leaks them until the mapping dies. PMD size (2 MiB) covers the
    /// largest folio that can straddle a release boundary; the cost is one
    /// extra mostly-empty-PTE walk per madvise call.
    const BACKFILL_SWEEP: usize = 1 << 21;

    /// Notes that everything before `consumed` (clamped to the view) is
    /// finished with; once the frontier is two lag-windows past the last
    /// release, drops pages up to `consumed - lag`.
    pub fn advance(&mut self, source: &Bytes, consumed: usize) {
        let consumed = consumed.min(source.len());
        if consumed >= self.released + 2 * self.lag {
            let upto = consumed - self.lag;
            let start = self.released.saturating_sub(Self::BACKFILL_SWEEP);
            source.release_range(start..upto);
            self.released = upto;
        }
    }

    /// End of the pass: releases the whole remaining tail.
    pub fn finish(&mut self, source: &Bytes) {
        if self.released < source.len() {
            let start = self.released.saturating_sub(Self::BACKFILL_SWEEP);
            source.release_range(start..source.len());
            self.released = source.len();
        }
    }
}

/// Lazy chunk iterator over a [`Bytes`] — see [`Bytes::chunks`].
pub struct ChunkIter<'a> {
    source: &'a Bytes,
    pos: usize,
    target: usize,
}

impl Iterator for ChunkIter<'_> {
    type Item = Bytes;

    fn next(&mut self) -> Option<Bytes> {
        let bytes = self.source.as_bytes();
        if self.pos >= bytes.len() {
            return None;
        }
        let end = crate::split::next_chunk_end(bytes, self.pos, self.target);
        let chunk = self.source.slice(self.pos..end);
        self.pos = end;
        Some(chunk)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        // O(1): the String's buffer is moved, not copied.
        Bytes::from_heap(s.into_bytes(), true)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from_heap(s.as_bytes().to_vec(), true)
    }
}

impl From<&String> for Bytes {
    fn from(s: &String) -> Bytes {
        Bytes::from(s.as_str())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        // O(1): the Vec is moved, not copied. Validity is not assumed;
        // `to_str` on the result performs a full UTF-8 check.
        Bytes::from_heap(v, false)
    }
}

impl From<&Bytes> for Bytes {
    fn from(b: &Bytes) -> Bytes {
        b.clone()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Bytes {}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<String> for Bytes {
    fn eq(&self, other: &String) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<Bytes> for String {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<Bytes> for &str {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_str() {
            Ok(s) => write!(f, "{s:?}"),
            Err(_) => write!(f, "Bytes({:?})", self.as_bytes()),
        }
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_str() {
            Ok(s) => f.write_str(s),
            Err(_) => write!(f, "{:?}", self.as_bytes()),
        }
    }
}

/// A segment list over [`Bytes`]: concatenation without flattening.
///
/// Stage outputs, multi-file inputs, and k-way `concat` combines push
/// their pieces here; the rope flattens into one contiguous [`Bytes`]
/// only when [`Rope::into_bytes`] is called — and even then a
/// single-segment rope hands back its segment with no copy at all.
#[derive(Debug, Clone)]
pub struct Rope {
    segments: Vec<Bytes>,
    len: usize,
    /// Every pushed segment was valid UTF-8, so the gathered buffer is
    /// too (concatenation preserves validity); lets [`Rope::into_bytes`]
    /// hand the fast [`Bytes::to_str`] path onward.
    text: bool,
}

impl Default for Rope {
    fn default() -> Rope {
        Rope {
            segments: Vec::new(),
            len: 0,
            text: true,
        }
    }
}

impl Rope {
    /// An empty rope.
    pub fn new() -> Rope {
        Rope::default()
    }

    /// Appends a segment (O(1); empty segments are dropped).
    pub fn push(&mut self, segment: Bytes) {
        if !segment.is_empty() {
            self.text = self.text && segment.to_str().is_ok();
            self.len += segment.len();
            self.segments.push(segment);
        }
    }

    /// Total byte length across segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// Consumes the rope into its segments (zero-copy).
    pub fn into_segments(self) -> Vec<Bytes> {
        self.segments
    }

    /// Flattens into one contiguous [`Bytes`]. A rope of zero or one
    /// segments is returned without copying, and so is a rope whose
    /// segments are *adjacent views of one shared backing* — the shape
    /// every executor sink produces when it re-gathers the chunks of a
    /// materialized stage output (for a spilled sort that output is a
    /// multi-hundred-MiB mapped merge file, and the gather memcpy this
    /// avoids would be the run's peak-RSS high-water mark). Only disjoint
    /// or reordered segments pay the single gather memcpy.
    pub fn into_bytes(mut self) -> Bytes {
        match self.segments.len() {
            0 => Bytes::new(),
            1 => self.segments.pop().expect("one segment"),
            _ => {
                if let Some(joined) = Rope::coalesce(&self.segments) {
                    return joined;
                }
                let mut out = Vec::with_capacity(self.len);
                for seg in &self.segments {
                    out.extend_from_slice(seg.as_bytes());
                }
                Bytes::from_heap(out, self.text)
            }
        }
    }

    /// The zero-copy reassembly fast path: when every segment views the
    /// same backing buffer and they tile it back-to-back in order, the
    /// concatenation *is* the spanning view.
    fn coalesce(segments: &[Bytes]) -> Option<Bytes> {
        let first = segments.first()?;
        let mut end = first.end;
        for seg in &segments[1..] {
            if !Arc::ptr_eq(&first.buf, &seg.buf) || seg.start != end {
                return None;
            }
            end = seg.end;
        }
        Some(Bytes {
            buf: first.buf.clone(),
            start: first.start,
            end,
            // Same backing buffer, so every segment carries the same
            // whole-buffer text flag.
            text: first.text,
        })
    }
}

impl FromIterator<Bytes> for Rope {
    fn from_iter<I: IntoIterator<Item = Bytes>>(iter: I) -> Rope {
        let mut rope = Rope::new();
        for seg in iter {
            rope.push(seg);
        }
        rope
    }
}

impl From<Vec<Bytes>> for Rope {
    fn from(segments: Vec<Bytes>) -> Rope {
        segments.into_iter().collect()
    }
}

/// Flattens a piece list into one contiguous [`Bytes`] (single-segment
/// lists are returned without copying). Convenience for executors.
pub fn concat_bytes<'a>(pieces: impl IntoIterator<Item = &'a Bytes>) -> Bytes {
    pieces.into_iter().cloned().collect::<Rope>().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy() {
        let b = Bytes::from("hello\nworld\n");
        let s = b.slice(6..12);
        assert_eq!(s.as_str(), "world\n");
        assert!(s.shares_buffer(&b));
        assert_eq!(s.slice(0..0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from("abc").slice(1..9);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from("abc");
        assert_eq!(b, "abc");
        assert_eq!(b, String::from("abc"));
        assert_eq!("abc", b);
        assert_eq!(b, Bytes::from("abc"));
        assert_ne!(b, Bytes::from("abd"));
    }

    #[test]
    fn split_stream_shares_buffer() {
        let b = Bytes::from("a\nb\nc\nd\ne\nf\n");
        let pieces = b.split_stream(3);
        assert_eq!(concat_bytes(&pieces), b);
        for p in &pieces {
            assert!(p.shares_buffer(&b));
            assert!(p.ends_with_newline());
        }
    }

    #[test]
    fn split_chunks_shares_buffer() {
        let b = Bytes::from("aa\nbb\ncc\ndd\n");
        let chunks = b.split_chunks(4);
        assert_eq!(concat_bytes(&chunks), b);
        assert!(chunks.iter().all(|c| c.shares_buffer(&b)));
    }

    #[test]
    fn rope_single_segment_no_copy() {
        let b = Bytes::from("payload\n");
        let mut rope = Rope::new();
        rope.push(Bytes::new());
        rope.push(b.clone());
        let out = rope.into_bytes();
        assert!(out.shares_buffer(&b), "single-segment rope must not copy");
    }

    #[test]
    fn rope_concatenates_in_order() {
        let rope: Rope = ["a\n", "b\n", "", "c\n"]
            .into_iter()
            .map(Bytes::from)
            .collect();
        assert_eq!(rope.segment_count(), 3);
        assert_eq!(rope.len(), 6);
        assert_eq!(rope.into_bytes(), "a\nb\nc\n");
    }

    #[test]
    fn empty_rope_is_empty_bytes() {
        assert_eq!(Rope::new().into_bytes(), Bytes::new());
        assert!(Rope::new().is_empty());
    }

    #[test]
    fn rope_of_adjacent_slices_coalesces_without_copying() {
        // The executor-sink shape: one stream cut into chunks, re-gathered
        // in order. Reassembly must return a view of the original backing.
        let b = Bytes::from("alpha\nbeta\ngamma\ndelta\n");
        let rope: Rope = b.chunks(6).collect();
        assert!(rope.segment_count() > 1, "test needs several chunks");
        let out = rope.into_bytes();
        assert_eq!(out, b);
        assert!(out.shares_buffer(&b), "adjacent slices must coalesce");
        // Reordered, gapped, or foreign segments fall back to the gather.
        let gapped: Rope = [b.slice(0..6), b.slice(11..17)].into_iter().collect();
        assert_eq!(gapped.into_bytes(), "alpha\ngamma\n");
        let mixed: Rope = [b.slice(0..6), Bytes::from("x\n")].into_iter().collect();
        assert_eq!(mixed.into_bytes(), "alpha\nx\n");
    }

    #[test]
    fn compact_releases_oversized_backing() {
        let big = Bytes::from("x\n".repeat(8192)); // 16 KiB backing
        let tiny = big.slice(0..2).compact();
        assert_eq!(tiny, "x\n");
        assert!(
            !tiny.shares_buffer(&big),
            "tiny slice must drop the 16 KiB buffer"
        );
        // A slice covering most of the buffer stays shared.
        let most = big.slice(0..big.len() - 2).compact();
        assert!(most.shares_buffer(&big));
        // Small backings are never worth compacting.
        let small = Bytes::from("abcdef\n");
        let piece = small.slice(0..1).compact();
        assert!(piece.shares_buffer(&small));
    }

    #[test]
    fn lazy_chunks_agree_with_eager_split() {
        for input in ["", "a\n", "aa\nbb\ncc\ndd\n", "a\nb\nunterminated"] {
            let b = Bytes::from(input);
            for target in [1usize, 3, 5, 1 << 20] {
                let eager = b.split_chunks(target);
                let lazy: Vec<Bytes> = b.chunks(target).collect();
                assert_eq!(eager, lazy, "input {input:?} target {target}");
                assert!(lazy.iter().all(|c| c.shares_buffer(&b)));
            }
        }
    }

    #[test]
    fn into_text_error_offsets_are_view_relative_across_windows() {
        // Invalid byte past the first 4 MiB validation window: the error
        // must locate it relative to the view, not the failing window.
        let bad_at = 5 * 1024 * 1024;
        let mut data = vec![b'a'; bad_at];
        data.push(0xFF);
        data.push(b'\n');
        let err = Bytes::from(data).into_text().unwrap_err();
        assert_eq!(err.valid_up_to(), bad_at);
    }

    #[test]
    fn into_text_handles_chars_straddling_window_edges() {
        let b = Bytes::from("héllo wörld\n");
        let text = b.into_text().unwrap();
        assert!(text.to_str().is_ok());
    }

    #[test]
    fn release_range_is_inert_on_heap_backings() {
        let b = Bytes::from("a\nb\nc\n");
        b.release_range(0..b.len());
        b.release_range(2..2);
        assert_eq!(b, "a\nb\nc\n");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn release_range_checks_bounds() {
        Bytes::from("ab").release_range(0..9);
    }

    #[test]
    fn release_cursor_trails_and_drains() {
        // Heap backing: every release is a no-op, so this checks only the
        // cursor arithmetic (no panic, in-bounds ranges, full drain).
        let b = Bytes::from("line\n".repeat(100));
        let mut cursor = ReleaseCursor::new(64);
        for consumed in (0..=b.len()).step_by(37) {
            cursor.advance(&b, consumed);
        }
        cursor.advance(&b, b.len() + 999); // clamped, not a panic
        cursor.finish(&b);
        assert_eq!(b.as_bytes().len(), 500, "data untouched by hints");
    }

    #[test]
    fn display_and_debug() {
        let b = Bytes::from("x\n");
        assert_eq!(format!("{b}"), "x\n");
        assert_eq!(format!("{b:?}"), "\"x\\n\"");
    }
}
