//! Shared-ownership byte slices: the zero-copy data plane.
//!
//! KumQuat's parallel executors split a stream into line-aligned pieces,
//! hand each piece to a command instance, and pass eliminated-combiner
//! outputs straight to the next stage. With owned `String`s every one of
//! those hand-offs is a memcpy of the piece — O(bytes) per stage. [`Bytes`]
//! makes the hand-off a refcount bump instead: it is an `Arc`-shared
//! buffer plus a range, so [`Bytes::slice`] and [`Bytes::clone`] are O(1)
//! and splitting an N-byte stream into k pieces allocates O(k), not O(N).
//!
//! [`Rope`] is the companion for the *gather* direction: stage outputs and
//! multi-file inputs accumulate as a segment list and flatten at most once,
//! when a contiguous view is actually demanded (and not at all when the
//! rope holds a single segment).
//!
//! ```
//! use kq_stream::Bytes;
//!
//! let stream = Bytes::from("alpha\nbeta\ngamma\n");
//! let pieces = stream.split_stream(2);
//! // Zero-copy: both pieces view the same allocation.
//! assert_eq!(pieces.len(), 2);
//! assert_eq!(pieces[0].as_str(), "alpha\nbeta\n");
//! assert!(pieces.iter().all(|p| p.shares_buffer(&stream)));
//! ```

use std::fmt;
use std::sync::Arc;

/// A cheaply clonable, cheaply sliceable view into shared immutable bytes.
///
/// Always holds valid UTF-8 in this workspace (every constructor the
/// pipeline uses starts from `str`, and the splitters only cut at `'\n'`
/// boundaries, which cannot fall inside a UTF-8 code point). The type
/// itself does not enforce UTF-8; use [`Bytes::to_str`] for checked
/// access and [`Bytes::as_str`] where the text invariant is established.
///
/// The backing store is `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// `From<String>`/`From<Vec<u8>>` *move* the buffer instead of copying it
/// into a fresh slice allocation — commands produce their output as
/// `String`, and wrapping that output must stay O(1).
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
    /// The *entire backing buffer* is known-valid UTF-8 (set by the
    /// `str`/`String` constructors). A view into such a buffer is valid
    /// UTF-8 iff its two endpoints are char boundaries, so [`Bytes::to_str`]
    /// checks O(1) bytes instead of rescanning the payload at every
    /// pipeline stage.
    text: bool,
}

impl Bytes {
    /// An empty slice (no allocation is shared; cloning is still O(1)).
    pub fn new() -> Bytes {
        Bytes::from_arc(Arc::new(Vec::new()), true)
    }

    fn from_arc(buf: Arc<Vec<u8>>, text: bool) -> Bytes {
        let end = buf.len();
        Bytes {
            buf,
            start: 0,
            end,
            text,
        }
    }

    /// True when `pos` does not fall inside a multi-byte UTF-8 sequence of
    /// the backing buffer.
    #[inline]
    fn is_char_boundary(&self, pos: usize) -> bool {
        pos == 0 || pos == self.buf.len() || (self.buf[pos] & 0xC0) != 0x80
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes of this view.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Checked UTF-8 view of the bytes.
    ///
    /// O(1) when the backing buffer came from `str`/`String` data (the
    /// endpoints are checked for char boundaries; the payload needs no
    /// rescan); a full validation scan only for byte-constructed buffers.
    #[inline]
    pub fn to_str(&self) -> Result<&str, std::str::Utf8Error> {
        if self.text && self.is_char_boundary(self.start) && self.is_char_boundary(self.end) {
            // SAFETY: `text` asserts the whole backing buffer is valid
            // UTF-8 (established at construction from `str`/`String`),
            // and a sub-slice of valid UTF-8 whose endpoints are char
            // boundaries is itself valid UTF-8.
            return Ok(unsafe { std::str::from_utf8_unchecked(self.as_bytes()) });
        }
        std::str::from_utf8(self.as_bytes())
    }

    /// UTF-8 view of the bytes.
    ///
    /// # Panics
    /// Panics when the bytes are not valid UTF-8. The pipeline only
    /// constructs `Bytes` from `str` data and slices at newline
    /// boundaries, so this holds throughout the workspace; callers
    /// ingesting foreign byte data should use [`Bytes::to_str`].
    #[inline]
    pub fn as_str(&self) -> &str {
        self.to_str().expect("Bytes holds non-UTF-8 data")
    }

    /// An owned `String` of the bytes. When this view covers a uniquely
    /// owned whole buffer (the common final-output case), the buffer is
    /// moved out — no copy; otherwise one allocation.
    pub fn into_string(self) -> String {
        if self.start == 0 && self.end == self.buf.len() {
            let text = self.text;
            match Arc::try_unwrap(self.buf) {
                Ok(vec) if text => {
                    // SAFETY: `text` asserts the whole buffer is valid
                    // UTF-8 (see `to_str`), and this view covers all of it.
                    return unsafe { String::from_utf8_unchecked(vec) };
                }
                Ok(vec) => return String::from_utf8(vec).expect("Bytes holds non-UTF-8 data"),
                Err(buf) => {
                    // Still shared: copy, taking the text fast path for
                    // the validity check.
                    return Bytes::from_arc(buf, text).as_str().to_owned();
                }
            }
        }
        self.as_str().to_owned()
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            buf: self.buf.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
            text: self.text,
        }
    }

    /// True when `other` views the same underlying allocation — the
    /// zero-copy tests use this to prove splitting did not copy.
    pub fn shares_buffer(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// Releases an oversized backing buffer: when this view covers less
    /// than a quarter of a non-trivial allocation, the bytes are copied
    /// into a right-sized buffer; otherwise the slice is returned as-is.
    ///
    /// Slice-returning commands (`head -n 1` of a 64 MiB stream) would
    /// otherwise pin the whole input allocation for as long as their
    /// output lives. Long-lived stores (the virtual filesystem) call this
    /// at the storage boundary; transient pipeline hand-offs do not.
    pub fn compact(self) -> Bytes {
        const COMPACT_MIN_BACKING: usize = 4096;
        if self.buf.len() < COMPACT_MIN_BACKING || self.len() * 4 >= self.buf.len() {
            self
        } else {
            // The copy covers its whole new buffer, so it is text iff this
            // view is valid UTF-8 (O(1) to determine for text buffers).
            let text = self.to_str().is_ok();
            let end = self.len();
            Bytes {
                buf: Arc::new(self.as_bytes().to_vec()),
                start: 0,
                end,
                text,
            }
        }
    }

    /// Number of `'\n'` bytes in the view (shared by the line-window and
    /// line-count commands; counting on raw bytes needs no UTF-8 view).
    pub fn count_newlines(&self) -> usize {
        self.as_bytes().iter().filter(|&&b| b == b'\n').count()
    }

    /// True when the final byte is `'\n'` (the stream predicate of
    /// Definition 3.1 on the byte plane).
    #[inline]
    pub fn ends_with_newline(&self) -> bool {
        self.as_bytes().last() == Some(&b'\n')
    }

    /// Splits into at most `k` contiguous newline-aligned pieces of
    /// roughly equal size — the zero-copy analogue of
    /// [`split_stream`](crate::split_stream). Each piece is an O(1) slice
    /// of this buffer; total allocation is the O(k) vector.
    pub fn split_stream(&self, k: usize) -> Vec<Bytes> {
        crate::split::stream_boundaries(self.as_bytes(), k)
            .into_iter()
            .map(|(s, e)| self.slice(s..e))
            .collect()
    }

    /// Splits into contiguous newline-aligned chunks of roughly
    /// `target_bytes` each — the zero-copy analogue of
    /// [`split_chunks`](crate::split_chunks).
    pub fn split_chunks(&self, target_bytes: usize) -> Vec<Bytes> {
        crate::split::chunk_boundaries(self.as_bytes(), target_bytes)
            .into_iter()
            .map(|(s, e)| self.slice(s..e))
            .collect()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        // O(1): the String's buffer is moved, not copied.
        Bytes::from_arc(Arc::new(s.into_bytes()), true)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from_arc(Arc::new(s.as_bytes().to_vec()), true)
    }
}

impl From<&String> for Bytes {
    fn from(s: &String) -> Bytes {
        Bytes::from(s.as_str())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        // O(1): the Vec is moved, not copied. Validity is not assumed;
        // `to_str` on the result performs a full UTF-8 check.
        Bytes::from_arc(Arc::new(v), false)
    }
}

impl From<&Bytes> for Bytes {
    fn from(b: &Bytes) -> Bytes {
        b.clone()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Bytes {}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<String> for Bytes {
    fn eq(&self, other: &String) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<Bytes> for String {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<Bytes> for &str {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_str() {
            Ok(s) => write!(f, "{s:?}"),
            Err(_) => write!(f, "Bytes({:?})", self.as_bytes()),
        }
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_str() {
            Ok(s) => f.write_str(s),
            Err(_) => write!(f, "{:?}", self.as_bytes()),
        }
    }
}

/// A segment list over [`Bytes`]: concatenation without flattening.
///
/// Stage outputs, multi-file inputs, and k-way `concat` combines push
/// their pieces here; the rope flattens into one contiguous [`Bytes`]
/// only when [`Rope::into_bytes`] is called — and even then a
/// single-segment rope hands back its segment with no copy at all.
#[derive(Debug, Clone)]
pub struct Rope {
    segments: Vec<Bytes>,
    len: usize,
    /// Every pushed segment was valid UTF-8, so the gathered buffer is
    /// too (concatenation preserves validity); lets [`Rope::into_bytes`]
    /// hand the fast [`Bytes::to_str`] path onward.
    text: bool,
}

impl Default for Rope {
    fn default() -> Rope {
        Rope {
            segments: Vec::new(),
            len: 0,
            text: true,
        }
    }
}

impl Rope {
    /// An empty rope.
    pub fn new() -> Rope {
        Rope::default()
    }

    /// Appends a segment (O(1); empty segments are dropped).
    pub fn push(&mut self, segment: Bytes) {
        if !segment.is_empty() {
            self.text = self.text && segment.to_str().is_ok();
            self.len += segment.len();
            self.segments.push(segment);
        }
    }

    /// Total byte length across segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// Consumes the rope into its segments (zero-copy).
    pub fn into_segments(self) -> Vec<Bytes> {
        self.segments
    }

    /// Flattens into one contiguous [`Bytes`]. A rope of zero or one
    /// segments is returned without copying; otherwise this performs the
    /// single gather memcpy the contiguous consumer requires.
    pub fn into_bytes(mut self) -> Bytes {
        match self.segments.len() {
            0 => Bytes::new(),
            1 => self.segments.pop().expect("one segment"),
            _ => {
                let mut out = Vec::with_capacity(self.len);
                for seg in &self.segments {
                    out.extend_from_slice(seg.as_bytes());
                }
                let end = out.len();
                Bytes {
                    buf: Arc::new(out),
                    start: 0,
                    end,
                    text: self.text,
                }
            }
        }
    }
}

impl FromIterator<Bytes> for Rope {
    fn from_iter<I: IntoIterator<Item = Bytes>>(iter: I) -> Rope {
        let mut rope = Rope::new();
        for seg in iter {
            rope.push(seg);
        }
        rope
    }
}

impl From<Vec<Bytes>> for Rope {
    fn from(segments: Vec<Bytes>) -> Rope {
        segments.into_iter().collect()
    }
}

/// Flattens a piece list into one contiguous [`Bytes`] (single-segment
/// lists are returned without copying). Convenience for executors.
pub fn concat_bytes<'a>(pieces: impl IntoIterator<Item = &'a Bytes>) -> Bytes {
    pieces.into_iter().cloned().collect::<Rope>().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy() {
        let b = Bytes::from("hello\nworld\n");
        let s = b.slice(6..12);
        assert_eq!(s.as_str(), "world\n");
        assert!(s.shares_buffer(&b));
        assert_eq!(s.slice(0..0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from("abc").slice(1..9);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from("abc");
        assert_eq!(b, "abc");
        assert_eq!(b, String::from("abc"));
        assert_eq!("abc", b);
        assert_eq!(b, Bytes::from("abc"));
        assert_ne!(b, Bytes::from("abd"));
    }

    #[test]
    fn split_stream_shares_buffer() {
        let b = Bytes::from("a\nb\nc\nd\ne\nf\n");
        let pieces = b.split_stream(3);
        assert_eq!(concat_bytes(&pieces), b);
        for p in &pieces {
            assert!(p.shares_buffer(&b));
            assert!(p.ends_with_newline());
        }
    }

    #[test]
    fn split_chunks_shares_buffer() {
        let b = Bytes::from("aa\nbb\ncc\ndd\n");
        let chunks = b.split_chunks(4);
        assert_eq!(concat_bytes(&chunks), b);
        assert!(chunks.iter().all(|c| c.shares_buffer(&b)));
    }

    #[test]
    fn rope_single_segment_no_copy() {
        let b = Bytes::from("payload\n");
        let mut rope = Rope::new();
        rope.push(Bytes::new());
        rope.push(b.clone());
        let out = rope.into_bytes();
        assert!(out.shares_buffer(&b), "single-segment rope must not copy");
    }

    #[test]
    fn rope_concatenates_in_order() {
        let rope: Rope = ["a\n", "b\n", "", "c\n"]
            .into_iter()
            .map(Bytes::from)
            .collect();
        assert_eq!(rope.segment_count(), 3);
        assert_eq!(rope.len(), 6);
        assert_eq!(rope.into_bytes(), "a\nb\nc\n");
    }

    #[test]
    fn empty_rope_is_empty_bytes() {
        assert_eq!(Rope::new().into_bytes(), Bytes::new());
        assert!(Rope::new().is_empty());
    }

    #[test]
    fn compact_releases_oversized_backing() {
        let big = Bytes::from("x\n".repeat(8192)); // 16 KiB backing
        let tiny = big.slice(0..2).compact();
        assert_eq!(tiny, "x\n");
        assert!(
            !tiny.shares_buffer(&big),
            "tiny slice must drop the 16 KiB buffer"
        );
        // A slice covering most of the buffer stays shared.
        let most = big.slice(0..big.len() - 2).compact();
        assert!(most.shares_buffer(&big));
        // Small backings are never worth compacting.
        let small = Bytes::from("abcdef\n");
        let piece = small.slice(0..1).compact();
        assert!(piece.shares_buffer(&small));
    }

    #[test]
    fn display_and_debug() {
        let b = Bytes::from("x\n");
        assert_eq!(format!("{b}"), "x\n");
        assert_eq!(format!("{b:?}"), "\"x\\n\"");
    }
}
