//! `sort` — line sorting with the GNU flag subset used by the corpus:
//! plain, `-n`, `-r`, `-f`, `-u`, `-k1n`-style single keys, `-m` (merge
//! pre-sorted inputs), and the combined forms (`-rn`, `-nr`, `-k1n`).
//!
//! Comparison model mirrors GNU sort under `LC_COLLATE=C`: the flagged key
//! comparison first, then (absent `-u`/`-s`) a *last-resort* whole-line byte
//! comparison; `-r` reverses the final result. `-u` keeps the first line of
//! each run of key-equal lines.
//!
//! The merge mode doubles as the implementation of the combiner DSL's
//! `merge <flags>` operator (`unixMerge` in the paper, realized as
//! `sort -m <flags>`), exposed programmatically via [`merge_streams`].

use crate::{Bytes, CmdError, ExecContext, UnixCommand};
use std::cmp::Ordering;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct SortFlags {
    numeric: bool,
    reverse: bool,
    fold_case: bool,
    unique: bool,
    /// `-k1n`: sort by the first whitespace-delimited field, numerically.
    key_field1_numeric: bool,
}

/// The `sort` command.
pub struct SortCmd {
    flags: SortFlags,
    merge: bool,
    files: Vec<String>,
    display: String,
}

impl SortCmd {
    /// Parses `sort` arguments.
    pub fn parse(args: &[String]) -> Result<SortCmd, CmdError> {
        let mut flags = SortFlags::default();
        let mut merge = false;
        let mut files = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(opt) = a.strip_prefix("--") {
                if opt.starts_with("parallel=") {
                    // The paper's infrastructure pins sort to one thread;
                    // ours is single-threaded regardless.
                    continue;
                }
                return Err(CmdError::new("sort", format!("unknown option --{opt}")));
            }
            if let Some(body) = a.strip_prefix('-') {
                if body.is_empty() {
                    files.push("-".to_owned());
                    continue;
                }
                let mut chars = body.chars().peekable();
                while let Some(f) = chars.next() {
                    match f {
                        'n' => flags.numeric = true,
                        'r' => flags.reverse = true,
                        'f' => flags.fold_case = true,
                        'u' => flags.unique = true,
                        'm' => merge = true,
                        's' => {} // we are stable by construction
                        'k' => {
                            // Key spec: rest of this word, or next word.
                            let spec: String = chars.by_ref().collect();
                            let spec = if spec.is_empty() {
                                it.next()
                                    .ok_or_else(|| CmdError::new("sort", "missing key spec"))?
                                    .clone()
                            } else {
                                spec
                            };
                            parse_key(&spec, &mut flags)?;
                        }
                        other => {
                            return Err(CmdError::new("sort", format!("unknown flag -{other}")))
                        }
                    }
                }
            } else {
                files.push(a.clone());
            }
        }
        let mut display = String::from("sort");
        for a in args {
            display.push(' ');
            display.push_str(a);
        }
        Ok(SortCmd {
            flags,
            merge,
            files,
            display,
        })
    }
}

fn parse_key(spec: &str, flags: &mut SortFlags) -> Result<(), CmdError> {
    // Supported forms: "1", "1n", "1,1n", "1n,1" — i.e. field one with
    // optional numeric modifier, which is all the corpus uses.
    let first = spec.split(',').next().unwrap_or(spec);
    let field: String = first.chars().take_while(|c| c.is_ascii_digit()).collect();
    let mods: String = spec.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    if field != "1" {
        return Err(CmdError::new(
            "sort",
            format!("unsupported key field {spec:?} (only field 1)"),
        ));
    }
    for m in mods.chars() {
        match m {
            'n' => flags.key_field1_numeric = true,
            'r' => flags.reverse = true,
            'f' => flags.fold_case = true,
            other => {
                return Err(CmdError::new(
                    "sort",
                    format!("unsupported key modifier {other}"),
                ))
            }
        }
    }
    if mods.is_empty() {
        flags.key_field1_numeric = false;
    }
    Ok(())
}

/// GNU-style numeric prefix value: optional blanks, optional sign, digits
/// with optional decimal part. Non-numeric prefixes count as zero.
fn numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start_matches([' ', '\t']);
    let mut end = 0;
    let bytes = t.as_bytes();
    if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
        end += 1;
    }
    let mut seen_digit = false;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
        seen_digit = true;
    }
    if end < bytes.len() && bytes[end] == b'.' {
        let mut e2 = end + 1;
        while e2 < bytes.len() && bytes[e2].is_ascii_digit() {
            e2 += 1;
            seen_digit = true;
        }
        if e2 > end + 1 {
            end = e2;
        }
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse().unwrap_or(0.0)
}

fn key_compare(a: &str, b: &str, flags: SortFlags) -> Ordering {
    if flags.key_field1_numeric {
        let fa = a.split_ascii_whitespace().next().unwrap_or("");
        let fb = b.split_ascii_whitespace().next().unwrap_or("");
        return numeric_prefix(fa)
            .partial_cmp(&numeric_prefix(fb))
            .unwrap_or(Ordering::Equal);
    }
    if flags.numeric {
        return numeric_prefix(a)
            .partial_cmp(&numeric_prefix(b))
            .unwrap_or(Ordering::Equal);
    }
    if flags.fold_case {
        // GNU -f folds lowercase onto uppercase (byte-wise under C).
        let fold = |s: &str| {
            s.bytes()
                .map(|c| c.to_ascii_uppercase())
                .collect::<Vec<_>>()
        };
        return fold(a).cmp(&fold(b));
    }
    a.as_bytes().cmp(b.as_bytes())
}

/// Full comparator: key order, then last-resort byte order, then `-r`.
fn line_compare(a: &str, b: &str, flags: SortFlags) -> Ordering {
    let primary = key_compare(a, b, flags);
    let ord = if primary != Ordering::Equal || flags.unique {
        primary
    } else {
        a.as_bytes().cmp(b.as_bytes())
    };
    if flags.reverse {
        ord.reverse()
    } else {
        ord
    }
}

fn sort_lines(input: &str, flags: SortFlags) -> String {
    let mut lines: Vec<&str> = kq_stream::lines_of(input).collect();
    lines.sort_by(|a, b| line_compare(a, b, flags));
    let mut out = String::with_capacity(input.len() + 1);
    let mut prev: Option<&str> = None;
    for l in lines {
        if flags.unique {
            if let Some(p) = prev {
                if key_compare(p, l, flags) == Ordering::Equal {
                    continue;
                }
            }
        }
        out.push_str(l);
        out.push('\n');
        prev = Some(l);
    }
    out
}

fn merge_sorted(streams: &[&str], flags: SortFlags) -> String {
    let mut out = String::new();
    merge_sorted_to(streams, flags, usize::MAX, &mut |frag, _| {
        out.push_str(frag);
        Ok(())
    })
    .expect("in-memory merge sink is infallible");
    out
}

/// The fragment consumer for [`merge_streams_to`]: receives each merged
/// line-aligned fragment plus, per input stream, the count of bytes the
/// merge has consumed from it so far.
pub type MergeSink<'a> = dyn FnMut(&str, &[usize]) -> Result<(), CmdError> + 'a;

/// The emit-based merge behind both [`merge_streams`] (one flat string)
/// and [`merge_streams_to`] (bounded-memory fragments with per-stream
/// progress, so callers holding the streams as mapped regions can release
/// the merged-past prefix while the merge is still running).
fn merge_sorted_to(
    streams: &[&str],
    flags: SortFlags,
    fragment_bytes: usize,
    sink: &mut MergeSink,
) -> Result<(), CmdError> {
    // Loser-tree-style merge via a sorted frontier: O(n log w) total, with
    // stream index as the stability tiebreak (earlier streams win ties, as
    // GNU sort -m does).
    let mut iters: Vec<_> = streams
        .iter()
        .map(|s| kq_stream::lines_of(s).peekable())
        .collect();
    // Frontier of (line, stream index), kept sorted descending so the next
    // line to emit is at the back.
    let mut frontier: Vec<(&str, usize)> = Vec::with_capacity(iters.len());
    let frontier_cmp = |a: &(&str, usize), b: &(&str, usize), flags: SortFlags| {
        line_compare(a.0, b.0, flags).then(a.1.cmp(&b.1)).reverse()
    };
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some(&line) = it.peek() {
            frontier.push((line, i));
        }
    }
    frontier.sort_by(|a, b| frontier_cmp(a, b, flags));
    // Bytes of each stream merged so far. The `+ 1` accounts for the
    // newline; the clamp covers a final line without one.
    let mut consumed = vec![0usize; streams.len()];
    let mut buf = String::new();
    let mut prev: Option<String> = None;
    while let Some((line, i)) = frontier.pop() {
        iters[i].next();
        consumed[i] = (consumed[i] + line.len() + 1).min(streams[i].len());
        let dup = flags.unique
            && prev
                .as_deref()
                .is_some_and(|p| key_compare(p, line, flags) == Ordering::Equal);
        if !dup {
            buf.push_str(line);
            buf.push('\n');
            prev = Some(line.to_owned());
        }
        if buf.len() >= fragment_bytes {
            sink(&buf, &consumed)?;
            buf.clear();
        }
        if let Some(&next) = iters[i].peek() {
            let entry = (next, i);
            let pos = frontier
                .binary_search_by(|probe| frontier_cmp(probe, &entry, flags))
                .unwrap_or_else(|e| e);
            frontier.insert(pos, entry);
        }
    }
    if !buf.is_empty() {
        sink(&buf, &consumed)?;
    }
    Ok(())
}

/// Programmatic `sort -m <flags>`: merges pre-sorted streams. This is the
/// `unixMerge` primitive behind the combiner DSL's `merge` operator and the
/// k-way merge used by parallel pipelines (paper §3.5).
pub fn merge_streams(flag_words: &[String], streams: &[&str]) -> Result<String, CmdError> {
    let mut args: Vec<String> = flag_words.to_vec();
    args.push("-m".to_owned());
    let cmd = SortCmd::parse(&args)?;
    Ok(merge_sorted(streams, cmd.flags))
}

/// Streaming form of [`merge_streams`]: merges pre-sorted streams and
/// hands the output to `sink` in line-aligned fragments of at least
/// `fragment_bytes` (the final fragment may be smaller; each fragment
/// exceeds the threshold by at most one line). Alongside each fragment
/// the sink receives, per stream, how many input bytes the merge has
/// consumed so far — the hook the out-of-core fold uses to drop mapped
/// run pages behind the merge frontier instead of holding every run
/// resident until the end.
pub fn merge_streams_to(
    flag_words: &[String],
    streams: &[&str],
    fragment_bytes: usize,
    sink: &mut MergeSink,
) -> Result<(), CmdError> {
    let mut args: Vec<String> = flag_words.to_vec();
    args.push("-m".to_owned());
    let cmd = SortCmd::parse(&args)?;
    merge_sorted_to(streams, cmd.flags, fragment_bytes, sink)
}

impl UnixCommand for SortCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn reads_stdin(&self) -> bool {
        self.files.is_empty() || self.files.iter().any(|f| f == "-")
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "sort")?;
        let text =
            || -> Result<String, CmdError> {
                let mut contents: Vec<String> = Vec::new();
                if self.files.is_empty() {
                    contents.push(input.to_owned());
                } else {
                    for f in &self.files {
                        if f == "-" {
                            contents.push(input.to_owned());
                        } else {
                            contents.push(crate::read_file_str(ctx, f, "sort")?.ok_or_else(
                                || CmdError::new("sort", format!("cannot read: {f}")),
                            )?);
                        }
                    }
                }
                if self.merge {
                    let refs: Vec<&str> = contents.iter().map(String::as_str).collect();
                    Ok(merge_sorted(&refs, self.flags))
                } else {
                    let joined = contents.concat();
                    Ok(sort_lines(&joined, self.flags))
                }
            };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;
    use proptest::prelude::*;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn plain_sort_is_byte_order() {
        assert_eq!(run("sort", "b\nA\na\nB\n"), "A\nB\na\nb\n");
    }

    #[test]
    fn numeric_sort() {
        assert_eq!(run("sort -n", "10\n9\n2\n"), "2\n9\n10\n");
        // Non-numeric lines count as zero and fall back to byte order.
        assert_eq!(run("sort -n", "x\n1\ny\n"), "x\ny\n1\n");
    }

    #[test]
    fn reverse_numeric_equivalents() {
        let input = "      3 bb\n     10 aa\n      1 cc\n";
        let rn = run("sort -rn", input);
        let nr = run("sort -nr", input);
        assert_eq!(rn, nr);
        assert_eq!(rn, "     10 aa\n      3 bb\n      1 cc\n");
    }

    #[test]
    fn fold_case() {
        assert_eq!(run("sort -f", "b\nA\nB\na\n"), "A\na\nB\nb\n");
    }

    #[test]
    fn unique_sort() {
        assert_eq!(run("sort -u", "b\na\nb\na\n"), "a\nb\n");
        // -u with -n dedupes by key: 07 and 7 share a numeric key.
        assert_eq!(run("sort -nu", "07\n7\n8\n"), "07\n8\n");
    }

    #[test]
    fn key_field_numeric() {
        let input = "20 x\n3 y\n100 z\n";
        assert_eq!(run("sort -k1n", input), "3 y\n20 x\n100 z\n");
    }

    #[test]
    fn merge_two_sorted_streams_equals_full_sort() {
        let x1 = "a\nc\ne\n";
        let x2 = "b\nc\nd\n";
        let merged = merge_streams(&[], &[x1, x2]).unwrap();
        assert_eq!(merged, run("sort", &format!("{x1}{x2}")));
    }

    #[test]
    fn merge_respects_flags() {
        let y1 = "9\n2\n"; // sorted under -rn
        let y2 = "10\n1\n";
        let merged = merge_streams(&["-rn".to_owned()], &[y1, y2]).unwrap();
        assert_eq!(merged, "10\n9\n2\n1\n");
    }

    #[test]
    fn merge_streams_to_fragments_reassemble_and_track_progress() {
        let s1 = "a\nc\ne\ng\n";
        let s2 = "b\nd\nf\n";
        let flat = merge_streams(&[], &[s1, s2]).unwrap();
        let mut pieces: Vec<String> = Vec::new();
        let mut last = vec![0usize; 2];
        merge_streams_to(&[], &[s1, s2], 3, &mut |frag, consumed| {
            // Fragments are line-aligned and progress is monotone.
            assert!(frag.ends_with('\n'));
            assert!(consumed[0] >= last[0] && consumed[1] >= last[1]);
            last = consumed.to_vec();
            pieces.push(frag.to_owned());
            Ok(())
        })
        .unwrap();
        assert_eq!(pieces.concat(), flat);
        assert!(pieces.len() > 1, "fragment_bytes=3 must flush mid-merge");
        // After the final fragment everything has been consumed.
        assert_eq!(last, vec![s1.len(), s2.len()]);
        // A sink error propagates.
        let err = merge_streams_to(&[], &[s1, s2], 1, &mut |_, _| {
            Err(CmdError::new("sort", "sink says no"))
        });
        assert!(err.is_err());
    }

    #[test]
    fn merge_command_form() {
        let ctx = {
            let vfs = crate::Vfs::new();
            vfs.write("s1", "a\nc\n");
            vfs.write("s2", "b\nd\n");
            ExecContext::with_vfs(vfs)
        };
        let c = parse_command("sort -m s1 s2").unwrap();
        assert_eq!(c.run_str("", &ctx).unwrap(), "a\nb\nc\nd\n");
        assert!(!c.reads_stdin());
    }

    #[test]
    fn parallel_option_ignored() {
        assert_eq!(run("sort --parallel=1", "b\na\n"), "a\nb\n");
    }

    #[test]
    fn empty_input() {
        assert_eq!(run("sort", ""), "");
        assert_eq!(run("sort -u", "\n\n"), "\n");
    }

    proptest! {
        #[test]
        fn prop_sort_output_is_sorted_permutation(
            lines in proptest::collection::vec("[ -~]{0,10}", 0..40)
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let out = run("sort", &input);
            let out_lines: Vec<&str> = kq_stream::lines_of(&out).collect();
            let mut expect: Vec<&str> = lines.iter().map(String::as_str).collect();
            expect.sort_by(|a, b| a.as_bytes().cmp(b.as_bytes()));
            prop_assert_eq!(out_lines, expect);
        }

        #[test]
        fn prop_merge_matches_sort_of_concat(
            a in proptest::collection::vec("[a-e]{0,4}", 0..20),
            b in proptest::collection::vec("[a-e]{0,4}", 0..20),
        ) {
            let mk = |v: &[String]| -> String {
                let mut s: Vec<&str> = v.iter().map(String::as_str).collect();
                s.sort_by(|x, y| x.as_bytes().cmp(y.as_bytes()));
                s.iter().map(|l| format!("{l}\n")).collect()
            };
            let (s1, s2) = (mk(&a), mk(&b));
            let merged = merge_streams(&[], &[s1.as_str(), s2.as_str()]).unwrap();
            prop_assert_eq!(merged, run("sort", &format!("{s1}{s2}")));
        }

        #[test]
        fn prop_numeric_sort_values_nondecreasing(
            nums in proptest::collection::vec(-1000i32..1000, 1..30)
        ) {
            let input: String = nums.iter().map(|n| format!("{n}\n")).collect();
            let out = run("sort -n", &input);
            let vals: Vec<i32> = kq_stream::lines_of(&out)
                .map(|l| l.parse().unwrap())
                .collect();
            for w in vals.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
