//! `grep` — BRE line matching over the flag subset in the corpus:
//! `-c` (count), `-v` (invert), `-i` (case-insensitive), and their
//! combinations (`-vc`, `-vi`, `-vw`-style clusters are split), plus `-n`
//! (line numbers).
//!
//! `grep -n` is an instructive *unsupported* case: its correct combiner
//! would offset the `N:` prefixes of the second stream, but `':'` is not
//! in the DSL's delimiter alphabet (Figure 3), so synthesis eliminates
//! every candidate — a Table 9-style entry created by an output format
//! rather than by command semantics.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};
use kq_pattern::Regex;

/// The `grep` command.
pub struct GrepCmd {
    regex: Regex,
    count: bool,
    invert: bool,
    number: bool,
    display: String,
}

impl GrepCmd {
    /// Parses `grep` arguments.
    pub fn parse(args: &[String]) -> Result<GrepCmd, CmdError> {
        let mut count = false;
        let mut invert = false;
        let mut insensitive = false;
        let mut number = false;
        let mut pattern: Option<&String> = None;
        for a in args {
            if let Some(flags) = a.strip_prefix('-') {
                if flags.is_empty() || pattern.is_some() {
                    return Err(CmdError::new("grep", format!("bad option {a}")));
                }
                for f in flags.chars() {
                    match f {
                        'c' => count = true,
                        'v' => invert = true,
                        'i' => insensitive = true,
                        'n' => number = true,
                        other => {
                            return Err(CmdError::new("grep", format!("unknown flag -{other}")))
                        }
                    }
                }
            } else if pattern.is_none() {
                pattern = Some(a);
            } else {
                return Err(CmdError::new("grep", "file operands are not supported"));
            }
        }
        let pattern = pattern.ok_or_else(|| CmdError::new("grep", "missing pattern"))?;
        let regex = if insensitive {
            Regex::new_case_insensitive(pattern)
        } else {
            Regex::new(pattern)
        }
        .map_err(|e| CmdError::new("grep", e.to_string()))?;
        let mut display = String::from("grep");
        for a in args {
            display.push(' ');
            if a.contains(' ') || a.contains('\\') || a.contains('*') || a.contains('$') {
                display.push('\'');
                display.push_str(a);
                display.push('\'');
            } else {
                display.push_str(a);
            }
        }
        Ok(GrepCmd {
            regex,
            count,
            invert,
            number,
            display,
        })
    }
}

impl UnixCommand for GrepCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "grep")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::new();
            let mut n: u64 = 0;
            for (idx, line) in kq_stream::lines_of(input).enumerate() {
                let hit = self.regex.is_match(line) != self.invert;
                if hit {
                    if self.count {
                        n += 1;
                    } else {
                        if self.number {
                            out.push_str(&(idx + 1).to_string());
                            out.push(':');
                        }
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
            if self.count {
                out.push_str(&n.to_string());
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn selects_matching_lines() {
        assert_eq!(run("grep b", "abc\nxyz\ncab\n"), "abc\ncab\n");
    }

    #[test]
    fn count_matching_lines() {
        assert_eq!(run("grep -c b", "abc\nxyz\ncab\n"), "2\n");
        assert_eq!(run("grep -c zz", "abc\n"), "0\n");
    }

    #[test]
    fn invert_selection() {
        assert_eq!(run("grep -v b", "abc\nxyz\ncab\n"), "xyz\n");
        assert_eq!(run("grep -vc b", "abc\nxyz\ncab\n"), "1\n");
    }

    #[test]
    fn case_insensitive_flags() {
        assert_eq!(run("grep -i BELL", "bell labs\nx\n"), "bell labs\n");
        assert_eq!(run("grep -vi '[aeiou]'", "sky\nmoon\n"), "sky\n");
    }

    #[test]
    fn anchored_patterns() {
        assert_eq!(run("grep '^....$'", "four\nfive!\nok\n"), "four\n");
        assert_eq!(run("grep -v '^0$'", "0\n10\n0\nx\n"), "10\nx\n");
    }

    #[test]
    fn count_empty_input_prints_zero() {
        assert_eq!(run("grep -c x", ""), "0\n");
    }

    #[test]
    fn line_numbers() {
        assert_eq!(run("grep -n b", "abc\nxyz\ncab\n"), "1:abc\n3:cab\n");
        // -n combined with -c: GNU lets -c win (counts, no numbers).
        assert_eq!(run("grep -nc b", "abc\ncab\n"), "2\n");
    }

    #[test]
    fn missing_pattern_is_error() {
        assert!(parse_command("grep -c").is_err());
        assert!(parse_command("grep").is_err());
    }
}
