//! `grep` — BRE line matching over the flag subset in the corpus:
//! `-c` (count), `-v` (invert), `-i` (case-insensitive), and their
//! combinations (`-vc`, `-vi`, `-vw`-style clusters are split), plus `-n`
//! (line numbers).
//!
//! `grep -n` is an instructive *unsupported* case: its correct combiner
//! would offset the `N:` prefixes of the second stream, but `':'` is not
//! in the DSL's delimiter alphabet (Figure 3), so synthesis eliminates
//! every candidate — a Table 9-style entry created by an output format
//! rather than by command semantics.
//!
//! Plain selection (`grep PAT`, `-v`, `-i` — no `-c`/`-n` reformatting)
//! takes a **byte fast path**: matching lines are returned as sub-slices
//! of the input [`Bytes`], with adjacent matches coalesced into runs. An
//! all-match result is the input handle itself (refcount bump, zero
//! copies — also zero *pages touched* beyond the match scan when the
//! input is a mapped file); sparse results gather once, sized to the
//! output. The old rebuild-a-`String` path remains for `-c`/`-n` and as
//! the differential-test oracle ([`GrepCmd::run_reference`]).

use crate::{Bytes, CmdError, ExecContext, Rope, UnixCommand};
use kq_pattern::Regex;

/// The `grep` command.
pub struct GrepCmd {
    regex: Regex,
    count: bool,
    invert: bool,
    number: bool,
    display: String,
}

impl GrepCmd {
    /// Parses `grep` arguments.
    pub fn parse(args: &[String]) -> Result<GrepCmd, CmdError> {
        let mut count = false;
        let mut invert = false;
        let mut insensitive = false;
        let mut number = false;
        let mut pattern: Option<&String> = None;
        for a in args {
            if let Some(flags) = a.strip_prefix('-') {
                if flags.is_empty() || pattern.is_some() {
                    return Err(CmdError::new("grep", format!("bad option {a}")));
                }
                for f in flags.chars() {
                    match f {
                        'c' => count = true,
                        'v' => invert = true,
                        'i' => insensitive = true,
                        'n' => number = true,
                        other => {
                            return Err(CmdError::new("grep", format!("unknown flag -{other}")))
                        }
                    }
                }
            } else if pattern.is_none() {
                pattern = Some(a);
            } else {
                return Err(CmdError::new("grep", "file operands are not supported"));
            }
        }
        let pattern = pattern.ok_or_else(|| CmdError::new("grep", "missing pattern"))?;
        let regex = if insensitive {
            Regex::new_case_insensitive(pattern)
        } else {
            Regex::new(pattern)
        }
        .map_err(|e| CmdError::new("grep", e.to_string()))?;
        let mut display = String::from("grep");
        for a in args {
            display.push(' ');
            if a.contains(' ') || a.contains('\\') || a.contains('*') || a.contains('$') {
                display.push('\'');
                display.push_str(a);
                display.push('\'');
            } else {
                display.push_str(a);
            }
        }
        Ok(GrepCmd {
            regex,
            count,
            invert,
            number,
            display,
        })
    }

    /// True when a matched line is emitted verbatim (no `-c` count, no
    /// `-n` prefix) — the precondition for the slice fast path.
    fn emits_verbatim(&self) -> bool {
        !self.count && !self.number
    }

    /// The slice fast path: walks line boundaries, tests each line, and
    /// emits matches as coalesced sub-slice runs of `input`. `text` must
    /// be the UTF-8 view of `input` (same indices).
    fn run_select_slices(&self, input: &Bytes, text: &str) -> Bytes {
        let mut out = Rope::new();
        let mut run_start: Option<usize> = None;
        let mut pos = 0usize;
        let len = text.len();
        while pos < len {
            let (line_end, next) = match text[pos..].find('\n') {
                Some(i) => (pos + i, pos + i + 1),
                None => (len, len),
            };
            let hit = self.regex.is_match(&text[pos..line_end]) != self.invert;
            if hit {
                run_start.get_or_insert(pos);
            } else if let Some(s) = run_start.take() {
                out.push(input.slice(s..pos));
            }
            pos = next;
        }
        if let Some(s) = run_start.take() {
            out.push(input.slice(s..len));
            if !text.ends_with('\n') {
                // GNU grep newline-terminates a matched unterminated
                // final line; only this rare case leaves pure slicing.
                out.push(Bytes::from("\n"));
            }
        }
        out.into_bytes()
    }

    /// The pre-fast-path implementation: rebuilds the output as a fresh
    /// `String`, one line at a time. Still the real path for `-c`/`-n`
    /// (their output is a reformatting, not a subsequence of the input)
    /// and the oracle the differential tests compare the slice path
    /// against.
    #[doc(hidden)]
    pub fn run_reference(&self, input: &str) -> String {
        let mut out = String::new();
        let mut n: u64 = 0;
        for (idx, line) in kq_stream::lines_of(input).enumerate() {
            let hit = self.regex.is_match(line) != self.invert;
            if hit {
                if self.count {
                    n += 1;
                } else {
                    if self.number {
                        out.push_str(&(idx + 1).to_string());
                        out.push(':');
                    }
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        if self.count {
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }
}

impl UnixCommand for GrepCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let text = crate::input_str(&input, "grep")?;
        if self.emits_verbatim() {
            return Ok(self.run_select_slices(&input, text));
        }
        Ok(Bytes::from(self.run_reference(text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn selects_matching_lines() {
        assert_eq!(run("grep b", "abc\nxyz\ncab\n"), "abc\ncab\n");
    }

    #[test]
    fn count_matching_lines() {
        assert_eq!(run("grep -c b", "abc\nxyz\ncab\n"), "2\n");
        assert_eq!(run("grep -c zz", "abc\n"), "0\n");
    }

    #[test]
    fn invert_selection() {
        assert_eq!(run("grep -v b", "abc\nxyz\ncab\n"), "xyz\n");
        assert_eq!(run("grep -vc b", "abc\nxyz\ncab\n"), "1\n");
    }

    #[test]
    fn case_insensitive_flags() {
        assert_eq!(run("grep -i BELL", "bell labs\nx\n"), "bell labs\n");
        assert_eq!(run("grep -vi '[aeiou]'", "sky\nmoon\n"), "sky\n");
    }

    #[test]
    fn anchored_patterns() {
        assert_eq!(run("grep '^....$'", "four\nfive!\nok\n"), "four\n");
        assert_eq!(run("grep -v '^0$'", "0\n10\n0\nx\n"), "10\nx\n");
    }

    #[test]
    fn count_empty_input_prints_zero() {
        assert_eq!(run("grep -c x", ""), "0\n");
    }

    #[test]
    fn line_numbers() {
        assert_eq!(run("grep -n b", "abc\nxyz\ncab\n"), "1:abc\n3:cab\n");
        // -n combined with -c: GNU lets -c win (counts, no numbers).
        assert_eq!(run("grep -nc b", "abc\ncab\n"), "2\n");
    }

    #[test]
    fn missing_pattern_is_error() {
        assert!(parse_command("grep -c").is_err());
        assert!(parse_command("grep").is_err());
    }

    fn grep(line: &str) -> GrepCmd {
        let words = crate::split_words(line).unwrap();
        GrepCmd::parse(&words[1..]).unwrap()
    }

    #[test]
    fn all_match_is_a_refcount_bump() {
        let input = Bytes::from("aa\nab\nba\n");
        let out = grep("grep a")
            .run(input.clone(), &ExecContext::default())
            .unwrap();
        assert_eq!(out, input);
        assert!(
            out.shares_buffer(&input),
            "all-match output must be the input slice, not a copy"
        );
    }

    #[test]
    fn adjacent_matches_coalesce_into_runs() {
        // Lines 1-2 match, 3 doesn't, 4 matches: two runs, one gather.
        let input = Bytes::from("ax\nay\nbz\naw\n");
        let out = grep("grep a")
            .run(input.clone(), &ExecContext::default())
            .unwrap();
        assert_eq!(out, "ax\nay\naw\n");
        // A prefix-only match stays a pure slice.
        let prefix = grep("grep -v w")
            .run(input.clone(), &ExecContext::default())
            .unwrap();
        assert_eq!(prefix, "ax\nay\nbz\n");
        assert!(prefix.shares_buffer(&input));
    }

    #[test]
    fn unterminated_matched_final_line_gains_newline() {
        let input = Bytes::from("ax\nbz\nay");
        let out = grep("grep a").run(input, &ExecContext::default()).unwrap();
        assert_eq!(out, "ax\nay\n");
    }

    #[test]
    fn slice_path_agrees_with_reference_on_edge_cases() {
        let cases = [
            "",
            "\n",
            "a\n",
            "x\n",
            "\n\n",
            "a",
            "a\nb",
            "a\n\nb\n",
            "aa\nbb\naa\n",
            "zzz\n\nzzz",
        ];
        for cmd_line in ["grep a", "grep -v a", "grep -i A", "grep '^$'"] {
            let g = grep(cmd_line);
            for input in cases {
                let fast = g.run(Bytes::from(input), &ExecContext::default()).unwrap();
                assert_eq!(
                    fast.as_str(),
                    g.run_reference(input),
                    "{cmd_line:?} diverged on {input:?}"
                );
            }
        }
    }
}
