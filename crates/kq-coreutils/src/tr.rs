//! `tr` — translate, delete, or squeeze characters.
//!
//! Implements the GNU SET grammar subset used by the corpus: character
//! ranges (`A-Za-z`), escapes (`\n`, `\t`, `\\`, octal `\012`), POSIX
//! classes (`[:punct:]`), bracketed repeats (`[\012*]`, `[c*n]`), and the
//! classic bracketed ranges (`[a-z]`, which GNU treats as literal brackets
//! around a range — `tr '[a-z]' '[A-Z]'` works because `[` maps to `[`).
//!
//! Flags: any combination of `-c` (complement SET1), `-d` (delete), and
//! `-s` (squeeze), including the combined forms `-cs`, `-sc`, `-ds`.
//!
//! Pure deletion (`tr -d`, `tr -cd` — no squeeze, ASCII SET1) takes a
//! **byte fast path** like `grep`'s: kept bytes are emitted as coalesced
//! sub-slice runs of the input [`Bytes`] (a delete that removes nothing
//! returns the input handle, zero copies). The character-at-a-time
//! implementation remains for translate/squeeze and as the oracle
//! ([`TrCmd::run_reference`]) the differential tests compare against.

use crate::fastpath::SliceRuns;
use crate::{Bytes, CmdError, ExecContext, UnixCommand};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetItem {
    Char(char),
    /// `[c*]` (pad to SET1's length) or `[c*n]`.
    Repeat(char, Option<usize>),
}

fn parse_set(spec: &str, cmd: &str) -> Result<Vec<SetItem>, CmdError> {
    let chars: Vec<char> = spec.chars().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        // POSIX class [:name:]
        if c == '[' && chars.get(i + 1) == Some(&':') {
            let close = spec[i..]
                .find(":]")
                .ok_or_else(|| CmdError::new(cmd, "unterminated character class"))?;
            let name: String = chars[i + 2..i + close].iter().collect();
            for m in class_members(&name)
                .ok_or_else(|| CmdError::new(cmd, format!("unknown class [:{name}:]")))?
            {
                items.push(SetItem::Char(m));
            }
            i += close + 2;
            continue;
        }
        // Bracketed repeat [c*] or [c*n]; c may be an escape.
        if c == '[' {
            let (rep_char, consumed) = match chars.get(i + 1) {
                Some('\\') => {
                    let (ch, n) = parse_escape(&chars[i + 2..], cmd)?;
                    (Some(ch), 2 + n)
                }
                Some(&ch) => (Some(ch), 2),
                None => (None, 0),
            };
            if let Some(rep_char) = rep_char {
                if chars.get(i + consumed) == Some(&'*') {
                    // Collect optional digits then ']'.
                    let mut j = i + consumed + 1;
                    let mut digits = String::new();
                    while j < chars.len() && chars[j].is_ascii_digit() {
                        digits.push(chars[j]);
                        j += 1;
                    }
                    if chars.get(j) == Some(&']') {
                        let count = if digits.is_empty() {
                            None
                        } else {
                            // Leading 0 means octal in GNU tr; corpus uses
                            // plain decimal counts only.
                            Some(digits.parse::<usize>().unwrap_or(0))
                        };
                        items.push(SetItem::Repeat(rep_char, count));
                        i = j + 1;
                        continue;
                    }
                }
            }
            // Not a repeat: '[' is an ordinary character.
            items.push(SetItem::Char('['));
            i += 1;
            continue;
        }
        if c == '\\' {
            let (ch, n) = parse_escape(&chars[i + 1..], cmd)?;
            // An escape may start a range, e.g. `\n-\r`; corpus never does.
            items.push(SetItem::Char(ch));
            i += 1 + n;
            continue;
        }
        // Range a-z (when '-' is not last).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (c, chars[i + 2]);
            if hi < lo {
                return Err(CmdError::new(cmd, "range out of order"));
            }
            for ch in lo..=hi {
                items.push(SetItem::Char(ch));
            }
            i += 3;
            continue;
        }
        items.push(SetItem::Char(c));
        i += 1;
    }
    Ok(items)
}

/// Parses a backslash escape body, returning the character and the number
/// of pattern characters consumed (after the backslash).
fn parse_escape(rest: &[char], cmd: &str) -> Result<(char, usize), CmdError> {
    match rest.first() {
        None => Err(CmdError::new(cmd, "trailing backslash")),
        Some('n') => Ok(('\n', 1)),
        Some('t') => Ok(('\t', 1)),
        Some('r') => Ok(('\r', 1)),
        Some('\\') => Ok(('\\', 1)),
        Some(&d) if ('0'..='7').contains(&d) => {
            // Octal escape: up to three digits.
            let mut val = 0u32;
            let mut n = 0;
            while n < 3 {
                match rest.get(n) {
                    Some(&c) if ('0'..='7').contains(&c) => {
                        val = val * 8 + c.to_digit(8).unwrap();
                        n += 1;
                    }
                    _ => break,
                }
            }
            Ok((char::from_u32(val).unwrap_or('\0'), n))
        }
        Some(&other) => Ok((other, 1)),
    }
}

fn class_members(name: &str) -> Option<Vec<char>> {
    let mut v = Vec::new();
    match name {
        "upper" => v.extend('A'..='Z'),
        "lower" => v.extend('a'..='z'),
        "digit" => v.extend('0'..='9'),
        "alpha" => {
            v.extend('A'..='Z');
            v.extend('a'..='z');
        }
        "alnum" => {
            v.extend('0'..='9');
            v.extend('A'..='Z');
            v.extend('a'..='z');
        }
        "punct" => v.extend(
            (0x21..=0x7eu8)
                .map(|b| b as char)
                .filter(|c| c.is_ascii_punctuation()),
        ),
        "space" => v.extend([' ', '\t', '\n', '\r', '\x0b', '\x0c']),
        "blank" => v.extend([' ', '\t']),
        _ => return None,
    }
    Some(v)
}

/// Expands SET1 items (repeats are invalid in SET1; GNU allows them but the
/// corpus never uses them there).
fn expand_set1(items: &[SetItem]) -> Vec<char> {
    let mut v = Vec::new();
    for item in items {
        match item {
            SetItem::Char(c) => v.push(*c),
            SetItem::Repeat(c, n) => {
                for _ in 0..n.unwrap_or(1) {
                    v.push(*c);
                }
            }
        }
    }
    v
}

/// Expands SET2 to exactly `target_len` characters: `[c*]` absorbs the
/// slack; otherwise the last character is repeated (GNU behaviour).
fn expand_set2(items: &[SetItem], target_len: usize) -> Vec<char> {
    let fixed: usize = items
        .iter()
        .map(|i| match i {
            SetItem::Char(_) => 1,
            SetItem::Repeat(_, n) => n.unwrap_or(0),
        })
        .sum();
    let mut v = Vec::with_capacity(target_len);
    for item in items {
        match item {
            SetItem::Char(c) => v.push(*c),
            SetItem::Repeat(c, n) => {
                let count = match n {
                    Some(n) => *n,
                    None => target_len.saturating_sub(fixed),
                };
                for _ in 0..count {
                    v.push(*c);
                }
            }
        }
    }
    if let Some(last) = v.last().copied() {
        while v.len() < target_len {
            v.push(last);
        }
    }
    v.truncate(target_len.max(v.len()));
    v
}

/// Fast membership for ASCII plus spill-over for the rest.
#[derive(Debug, Clone)]
struct CharSet {
    ascii: [bool; 128],
    other: Vec<char>,
}

impl CharSet {
    fn from_chars(chars: &[char]) -> CharSet {
        let mut s = CharSet {
            ascii: [false; 128],
            other: Vec::new(),
        };
        for &c in chars {
            if (c as u32) < 128 {
                s.ascii[c as usize] = true;
            } else if !s.other.contains(&c) {
                s.other.push(c);
            }
        }
        s
    }

    #[inline]
    fn contains(&self, c: char) -> bool {
        if (c as u32) < 128 {
            self.ascii[c as usize]
        } else {
            self.other.contains(&c)
        }
    }
}

/// The `tr` command.
pub struct TrCmd {
    complement: bool,
    delete: bool,
    squeeze: bool,
    set1: Vec<char>,
    set2_items: Vec<SetItem>,
    display: String,
}

impl TrCmd {
    /// Parses `tr` arguments (already shell-split).
    pub fn parse(args: &[String]) -> Result<TrCmd, CmdError> {
        let mut complement = false;
        let mut delete = false;
        let mut squeeze = false;
        let mut sets: Vec<&String> = Vec::new();
        for a in args {
            if let Some(flags) = a.strip_prefix('-') {
                if flags.is_empty() || !flags.chars().all(|c| "cds".contains(c)) {
                    // A literal operand starting with '-' never occurs in
                    // the corpus; treat as an error to catch typos.
                    return Err(CmdError::new("tr", format!("invalid option {a}")));
                }
                for f in flags.chars() {
                    match f {
                        'c' => complement = true,
                        'd' => delete = true,
                        's' => squeeze = true,
                        _ => unreachable!(),
                    }
                }
            } else {
                sets.push(a);
            }
        }
        if sets.is_empty() || sets.len() > 2 {
            return Err(CmdError::new("tr", "expected one or two sets"));
        }
        if delete && sets.len() != 1 && !squeeze {
            return Err(CmdError::new("tr", "extra operand with -d"));
        }
        let set1 = expand_set1(&parse_set(sets[0], "tr")?);
        let set2_items = if sets.len() == 2 {
            parse_set(sets[1], "tr")?
        } else {
            Vec::new()
        };
        if !delete && sets.len() == 1 && !squeeze {
            return Err(CmdError::new("tr", "missing operand after SET1"));
        }
        let mut display = String::from("tr");
        for a in args {
            display.push(' ');
            display.push_str(&shell_quote(a));
        }
        Ok(TrCmd {
            complement,
            delete,
            squeeze,
            set1,
            set2_items,
            display,
        })
    }
}

fn shell_quote(s: &str) -> String {
    if s.chars().any(|c| " \t\n'\"\\$*[]".contains(c)) {
        format!("'{}'", s.replace('\n', "\\n").replace('\t', "\\t"))
    } else {
        s.to_owned()
    }
}

impl TrCmd {
    /// True when the output is a byte subsequence of the input: pure
    /// deletion (no squeeze pass, no translation) over an ASCII SET1, so
    /// keep/delete is decidable per byte (every byte of a multi-byte
    /// UTF-8 character is ≥ 0x80 and shares the character's fate).
    fn deletes_verbatim(&self) -> bool {
        self.delete && !self.squeeze && self.set1.iter().all(|c| c.is_ascii())
    }

    /// The slice fast path for [`TrCmd::deletes_verbatim`] commands:
    /// scans bytes and emits kept bytes as coalesced sub-slice runs of
    /// `input`. `text` must be the UTF-8 view of `input` (same indices).
    fn run_delete_slices(&self, input: &Bytes, text: &str) -> Bytes {
        let mut keep = [false; 256];
        for (b, k) in keep.iter_mut().enumerate() {
            // Non-ASCII bytes belong to non-ASCII characters, which are
            // outside an ASCII SET1: kept unless SET1 is complemented.
            *k = if b < 128 {
                self.set1.contains(&(b as u8 as char)) == self.complement
            } else {
                !self.complement
            };
        }
        let mut runs = SliceRuns::new(input);
        let mut run_start: Option<usize> = None;
        for (i, &b) in text.as_bytes().iter().enumerate() {
            if keep[b as usize] {
                run_start.get_or_insert(i);
            } else if let Some(s) = run_start.take() {
                runs.keep(s..i);
            }
        }
        if let Some(s) = run_start.take() {
            runs.keep(s..text.len());
        }
        runs.finish()
    }

    /// The character-at-a-time implementation — the real path for
    /// translate/squeeze and the oracle the differential tests compare
    /// the slice path against.
    #[doc(hidden)]
    pub fn run_reference(&self, input: &str) -> String {
        let set1 = CharSet::from_chars(&self.set1);
        let in_set1 = |c: char| set1.contains(c) != self.complement;

        let mut out = String::with_capacity(input.len());
        if self.delete {
            // Delete members of (complemented) SET1; with -s also squeeze
            // SET2 members afterwards.
            let squeeze_set = if self.squeeze {
                Some(CharSet::from_chars(&expand_set1(&self.set2_items)))
            } else {
                None
            };
            let mut prev: Option<char> = None;
            for c in input.chars() {
                if in_set1(c) {
                    continue;
                }
                if let Some(sq) = &squeeze_set {
                    if sq.contains(c) && prev == Some(c) {
                        continue;
                    }
                }
                out.push(c);
                prev = Some(c);
            }
            return out;
        }

        if self.set2_items.is_empty() {
            // Pure squeeze of SET1 members.
            let mut prev: Option<char> = None;
            for c in input.chars() {
                if in_set1(c) && prev == Some(c) {
                    continue;
                }
                out.push(c);
                prev = Some(c);
            }
            return out;
        }

        // Translate (then optionally squeeze SET2 members). With -c, GNU
        // builds the complement of SET1 in ascending character order and
        // maps it element-wise onto SET2 (padded with its last character).
        let mut table = [0u32; 128];
        for (i, b) in table.iter_mut().enumerate() {
            *b = i as u32;
        }
        let (set2, fallback) = if self.complement {
            let comp: Vec<char> = (0u32..128)
                .filter_map(char::from_u32)
                .filter(|&c| !set1.contains(c))
                .collect();
            let set2 = expand_set2(&self.set2_items, comp.len().max(1));
            let fallback = *set2.last().expect("SET2 cannot be empty here");
            for (i, &c) in comp.iter().enumerate() {
                table[c as usize] = set2[i.min(set2.len() - 1)] as u32;
            }
            (set2, fallback)
        } else {
            let set2 = expand_set2(&self.set2_items, self.set1.len().max(1));
            let fallback = *set2.last().expect("SET2 cannot be empty here");
            for (i, &c) in self.set1.iter().enumerate() {
                if (c as u32) < 128 {
                    table[c as usize] = set2[i.min(set2.len() - 1)] as u32;
                }
            }
            (set2, fallback)
        };
        let translate = |c: char| -> char {
            if (c as u32) < 128 {
                char::from_u32(table[c as usize]).unwrap_or(c)
            } else if self.complement {
                // Non-ASCII characters are outside every corpus SET1.
                fallback
            } else {
                c
            }
        };
        let squeeze_set = if self.squeeze {
            Some(CharSet::from_chars(&set2))
        } else {
            None
        };
        let mut prev: Option<char> = None;
        for c in input.chars() {
            let t = translate(c);
            if let Some(sq) = &squeeze_set {
                if sq.contains(t) && prev == Some(t) {
                    continue;
                }
            }
            out.push(t);
            prev = Some(t);
        }
        out
    }
}

impl UnixCommand for TrCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let text = crate::input_str(&input, "tr")?;
        if self.deletes_verbatim() {
            return Ok(self.run_delete_slices(&input, text));
        }
        Ok(Bytes::from(self.run_reference(text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn simple_translate() {
        assert_eq!(run("tr A-Z a-z", "Hello World\n"), "hello world\n");
        assert_eq!(run("tr 'a-z' 'A-Z'", "abc\n"), "ABC\n");
    }

    #[test]
    fn bracketed_ranges_translate() {
        // GNU: brackets are literal and map onto each other.
        assert_eq!(run("tr '[a-z]' '[A-Z]'", "ab[c]\n"), "AB[C]\n");
    }

    #[test]
    fn single_char_target_pads() {
        assert_eq!(run("tr '[a-z]' 'P'", "abz!\n"), "PPP!\n");
    }

    #[test]
    fn complement_translate() {
        // Every non-letter becomes a newline.
        assert_eq!(run(r"tr -c A-Za-z '\n'", "ab c,d\n"), "ab\nc\nd\n");
    }

    #[test]
    fn complement_squeeze_is_the_word_splitter() {
        // The Figure 1 stage: runs of non-letters collapse to one newline.
        assert_eq!(
            run(r"tr -cs A-Za-z '\n'", "one  two!!three\n"),
            "one\ntwo\nthree\n"
        );
        // Leading separators produce a single leading newline.
        assert_eq!(run(r"tr -cs A-Za-z '\n'", "  x\n"), "\nx\n");
    }

    #[test]
    fn sc_flag_order_equivalent() {
        let a = run(r"tr -sc 'AEIOU' '[\012*]'", "HEAVEN\n");
        let b = run(r"tr -cs 'AEIOU' '[\012*]'", "HEAVEN\n");
        assert_eq!(a, b);
        assert_eq!(a, "\nEA\nE\n");
    }

    #[test]
    fn octal_repeat_expands_to_newline() {
        assert_eq!(run(r"tr -sc '[A-Z]' '[\012*]'", "AbC\n"), "A\nC\n");
    }

    #[test]
    fn delete_chars() {
        assert_eq!(run("tr -d ','", "a,b,,c\n"), "abc\n");
        assert_eq!(run(r"tr -d '\n'", "a\nb\n"), "ab");
        assert_eq!(run("tr -d '[:punct:]'", "a.b!c-\n"), "abc\n");
    }

    #[test]
    fn squeeze_only() {
        assert_eq!(run(r"tr -s ' ' '\n'", "a  b\n"), "a\nb\n");
        assert_eq!(run("tr -s 'a' 'a'", "aaab\n"), "ab\n");
    }

    #[test]
    fn posix_class_translate() {
        assert_eq!(run("tr '[:lower:]' '[:upper:]'", "aBc\n"), "ABC\n");
        assert_eq!(run("tr '[:upper:]' '[:lower:]'", "aBc\n"), "abc\n");
    }

    #[test]
    fn mixed_set_with_embedded_newline_escape() {
        // poets 8_1: tr -sc '[AEIOUaeiou\012]' ' '
        assert_eq!(
            run(r"tr -sc '[AEIOUaeiou\012]' ' '", "hello\nworld\n"),
            " e o\n o \n"
        );
    }

    #[test]
    fn space_prefixed_repeat_set() {
        // poets 6_5: tr -sc '[A-Z][a-z]' ' [\012*]' — SET2 starts with a
        // space (absorbed by NUL, the first complement element); every
        // other complement character maps to the newline fill.
        let out = run(r"tr -sc '[A-Z][a-z]' ' [\012*]'", "ab12cd\n");
        assert_eq!(out, "ab\ncd\n");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("tr").is_err());
        assert!(parse_command("tr a-z").is_err()); // missing SET2
        assert!(parse_command("tr -q a b").is_err());
        assert!(parse_command("tr 'z-a' x").is_err());
    }

    fn tr(line: &str) -> TrCmd {
        let words = crate::split_words(line).unwrap();
        TrCmd::parse(&words[1..]).unwrap()
    }

    #[test]
    fn delete_that_removes_nothing_is_a_refcount_bump() {
        let input = Bytes::from("abc\ndef\n");
        let out = tr("tr -d 'Q'")
            .run(input.clone(), &ExecContext::default())
            .unwrap();
        assert_eq!(out, input);
        assert!(
            out.shares_buffer(&input),
            "no-op delete must be the input slice, not a copy"
        );
    }

    #[test]
    fn delete_slice_path_agrees_with_reference_on_edge_cases() {
        let cases = [
            "",
            "\n",
            "a,b,,c\n",
            "x.y!z",
            "a\u{e9}b,\u{e9}\n",
            ",,,",
            "mixed, stuff; here\n",
            "\na\n\nb",
        ];
        for cmd_line in [
            "tr -d ','",
            r"tr -d '\n'",
            "tr -d '[:punct:]'",
            "tr -cd 'a-z'",
            "tr -d 'a-c'",
        ] {
            let t = tr(cmd_line);
            assert!(t.deletes_verbatim(), "{cmd_line} should take the fast path");
            for input in cases {
                let fast = t.run(Bytes::from(input), &ExecContext::default()).unwrap();
                assert_eq!(
                    fast.as_str(),
                    t.run_reference(input),
                    "{cmd_line:?} diverged on {input:?}"
                );
            }
        }
    }

    #[test]
    fn squeeze_and_translate_stay_off_the_fast_path() {
        assert!(!tr("tr -ds ',' 'x'").deletes_verbatim());
        assert!(!tr("tr a-z A-Z").deletes_verbatim());
        assert!(!tr("tr -s ' ' ' '").deletes_verbatim());
    }

    #[test]
    fn tr_output_not_stream_after_newline_delete() {
        // Relevant to Theorem 5's precondition: output loses its newline.
        let out = run(r"tr -d '\n'", "x\ny\n");
        assert!(!out.ends_with('\n'));
    }
}
