//! `cut` — select character columns (`-c`) or delimited fields
//! (`-d DELIM -f LIST`, default delimiter TAB).
//!
//! GNU behaviours the synthesis relies on: the selection LIST is a set —
//! output order follows the input (`cut -d, -f3,1` prints field 1 then 3);
//! lines *without* the delimiter are printed whole in field mode; attached
//! option forms (`-d: -f1`) parse like the detached ones.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};

#[derive(Debug, Clone, PartialEq, Eq)]
struct RangeList {
    /// Inclusive 1-based ranges, normalized (sorted, merged).
    ranges: Vec<(usize, usize)>,
}

impl RangeList {
    fn parse(spec: &str) -> Result<RangeList, CmdError> {
        let mut ranges = Vec::new();
        for item in spec.split(',') {
            if item.is_empty() {
                return Err(CmdError::new("cut", "empty list element"));
            }
            let (lo, hi) = match item.split_once('-') {
                None => {
                    let n = parse_pos(item)?;
                    (n, n)
                }
                Some(("", hi)) => (1, parse_pos(hi)?),
                Some((lo, "")) => (parse_pos(lo)?, usize::MAX),
                Some((lo, hi)) => (parse_pos(lo)?, parse_pos(hi)?),
            };
            if lo > hi {
                return Err(CmdError::new("cut", "invalid decreasing range"));
            }
            ranges.push((lo, hi));
        }
        ranges.sort_unstable();
        // Merge overlaps so iteration is a single pass.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match merged.last_mut() {
                Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        Ok(RangeList { ranges: merged })
    }

    fn contains(&self, pos: usize) -> bool {
        self.ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&pos))
    }
}

fn parse_pos(s: &str) -> Result<usize, CmdError> {
    let n: usize = s
        .parse()
        .map_err(|_| CmdError::new("cut", format!("invalid position {s:?}")))?;
    if n == 0 {
        return Err(CmdError::new("cut", "positions are 1-based"));
    }
    Ok(n)
}

enum Mode {
    Chars(RangeList),
    Fields { delim: char, list: RangeList },
}

/// The `cut` command.
pub struct CutCmd {
    mode: Mode,
    display: String,
}

impl CutCmd {
    /// Parses `cut` arguments, accepting attached (`-d:`, `-f1`) and
    /// detached (`-d ':' -f 1`) forms.
    pub fn parse(args: &[String]) -> Result<CutCmd, CmdError> {
        let mut chars_spec: Option<String> = None;
        let mut fields_spec: Option<String> = None;
        let mut delim: Option<char> = None;
        let mut it = args.iter().peekable();
        let take_value = |attached: &str,
                          it: &mut std::iter::Peekable<std::slice::Iter<String>>|
         -> Result<String, CmdError> {
            if attached.is_empty() {
                it.next()
                    .cloned()
                    .ok_or_else(|| CmdError::new("cut", "missing option value"))
            } else {
                Ok(attached.to_owned())
            }
        };
        while let Some(a) = it.next() {
            if let Some(body) = a.strip_prefix("-c") {
                chars_spec = Some(take_value(body, &mut it)?);
            } else if let Some(body) = a.strip_prefix("-f") {
                fields_spec = Some(take_value(body, &mut it)?);
            } else if let Some(body) = a.strip_prefix("-d") {
                let v = take_value(body, &mut it)?;
                let mut cs = v.chars();
                let c = cs
                    .next()
                    .ok_or_else(|| CmdError::new("cut", "empty delimiter"))?;
                if cs.next().is_some() {
                    return Err(CmdError::new("cut", "delimiter must be a single character"));
                }
                delim = Some(c);
            } else {
                return Err(CmdError::new("cut", format!("unexpected operand {a}")));
            }
        }
        let mode = match (chars_spec, fields_spec) {
            (Some(spec), None) => {
                if delim.is_some() {
                    return Err(CmdError::new("cut", "-d only makes sense with -f"));
                }
                Mode::Chars(RangeList::parse(&spec)?)
            }
            (None, Some(spec)) => Mode::Fields {
                delim: delim.unwrap_or('\t'),
                list: RangeList::parse(&spec)?,
            },
            _ => return Err(CmdError::new("cut", "specify exactly one of -c or -f")),
        };
        let mut display = String::from("cut");
        for a in args {
            display.push(' ');
            if a.contains(' ') || a.contains('"') {
                display.push_str(&format!("{a:?}"));
            } else {
                display.push_str(a);
            }
        }
        Ok(CutCmd { mode, display })
    }
}

impl UnixCommand for CutCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "cut")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            for line in kq_stream::lines_of(input) {
                match &self.mode {
                    Mode::Chars(list) => {
                        for (i, c) in line.chars().enumerate() {
                            if list.contains(i + 1) {
                                out.push(c);
                            }
                        }
                    }
                    Mode::Fields { delim, list } => {
                        if !line.contains(*delim) {
                            // GNU: delimiter-free lines pass through whole.
                            out.push_str(line);
                        } else {
                            let mut first = true;
                            for (i, field) in line.split(*delim).enumerate() {
                                if list.contains(i + 1) {
                                    if !first {
                                        out.push(*delim);
                                    }
                                    out.push_str(field);
                                    first = false;
                                }
                            }
                        }
                    }
                }
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn char_ranges() {
        assert_eq!(run("cut -c 1-4", "abcdefg\nxy\n"), "abcd\nxy\n");
        assert_eq!(run("cut -c 1-1", "abc\n"), "a\n");
        assert_eq!(run("cut -c 3-3", "abc\n"), "c\n");
    }

    #[test]
    fn field_selection_with_delim() {
        assert_eq!(run("cut -d ',' -f 1", "a,b,c\n"), "a\n");
        assert_eq!(run("cut -d ',' -f 2", "a,b,c\n"), "b\n");
        assert_eq!(run("cut -d ',' -f 1,3", "a,b,c\n"), "a,c\n");
    }

    #[test]
    fn field_list_order_is_ignored() {
        // GNU cut outputs fields in input order regardless of LIST order.
        assert_eq!(run("cut -d ',' -f 3,1", "a,b,c\n"), "a,c\n");
    }

    #[test]
    fn lines_without_delimiter_pass_through() {
        assert_eq!(run("cut -d ',' -f 2", "plain\na,b\n"), "plain\nb\n");
    }

    #[test]
    fn attached_option_forms() {
        assert_eq!(run("cut -d: -f1", "root:x:0\n"), "root\n");
    }

    #[test]
    fn default_field_delimiter_is_tab() {
        assert_eq!(run("cut -f 2", "a\tb\tc\n"), "b\n");
        assert_eq!(run("cut -f 1", "a\tb\n"), "a\n");
    }

    #[test]
    fn space_delimiter() {
        assert_eq!(run("cut -d ' ' -f 2", "john smith\n"), "smith\n");
        assert_eq!(run("cut -d ' ' -f 4", "a b c d e\n"), "d\n");
    }

    #[test]
    fn out_of_range_fields_are_empty() {
        assert_eq!(run("cut -d ',' -f 5", "a,b\n"), "\n");
        assert_eq!(run("cut -c 10", "abc\n"), "\n");
    }

    #[test]
    fn open_ended_ranges() {
        assert_eq!(run("cut -c 2-", "abcd\n"), "bcd\n");
        assert_eq!(run("cut -c -2", "abcd\n"), "ab\n");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("cut").is_err());
        assert!(parse_command("cut -c 0").is_err());
        assert!(parse_command("cut -d ',' -c 1").is_err());
        assert!(parse_command("cut -d ab -f 1").is_err());
        assert!(parse_command("cut -c 4-2").is_err());
    }
}
