//! `cut` — select character columns (`-c`) or delimited fields
//! (`-d DELIM -f LIST`, default delimiter TAB).
//!
//! GNU behaviours the synthesis relies on: the selection LIST is a set —
//! output order follows the input (`cut -d, -f3,1` prints field 1 then 3);
//! lines *without* the delimiter are printed whole in field mode; attached
//! option forms (`-d: -f1`) parse like the detached ones.
//!
//! When the LIST normalizes to a **single contiguous range** — the common
//! corpus shape (`-f 1`, `-f 2`, `-c 1-8`) — each line's selection is one
//! contiguous byte span of the input, so `cut` takes the same byte fast
//! path as `grep`: spans are emitted as coalesced sub-slices of the input
//! [`Bytes`] (selecting everything returns the input handle). Multi-range
//! lists and the synthesized `'\n'` after a clipped line fall back to /
//! interleave with the line-at-a-time oracle ([`CutCmd::run_reference`]).

use crate::fastpath::SliceRuns;
use crate::{Bytes, CmdError, ExecContext, UnixCommand};

#[derive(Debug, Clone, PartialEq, Eq)]
struct RangeList {
    /// Inclusive 1-based ranges, normalized (sorted, merged).
    ranges: Vec<(usize, usize)>,
}

impl RangeList {
    fn parse(spec: &str) -> Result<RangeList, CmdError> {
        let mut ranges = Vec::new();
        for item in spec.split(',') {
            if item.is_empty() {
                return Err(CmdError::new("cut", "empty list element"));
            }
            let (lo, hi) = match item.split_once('-') {
                None => {
                    let n = parse_pos(item)?;
                    (n, n)
                }
                Some(("", hi)) => (1, parse_pos(hi)?),
                Some((lo, "")) => (parse_pos(lo)?, usize::MAX),
                Some((lo, hi)) => (parse_pos(lo)?, parse_pos(hi)?),
            };
            if lo > hi {
                return Err(CmdError::new("cut", "invalid decreasing range"));
            }
            ranges.push((lo, hi));
        }
        ranges.sort_unstable();
        // Merge overlaps so iteration is a single pass.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match merged.last_mut() {
                Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        Ok(RangeList { ranges: merged })
    }

    fn contains(&self, pos: usize) -> bool {
        self.ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&pos))
    }
}

fn parse_pos(s: &str) -> Result<usize, CmdError> {
    let n: usize = s
        .parse()
        .map_err(|_| CmdError::new("cut", format!("invalid position {s:?}")))?;
    if n == 0 {
        return Err(CmdError::new("cut", "positions are 1-based"));
    }
    Ok(n)
}

enum Mode {
    Chars(RangeList),
    Fields { delim: char, list: RangeList },
}

/// The `cut` command.
pub struct CutCmd {
    mode: Mode,
    display: String,
}

impl CutCmd {
    /// Parses `cut` arguments, accepting attached (`-d:`, `-f1`) and
    /// detached (`-d ':' -f 1`) forms.
    pub fn parse(args: &[String]) -> Result<CutCmd, CmdError> {
        let mut chars_spec: Option<String> = None;
        let mut fields_spec: Option<String> = None;
        let mut delim: Option<char> = None;
        let mut it = args.iter().peekable();
        let take_value = |attached: &str,
                          it: &mut std::iter::Peekable<std::slice::Iter<String>>|
         -> Result<String, CmdError> {
            if attached.is_empty() {
                it.next()
                    .cloned()
                    .ok_or_else(|| CmdError::new("cut", "missing option value"))
            } else {
                Ok(attached.to_owned())
            }
        };
        while let Some(a) = it.next() {
            if let Some(body) = a.strip_prefix("-c") {
                chars_spec = Some(take_value(body, &mut it)?);
            } else if let Some(body) = a.strip_prefix("-f") {
                fields_spec = Some(take_value(body, &mut it)?);
            } else if let Some(body) = a.strip_prefix("-d") {
                let v = take_value(body, &mut it)?;
                let mut cs = v.chars();
                let c = cs
                    .next()
                    .ok_or_else(|| CmdError::new("cut", "empty delimiter"))?;
                if cs.next().is_some() {
                    return Err(CmdError::new("cut", "delimiter must be a single character"));
                }
                delim = Some(c);
            } else {
                return Err(CmdError::new("cut", format!("unexpected operand {a}")));
            }
        }
        let mode = match (chars_spec, fields_spec) {
            (Some(spec), None) => {
                if delim.is_some() {
                    return Err(CmdError::new("cut", "-d only makes sense with -f"));
                }
                Mode::Chars(RangeList::parse(&spec)?)
            }
            (None, Some(spec)) => Mode::Fields {
                delim: delim.unwrap_or('\t'),
                list: RangeList::parse(&spec)?,
            },
            _ => return Err(CmdError::new("cut", "specify exactly one of -c or -f")),
        };
        let mut display = String::from("cut");
        for a in args {
            display.push(' ');
            if a.contains(' ') || a.contains('"') {
                display.push_str(&format!("{a:?}"));
            } else {
                display.push_str(a);
            }
        }
        Ok(CutCmd { mode, display })
    }
}

impl CutCmd {
    /// The single contiguous selection range `(lo, hi)` when the fast
    /// path applies: one merged range, and (in field mode) an ASCII
    /// delimiter so it can be searched bytewise.
    fn single_range(&self) -> Option<(usize, usize)> {
        let list = match &self.mode {
            Mode::Chars(list) => list,
            Mode::Fields { delim, list } => {
                if !delim.is_ascii() {
                    return None;
                }
                list
            }
        };
        match list.ranges.as_slice() {
            [(lo, hi)] => Some((*lo, *hi)),
            _ => None,
        }
    }

    /// The slice fast path: for a single-range LIST every line's
    /// selection is one contiguous byte span, emitted as coalesced
    /// sub-slices of `input`. `text` must be the UTF-8 view of `input`.
    fn run_single_range_slices(&self, input: &Bytes, text: &str, lo: usize, hi: usize) -> Bytes {
        let newline = Bytes::from("\n");
        let bytes = text.as_bytes();
        let len = bytes.len();
        let mut runs = SliceRuns::new(input);
        let mut pos = 0usize;
        while pos < len {
            let (line_end, next) = match bytes[pos..].iter().position(|&b| b == b'\n') {
                Some(i) => (pos + i, pos + i + 1),
                None => (len, len),
            };
            let line = &bytes[pos..line_end];
            // The selected span, relative to the line; None = no field
            // `lo` exists (GNU prints an empty line).
            let span: Option<(usize, usize)> = match &self.mode {
                Mode::Fields { delim, .. } => {
                    let d = *delim as u8;
                    let mut dcount = 0usize;
                    let mut start = (lo == 1).then_some(0);
                    let mut end = line.len();
                    for (i, &b) in line.iter().enumerate() {
                        if b == d {
                            dcount += 1;
                            if dcount + 1 == lo {
                                start = Some(i + 1);
                            }
                            if dcount == hi {
                                end = i;
                                break;
                            }
                        }
                    }
                    if dcount == 0 {
                        // Delimiter-free lines pass through whole.
                        Some((0, line.len()))
                    } else {
                        start.map(|s| (s, end))
                    }
                }
                Mode::Chars(_) => {
                    if !line.is_ascii() {
                        // Char positions ≠ byte positions: defer to the
                        // oracle for this line, interleaved as a literal.
                        let selected: String = std::str::from_utf8(line)
                            .expect("line of a str is valid UTF-8")
                            .chars()
                            .skip(lo - 1)
                            .take(hi - lo + 1)
                            .collect();
                        runs.lit(Bytes::from(selected));
                        runs.lit(newline.clone());
                        pos = next;
                        continue;
                    }
                    if lo > line.len() {
                        None
                    } else {
                        Some((lo - 1, hi.min(line.len())))
                    }
                }
            };
            match span {
                None => runs.lit(newline.clone()),
                Some((s, e)) => {
                    runs.keep(pos + s..pos + e);
                    if e == line.len() && next > line_end {
                        // The span reaches the newline: slice through it.
                        runs.keep(line_end..next);
                    } else {
                        runs.lit(newline.clone());
                    }
                }
            }
            pos = next;
        }
        runs.finish()
    }

    /// The line-at-a-time implementation — the real path for multi-range
    /// lists and the oracle the differential tests compare the slice path
    /// against.
    #[doc(hidden)]
    pub fn run_reference(&self, input: &str) -> String {
        let mut out = String::with_capacity(input.len());
        for line in kq_stream::lines_of(input) {
            match &self.mode {
                Mode::Chars(list) => {
                    for (i, c) in line.chars().enumerate() {
                        if list.contains(i + 1) {
                            out.push(c);
                        }
                    }
                }
                Mode::Fields { delim, list } => {
                    if !line.contains(*delim) {
                        // GNU: delimiter-free lines pass through whole.
                        out.push_str(line);
                    } else {
                        let mut first = true;
                        for (i, field) in line.split(*delim).enumerate() {
                            if list.contains(i + 1) {
                                if !first {
                                    out.push(*delim);
                                }
                                out.push_str(field);
                                first = false;
                            }
                        }
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

impl UnixCommand for CutCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let text = crate::input_str(&input, "cut")?;
        if let Some((lo, hi)) = self.single_range() {
            return Ok(self.run_single_range_slices(&input, text, lo, hi));
        }
        Ok(Bytes::from(self.run_reference(text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn char_ranges() {
        assert_eq!(run("cut -c 1-4", "abcdefg\nxy\n"), "abcd\nxy\n");
        assert_eq!(run("cut -c 1-1", "abc\n"), "a\n");
        assert_eq!(run("cut -c 3-3", "abc\n"), "c\n");
    }

    #[test]
    fn field_selection_with_delim() {
        assert_eq!(run("cut -d ',' -f 1", "a,b,c\n"), "a\n");
        assert_eq!(run("cut -d ',' -f 2", "a,b,c\n"), "b\n");
        assert_eq!(run("cut -d ',' -f 1,3", "a,b,c\n"), "a,c\n");
    }

    #[test]
    fn field_list_order_is_ignored() {
        // GNU cut outputs fields in input order regardless of LIST order.
        assert_eq!(run("cut -d ',' -f 3,1", "a,b,c\n"), "a,c\n");
    }

    #[test]
    fn lines_without_delimiter_pass_through() {
        assert_eq!(run("cut -d ',' -f 2", "plain\na,b\n"), "plain\nb\n");
    }

    #[test]
    fn attached_option_forms() {
        assert_eq!(run("cut -d: -f1", "root:x:0\n"), "root\n");
    }

    #[test]
    fn default_field_delimiter_is_tab() {
        assert_eq!(run("cut -f 2", "a\tb\tc\n"), "b\n");
        assert_eq!(run("cut -f 1", "a\tb\n"), "a\n");
    }

    #[test]
    fn space_delimiter() {
        assert_eq!(run("cut -d ' ' -f 2", "john smith\n"), "smith\n");
        assert_eq!(run("cut -d ' ' -f 4", "a b c d e\n"), "d\n");
    }

    #[test]
    fn out_of_range_fields_are_empty() {
        assert_eq!(run("cut -d ',' -f 5", "a,b\n"), "\n");
        assert_eq!(run("cut -c 10", "abc\n"), "\n");
    }

    #[test]
    fn open_ended_ranges() {
        assert_eq!(run("cut -c 2-", "abcd\n"), "bcd\n");
        assert_eq!(run("cut -c -2", "abcd\n"), "ab\n");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("cut").is_err());
        assert!(parse_command("cut -c 0").is_err());
        assert!(parse_command("cut -d ',' -c 1").is_err());
        assert!(parse_command("cut -d ab -f 1").is_err());
        assert!(parse_command("cut -c 4-2").is_err());
    }

    fn cut(line: &str) -> CutCmd {
        let words = crate::split_words(line).unwrap();
        CutCmd::parse(&words[1..]).unwrap()
    }

    #[test]
    fn select_everything_is_a_refcount_bump() {
        // `-c 1-` keeps every character of every line: pure slicing.
        let input = Bytes::from("abc\ndef\n");
        let out = cut("cut -c 1-")
            .run(input.clone(), &ExecContext::default())
            .unwrap();
        assert_eq!(out, input);
        assert!(
            out.shares_buffer(&input),
            "full selection must be the input slice, not a copy"
        );
    }

    #[test]
    fn trailing_field_selection_slices_through_newlines() {
        // `-f 2-` on two-field lines keeps a suffix of every line plus its
        // newline; runs stay sub-slices of the input buffer.
        let input = Bytes::from("k1,v1\nk2,v2\n");
        let out = cut("cut -d, -f2-")
            .run(input.clone(), &ExecContext::default())
            .unwrap();
        assert_eq!(out, "v1\nv2\n");
    }

    #[test]
    fn single_range_slice_path_agrees_with_reference_on_edge_cases() {
        let cases = [
            "",
            "\n",
            "a\n",
            "a,b,c\n",
            "plain\na,b\n",
            "a,b",
            ",\n,,\n",
            "x,\n,y\n",
            "caf\u{e9},th\u{e9}\n",
            "\u{3b1}\u{3b2}\u{3b3}\n",
            "one two three\nfour\n",
        ];
        for cmd_line in [
            "cut -d ',' -f 1",
            "cut -d ',' -f 2",
            "cut -d ',' -f 2-",
            "cut -d ',' -f -2",
            "cut -d ',' -f 5",
            "cut -c 1-2",
            "cut -c 2-",
            "cut -c 3",
            "cut -c 10",
        ] {
            let c = cut(cmd_line);
            assert!(
                c.single_range().is_some(),
                "{cmd_line} should take the fast path"
            );
            for input in cases {
                let fast = c.run(Bytes::from(input), &ExecContext::default()).unwrap();
                assert_eq!(
                    fast.as_str(),
                    c.run_reference(input),
                    "{cmd_line:?} diverged on {input:?}"
                );
            }
        }
    }

    #[test]
    fn multi_range_lists_stay_off_the_fast_path() {
        assert!(cut("cut -d ',' -f 1,3").single_range().is_none());
        assert!(cut("cut -c 1,5-6").single_range().is_none());
        // Adjacent list elements merge into one range: still fast.
        assert!(cut("cut -d ',' -f 1,2").single_range().is_some());
    }
}
