//! `uniq` — collapse consecutive duplicate lines; `-c` prefixes each output
//! line with its repeat count, right-aligned in a 7-column field exactly as
//! GNU coreutils does (`"%7lu %s"`). The padding matters: KumQuat's
//! `stitch2` combiner deformats it with `delPad`/`addPad`, and the
//! synthesized combiner must reproduce it byte-for-byte.
//!
//! Plain `uniq` (no `-c`) emits a *subsequence of its input bytes* — the
//! first line of every run of equal lines, newline included — so it takes
//! the [`SliceRuns`](crate::fastpath) byte fast path: kept lines coalesce
//! into maximal sub-slices of the input, and an all-unique input comes
//! back as the input handle itself (a refcount bump, zero copies). `-c`
//! rewrites every line and stays on the string path, which doubles as
//! the differential-test oracle ([`UniqCmd::run_reference`]).

use crate::fastpath::SliceRuns;
use crate::{Bytes, CmdError, ExecContext, UnixCommand};

/// The `uniq` command.
pub struct UniqCmd {
    count: bool,
}

impl UniqCmd {
    /// Parses `uniq` arguments (`-c` is the only corpus flag).
    pub fn parse(args: &[String]) -> Result<UniqCmd, CmdError> {
        let mut count = false;
        for a in args {
            match a.as_str() {
                "-c" | "--count" => count = true,
                other => return Err(CmdError::new("uniq", format!("unknown option {other}"))),
            }
        }
        Ok(UniqCmd { count })
    }

    /// The slice fast path for plain `uniq`: scans lines bytewise and
    /// keeps the first line of each run of equal lines — through its
    /// newline, so consecutive kept lines coalesce into one slice. `text`
    /// must be the UTF-8 view of `input` (same indices). An unterminated
    /// final line gets a synthesized `"\n"`, matching the reference path.
    fn run_uniq_slices(&self, input: &Bytes, text: &str) -> Bytes {
        let bytes = text.as_bytes();
        let len = bytes.len();
        let mut runs = SliceRuns::new(input);
        let mut prev: Option<&[u8]> = None;
        let mut pos = 0usize;
        while pos < len {
            let (line_end, next) = match bytes[pos..].iter().position(|&b| b == b'\n') {
                Some(i) => (pos + i, pos + i + 1),
                None => (len, len),
            };
            let line = &bytes[pos..line_end];
            if prev != Some(line) {
                if next > line_end {
                    runs.keep(pos..next);
                } else {
                    runs.keep(pos..line_end);
                    runs.lit(Bytes::from("\n"));
                }
            }
            prev = Some(line);
            pos = next;
        }
        runs.finish()
    }

    /// The line-at-a-time implementation — the real path for `-c` and the
    /// oracle the differential tests compare the slice path against.
    #[doc(hidden)]
    pub fn run_reference(&self, input: &str) -> String {
        let mut out = String::with_capacity(input.len());
        let mut current: Option<(&str, u64)> = None;
        let emit = |line: &str, n: u64, out: &mut String| {
            if self.count {
                out.push_str(&format!("{n:>7} {line}\n"));
            } else {
                out.push_str(line);
                out.push('\n');
            }
        };
        for line in kq_stream::lines_of(input) {
            match current {
                Some((prev, n)) if prev == line => current = Some((prev, n + 1)),
                Some((prev, n)) => {
                    emit(prev, n, &mut out);
                    current = Some((line, 1));
                }
                None => current = Some((line, 1)),
            }
        }
        if let Some((prev, n)) = current {
            emit(prev, n, &mut out);
        }
        out
    }
}

impl UnixCommand for UniqCmd {
    fn display(&self) -> String {
        if self.count {
            "uniq -c".to_owned()
        } else {
            "uniq".to_owned()
        }
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let text = crate::input_str(&input, "uniq")?;
        if !self.count {
            return Ok(self.run_uniq_slices(&input, text));
        }
        Ok(Bytes::from(self.run_reference(text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;
    use proptest::prelude::*;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn collapses_adjacent_duplicates_only() {
        assert_eq!(run("uniq", "a\na\nb\na\n"), "a\nb\na\n");
    }

    #[test]
    fn count_padding_is_gnu_seven_wide() {
        assert_eq!(run("uniq -c", "w\nw\nw\nz\n"), "      3 w\n      1 z\n");
    }

    #[test]
    fn count_wider_than_field() {
        let input = "x\n".repeat(12345678);
        let out = run("uniq -c", &input);
        assert_eq!(out, "12345678 x\n");
    }

    #[test]
    fn empty_lines_count_too() {
        assert_eq!(run("uniq -c", "\n\na\n"), "      2 \n      1 a\n");
    }

    #[test]
    fn empty_input_empty_output() {
        assert_eq!(run("uniq", ""), "");
        assert_eq!(run("uniq -c", ""), "");
    }

    #[test]
    fn all_unique_input_is_a_refcount_bump() {
        let input = Bytes::from("a\nb\nc\n");
        let u = UniqCmd::parse(&[]).unwrap();
        let out = u.run(input.clone(), &ExecContext::default()).unwrap();
        assert_eq!(out, input);
        assert!(
            out.shares_buffer(&input),
            "all-unique uniq must be the input slice, not a copy"
        );
    }

    #[test]
    fn slice_path_agrees_with_reference_on_edge_cases() {
        let cases = [
            "",
            "\n",
            "\n\n",
            "a",
            "a\na",
            "a\na\n",
            "a\n\na\n",
            "\n\na\n",
            "x\nx\ny\nx\n",
            "é\né\nü\n",
            "last line unterminated\nlast line unterminated",
        ];
        let u = UniqCmd::parse(&[]).unwrap();
        for input in cases {
            let fast = u.run(Bytes::from(input), &ExecContext::default()).unwrap();
            assert_eq!(
                fast.as_str(),
                u.run_reference(input),
                "uniq diverged on {input:?}"
            );
        }
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse_command("uniq -d").is_err());
    }

    proptest! {
        #[test]
        fn prop_counts_sum_to_line_count(
            lines in proptest::collection::vec("[ab]{0,2}", 0..50)
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let out = run("uniq -c", &input);
            let total: i64 = kq_stream::lines_of(&out)
                .map(|l| kq_stream::parse_padded_int(l).unwrap().1)
                .sum();
            prop_assert_eq!(total as usize, lines.len());
        }

        #[test]
        fn prop_uniq_idempotent(
            lines in proptest::collection::vec("[ab]{0,2}", 0..50)
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let once = run("uniq", &input);
            let twice = run("uniq", &once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn prop_slice_path_matches_reference(
            lines in proptest::collection::vec("[ab]{0,2}", 0..50),
            terminated in 0usize..2,
        ) {
            let mut input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            if terminated == 0 {
                input.pop();
            }
            let u = UniqCmd::parse(&[]).unwrap();
            let fast = u.run(Bytes::from(input.as_str()), &ExecContext::default()).unwrap();
            prop_assert_eq!(fast.as_str(), u.run_reference(&input));
        }
    }
}
