//! `uniq` — collapse consecutive duplicate lines; `-c` prefixes each output
//! line with its repeat count, right-aligned in a 7-column field exactly as
//! GNU coreutils does (`"%7lu %s"`). The padding matters: KumQuat's
//! `stitch2` combiner deformats it with `delPad`/`addPad`, and the
//! synthesized combiner must reproduce it byte-for-byte.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};

/// The `uniq` command.
pub struct UniqCmd {
    count: bool,
}

impl UniqCmd {
    /// Parses `uniq` arguments (`-c` is the only corpus flag).
    pub fn parse(args: &[String]) -> Result<UniqCmd, CmdError> {
        let mut count = false;
        for a in args {
            match a.as_str() {
                "-c" | "--count" => count = true,
                other => return Err(CmdError::new("uniq", format!("unknown option {other}"))),
            }
        }
        Ok(UniqCmd { count })
    }
}

impl UnixCommand for UniqCmd {
    fn display(&self) -> String {
        if self.count {
            "uniq -c".to_owned()
        } else {
            "uniq".to_owned()
        }
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "uniq")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            let mut current: Option<(&str, u64)> = None;
            let emit = |line: &str, n: u64, out: &mut String| {
                if self.count {
                    out.push_str(&format!("{n:>7} {line}\n"));
                } else {
                    out.push_str(line);
                    out.push('\n');
                }
            };
            for line in kq_stream::lines_of(input) {
                match current {
                    Some((prev, n)) if prev == line => current = Some((prev, n + 1)),
                    Some((prev, n)) => {
                        emit(prev, n, &mut out);
                        current = Some((line, 1));
                    }
                    None => current = Some((line, 1)),
                }
            }
            if let Some((prev, n)) = current {
                emit(prev, n, &mut out);
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;
    use proptest::prelude::*;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn collapses_adjacent_duplicates_only() {
        assert_eq!(run("uniq", "a\na\nb\na\n"), "a\nb\na\n");
    }

    #[test]
    fn count_padding_is_gnu_seven_wide() {
        assert_eq!(run("uniq -c", "w\nw\nw\nz\n"), "      3 w\n      1 z\n");
    }

    #[test]
    fn count_wider_than_field() {
        let input = "x\n".repeat(12345678);
        let out = run("uniq -c", &input);
        assert_eq!(out, "12345678 x\n");
    }

    #[test]
    fn empty_lines_count_too() {
        assert_eq!(run("uniq -c", "\n\na\n"), "      2 \n      1 a\n");
    }

    #[test]
    fn empty_input_empty_output() {
        assert_eq!(run("uniq", ""), "");
        assert_eq!(run("uniq -c", ""), "");
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse_command("uniq -d").is_err());
    }

    proptest! {
        #[test]
        fn prop_counts_sum_to_line_count(
            lines in proptest::collection::vec("[ab]{0,2}", 0..50)
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let out = run("uniq -c", &input);
            let total: i64 = kq_stream::lines_of(&out)
                .map(|l| kq_stream::parse_padded_int(l).unwrap().1)
                .sum();
            prop_assert_eq!(total as usize, lines.len());
        }

        #[test]
        fn prop_uniq_idempotent(
            lines in proptest::collection::vec("[ab]{0,2}", 0..50)
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let once = run("uniq", &input);
            let twice = run("uniq", &once);
            prop_assert_eq!(once, twice);
        }
    }
}
