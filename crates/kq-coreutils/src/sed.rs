//! `sed` — the stream-editor script forms used by the corpus:
//!
//! * `s<delim>RE<delim>REPL<delim>[g]` — substitution with any delimiter
//!   (the poets scripts use `s;^;prefix;`), backreferences and `&` in the
//!   replacement;
//! * `Nq` — print the first N lines, then quit (`sed 100q`, `sed 5q`);
//! * `Nd` — delete the N-th line (`sed 1d` … `sed 5d`, Table 9's
//!   no-combiner-exists commands);
//! * `$d` — delete the last line.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};
use kq_pattern::Regex;

enum Script {
    Substitute {
        regex: Regex,
        replacement: String,
        global: bool,
    },
    QuitAfter(usize),
    DeleteLine(usize),
    DeleteLast,
}

/// The `sed` command.
pub struct SedCmd {
    script: Script,
    display: String,
}

impl SedCmd {
    /// Parses `sed` arguments: a single script word (optionally preceded by
    /// `-e`).
    pub fn parse(args: &[String]) -> Result<SedCmd, CmdError> {
        let mut script_text: Option<&String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-e" => {
                    script_text = Some(
                        it.next()
                            .ok_or_else(|| CmdError::new("sed", "missing script"))?,
                    );
                }
                "-n" => return Err(CmdError::new("sed", "-n is not supported")),
                other if script_text.is_none() => {
                    script_text = Some(a);
                    let _ = other;
                }
                other => return Err(CmdError::new("sed", format!("unexpected operand {other}"))),
            }
        }
        let text = script_text.ok_or_else(|| CmdError::new("sed", "missing script"))?;
        let script = parse_script(text)?;
        Ok(SedCmd {
            script,
            display: format!("sed '{text}'"),
        })
    }
}

fn parse_script(text: &str) -> Result<Script, CmdError> {
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return Err(CmdError::new("sed", "empty script"));
    }
    // Address forms: "100q", "3d", "$d".
    if text == "$d" {
        return Ok(Script::DeleteLast);
    }
    let digits: String = chars.iter().take_while(|c| c.is_ascii_digit()).collect();
    if !digits.is_empty() && digits.len() + 1 == chars.len() {
        let n: usize = digits
            .parse()
            .map_err(|_| CmdError::new("sed", "address overflow"))?;
        match chars[chars.len() - 1] {
            'q' => return Ok(Script::QuitAfter(n)),
            'd' => return Ok(Script::DeleteLine(n)),
            other => return Err(CmdError::new("sed", format!("unknown command {other}"))),
        }
    }
    // Substitution with arbitrary delimiter: s<d>RE<d>REPL<d>[flags]
    if chars[0] == 's' && chars.len() >= 4 {
        let d = chars[1];
        let mut parts: Vec<String> = vec![String::new()];
        let mut i = 2;
        while i < chars.len() {
            let c = chars[i];
            if c == '\\' && i + 1 < chars.len() && chars[i + 1] == d {
                // Escaped delimiter stays literal.
                parts.last_mut().unwrap().push(d);
                i += 2;
                continue;
            }
            if c == d {
                parts.push(String::new());
            } else {
                parts.last_mut().unwrap().push(c);
            }
            i += 1;
        }
        if parts.len() != 3 {
            return Err(CmdError::new("sed", "unterminated s command"));
        }
        let (re_text, replacement, flags) = (&parts[0], &parts[1], &parts[2]);
        let mut global = false;
        for f in flags.chars() {
            match f {
                'g' => global = true,
                other => return Err(CmdError::new("sed", format!("unknown s flag {other}"))),
            }
        }
        let regex = Regex::new(re_text).map_err(|e| CmdError::new("sed", e.to_string()))?;
        return Ok(Script::Substitute {
            regex,
            replacement: replacement.clone(),
            global,
        });
    }
    Err(CmdError::new("sed", format!("unsupported script {text:?}")))
}

impl UnixCommand for SedCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn line_bound(&self) -> Option<usize> {
        // Only the quit form stops reading: `sed kq` prints the first k
        // lines and never observes the rest. The delete forms need the
        // whole stream (`kd` must echo the tail, `$d` must find the end)
        // and substitution reads everything.
        match &self.script {
            Script::QuitAfter(n) => Some(*n),
            _ => None,
        }
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "sed")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            match &self.script {
                Script::Substitute {
                    regex,
                    replacement,
                    global,
                } => {
                    for line in kq_stream::lines_of(input) {
                        let new = if *global {
                            regex.replace_all(line, replacement)
                        } else {
                            regex.replace_first(line, replacement)
                        };
                        out.push_str(&new);
                        out.push('\n');
                    }
                }
                Script::QuitAfter(n) => {
                    for (i, line) in kq_stream::lines_of(input).enumerate() {
                        if i >= *n {
                            break;
                        }
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                Script::DeleteLine(n) => {
                    for (i, line) in kq_stream::lines_of(input).enumerate() {
                        if i + 1 == *n {
                            continue;
                        }
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                Script::DeleteLast => {
                    let lines: Vec<&str> = kq_stream::lines_of(input).collect();
                    for line in lines.iter().take(lines.len().saturating_sub(1)) {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn substitute_first() {
        assert_eq!(run("sed s/o/0/", "foo\nboo\n"), "f0o\nb0o\n");
    }

    #[test]
    fn substitute_global() {
        assert_eq!(run("sed s/o/0/g", "foo\n"), "f00\n");
    }

    #[test]
    fn substitute_with_semicolon_delimiter() {
        assert_eq!(
            run("sed 's;^;/in/;'", "a.txt\nb.txt\n"),
            "/in/a.txt\n/in/b.txt\n"
        );
    }

    #[test]
    fn substitute_end_of_line() {
        // unix50 17.sh: append "0s" to each line.
        assert_eq!(run("sed 's/$/0s/'", "197\n198\n"), "1970s\n1980s\n");
    }

    #[test]
    fn substitute_with_group() {
        // analytics-mts 3.sh: pull the hour out of the timestamp.
        assert_eq!(
            run(r"sed 's/T\(..\):..:../,\1/'", "2020-07-01T08:15:59,v42\n"),
            "2020-07-01,08,v42\n"
        );
    }

    #[test]
    fn timestamp_strip() {
        // analytics-mts 1.sh.
        assert_eq!(
            run("sed 's/T..:..:..//'", "2020-07-01T08:15:59,v42\n"),
            "2020-07-01,v42\n"
        );
    }

    #[test]
    fn quit_after_n() {
        let input = "1\n2\n3\n4\n";
        assert_eq!(run("sed 2q", input), "1\n2\n");
        assert_eq!(run("sed 100q", input), input);
    }

    #[test]
    fn delete_nth_line() {
        let input = "1\n2\n3\n";
        assert_eq!(run("sed 1d", input), "2\n3\n");
        assert_eq!(run("sed 2d", input), "1\n3\n");
        assert_eq!(run("sed 5d", input), input);
    }

    #[test]
    fn delete_last_line() {
        assert_eq!(run("sed '$d'", "1\n2\n3\n"), "1\n2\n");
        assert_eq!(run("sed '$d'", ""), "");
    }

    #[test]
    fn only_the_quit_form_is_prefix_bounded() {
        assert_eq!(parse_command("sed 100q").unwrap().line_bound(), Some(100));
        assert_eq!(parse_command("sed 5q").unwrap().line_bound(), Some(5));
        // Delete forms echo the tail (or need the end); substitution
        // reads everything — none may signal a bound.
        assert_eq!(parse_command("sed 1d").unwrap().line_bound(), None);
        assert_eq!(parse_command("sed '$d'").unwrap().line_bound(), None);
        assert_eq!(parse_command("sed s/a/b/").unwrap().line_bound(), None);
    }

    #[test]
    fn rejects_unsupported_scripts() {
        assert!(parse_command("sed y/abc/xyz/").is_err());
        assert!(parse_command("sed").is_err());
        assert!(parse_command("sed s/a/b").is_err());
    }
}
