//! Shared machinery for byte fast paths.
//!
//! Several commands (`grep` without reformatting flags, `tr -d`,
//! single-range `cut`) emit output that is a *subsequence of their input
//! bytes*: every output byte is an input byte, in input order. Such
//! commands can skip rebuilding a `String` and instead emit sub-slices of
//! the input [`Bytes`], coalescing adjacent keeps into maximal runs so the
//! gather is O(runs), not O(lines). When everything is kept the result is
//! the input handle itself — a refcount bump, zero copies, and zero pages
//! touched beyond the scan when the input is a mapped file.

use crate::{Bytes, Rope};
use std::ops::Range;

/// Accumulates kept byte ranges of one input stream, coalescing
/// contiguous ranges into single slices.
pub(crate) struct SliceRuns<'a> {
    input: &'a Bytes,
    out: Rope,
    run: Option<Range<usize>>,
}

impl<'a> SliceRuns<'a> {
    pub(crate) fn new(input: &'a Bytes) -> SliceRuns<'a> {
        SliceRuns {
            input,
            out: Rope::new(),
            run: None,
        }
    }

    /// Keeps `range` of the input. Ranges must arrive in increasing,
    /// non-overlapping order; a range touching the previous one extends
    /// the current run instead of starting a new slice.
    pub(crate) fn keep(&mut self, range: Range<usize>) {
        if range.is_empty() {
            return;
        }
        match &mut self.run {
            Some(run) if run.end == range.start => run.end = range.end,
            Some(run) => {
                self.out.push(self.input.slice(run.clone()));
                self.run = Some(range);
            }
            None => self.run = Some(range),
        }
    }

    /// Emits literal bytes (e.g. a synthesized `"\n"`) between runs.
    pub(crate) fn lit(&mut self, bytes: Bytes) {
        if let Some(run) = self.run.take() {
            self.out.push(self.input.slice(run));
        }
        self.out.push(bytes);
    }

    pub(crate) fn finish(mut self) -> Bytes {
        if let Some(run) = self.run.take() {
            self.out.push(self.input.slice(run));
        }
        self.out.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_keeps_coalesce_to_the_input_handle() {
        let input = Bytes::from("abcdef");
        let mut runs = SliceRuns::new(&input);
        runs.keep(0..2);
        runs.keep(2..4);
        runs.keep(4..6);
        let out = runs.finish();
        assert_eq!(out, input);
        assert!(out.shares_buffer(&input), "full keep must be zero-copy");
    }

    #[test]
    fn gaps_split_runs_and_literals_interleave() {
        let input = Bytes::from("aa.bb.cc");
        let mut runs = SliceRuns::new(&input);
        runs.keep(0..2);
        runs.keep(3..5);
        runs.lit(Bytes::from("\n"));
        runs.keep(6..8);
        assert_eq!(runs.finish(), "aabb\ncc");
    }

    #[test]
    fn empty_ranges_are_ignored() {
        let input = Bytes::from("xyz");
        let mut runs = SliceRuns::new(&input);
        runs.keep(1..1);
        runs.keep(1..2);
        runs.keep(2..2);
        let out = runs.finish();
        assert_eq!(out, "y");
        assert!(out.shares_buffer(&input));
    }
}
