//! Shell word splitting for command lines.
//!
//! Handles the quoting styles in the benchmark scripts: single quotes
//! (literal), double quotes (with `\"` and `\\` escapes), and unquoted
//! backslash escapes. Newline/tab escapes (`\n`, `\t`) inside quotes are
//! preserved verbatim for the command parsers that interpret them (`tr`
//! interprets `'\n'` itself, as in the real shell where the quotes pass the
//! two characters through).

/// Splits `line` into shell words. Returns an error message on unbalanced
/// quotes.
pub fn split_words(line: &str) -> Result<Vec<String>, String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut in_word = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' | '\n' => {
                if in_word {
                    words.push(std::mem::take(&mut cur));
                    in_word = false;
                }
            }
            '\'' => {
                in_word = true;
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => cur.push(ch),
                        None => return Err("unterminated single quote".into()),
                    }
                }
            }
            '"' => {
                in_word = true;
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e @ ('"' | '\\' | '$' | '`')) => cur.push(e),
                            Some(e) => {
                                cur.push('\\');
                                cur.push(e);
                            }
                            None => return Err("unterminated double quote".into()),
                        },
                        Some(ch) => cur.push(ch),
                        None => return Err("unterminated double quote".into()),
                    }
                }
            }
            '\\' => {
                in_word = true;
                match chars.next() {
                    Some(e) => cur.push(e),
                    None => cur.push('\\'),
                }
            }
            _ => {
                in_word = true;
                cur.push(c);
            }
        }
    }
    if in_word {
        words.push(cur);
    }
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(line: &str) -> Vec<String> {
        split_words(line).unwrap()
    }

    #[test]
    fn splits_plain_words() {
        assert_eq!(w("sort -rn"), vec!["sort", "-rn"]);
    }

    #[test]
    fn single_quotes_are_literal() {
        assert_eq!(w(r"tr -cs A-Za-z '\n'"), vec!["tr", "-cs", "A-Za-z", r"\n"]);
        assert_eq!(w("grep 'a b'"), vec!["grep", "a b"]);
    }

    #[test]
    fn double_quotes_with_escapes() {
        assert_eq!(w(r#"awk "\$1 >= 1000""#), vec!["awk", "$1 >= 1000"]);
        assert_eq!(w(r#"grep "shell script""#), vec!["grep", "shell script"]);
        assert_eq!(w(r#"cut -d "\"" -f 2"#), vec!["cut", "-d", "\"", "-f", "2"]);
    }

    #[test]
    fn adjacent_quoted_segments_join() {
        assert_eq!(w("a'b'\"c\""), vec!["abc"]);
    }

    #[test]
    fn empty_quoted_word_is_kept() {
        assert_eq!(w("x '' y"), vec!["x", "", "y"]);
    }

    #[test]
    fn unquoted_backslash_escapes_next() {
        assert_eq!(w(r"grep \("), vec!["grep", "("]);
    }

    #[test]
    fn unbalanced_quotes_error() {
        assert!(split_words("grep 'abc").is_err());
        assert!(split_words("grep \"abc").is_err());
    }

    #[test]
    fn sed_semicolon_script_survives() {
        assert_eq!(w(r#"sed "s;^;/books/;""#), vec!["sed", "s;^;/books/;"]);
    }
}
