//! In-process, GNU-compatible implementations of the Unix commands used by
//! the KumQuat benchmark corpus.
//!
//! KumQuat treats commands as black boxes — functions `Stream -> Stream`
//! (paper Definition 3.2) — and only ever observes their outputs. This crate
//! provides that black box: every command/flag combination appearing in the
//! paper's Table 10, implemented directly in Rust with GNU's observable
//! semantics (including quirks the combiner synthesis depends on, such as
//! `uniq -c`'s 7-column count padding, `cut`'s field-order behaviour, and
//! `comm`'s sorted-input requirement).
//!
//! Commands execute against an [`ExecContext`] carrying a virtual filesystem
//! so that file-consuming commands (`xargs cat`, `comm - dict`, `paste a b`)
//! work hermetically.
//!
//! The command interface is the zero-copy byte plane: [`UnixCommand::run`]
//! consumes and produces [`Bytes`] — refcounted slices of shared buffers —
//! so pass-through commands (`cat`) and the executors' split/hand-off
//! never copy stream payloads. [`Command::run_str`] is a thin owned-string
//! compatibility shim for tests and probes.
//!
//! ```
//! use kq_coreutils::{parse_command, ExecContext};
//!
//! let uniq_c = parse_command("uniq -c").unwrap();
//! let out = uniq_c.run_str("a\na\nb\n", &ExecContext::default()).unwrap();
//! assert_eq!(out, "      2 a\n      1 b\n");   // GNU's 7-column padding
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod awk;
pub mod comm;
pub mod cut;
pub mod external;
pub mod extras;
mod fastpath;
pub mod grep;
pub mod headtail;
pub mod multi;
pub mod sed;
pub mod shellwords;
pub mod sort;
pub mod textutils;
pub mod tr;
pub mod uniq;
pub mod vfs;
pub mod wc;
pub mod xargs;

use std::fmt;
use std::sync::Arc;

pub use kq_stream::{Bytes, Rope};
pub use shellwords::split_words;
pub use vfs::Vfs;

/// Views a command input as UTF-8 text, reporting a command-attributed
/// error for foreign byte data (the corpus is always text, but [`Bytes`]
/// itself does not enforce that).
pub(crate) fn input_str<'a>(input: &'a Bytes, command: &str) -> Result<&'a str, CmdError> {
    input
        .to_str()
        .map_err(|_| CmdError::new(command, "input is not valid UTF-8"))
}

/// Reads a file operand as text with the same UTF-8 validation piped input
/// gets ([`input_str`]): foreign bytes are a hard, command-attributed
/// error. (`Vfs::read` used to degrade lossily on this path while piped
/// bytes hard-errored — the two doors now agree.) Returns `None` when the
/// file does not exist, so each caller keeps its own missing-file message.
pub(crate) fn read_file_str(
    ctx: &ExecContext,
    path: &str,
    command: &str,
) -> Result<Option<String>, CmdError> {
    let Some(bytes) = ctx.vfs.read_bytes(path) else {
        return Ok(None);
    };
    if bytes.to_str().is_err() {
        return Err(CmdError::new(
            command,
            format!("{path}: input is not valid UTF-8"),
        ));
    }
    Ok(Some(bytes.into_string()))
}

/// An execution failure: the in-process analogue of a command writing to
/// stderr and exiting non-zero (e.g. `comm` on unsorted input, `cat` on a
/// missing file). KumQuat's preprocessing probes rely on observing these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdError {
    /// The command that failed.
    pub command: String,
    /// A stderr-style message.
    pub message: String,
}

impl CmdError {
    /// An error attributed to `command` with a stderr-style `message`.
    pub fn new(command: impl Into<String>, message: impl Into<String>) -> CmdError {
        CmdError {
            command: command.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for CmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.command, self.message)
    }
}

impl std::error::Error for CmdError {}

/// Shared execution environment: the virtual filesystem visible to
/// file-consuming commands.
#[derive(Debug, Clone, Default)]
pub struct ExecContext {
    /// The virtual filesystem. `Arc`-shared so parallel command instances
    /// can read it without copies.
    pub vfs: Arc<Vfs>,
}

impl ExecContext {
    /// A context over an existing filesystem.
    pub fn with_vfs(vfs: Vfs) -> ExecContext {
        ExecContext { vfs: Arc::new(vfs) }
    }
}

/// A black-box Unix command: a deterministic function from an input stream
/// to an output stream (paper Definition 3.2), which may also fail the way
/// a real command exits non-zero.
pub trait UnixCommand: Send + Sync {
    /// The original command line (for display and error messages).
    fn display(&self) -> String;

    /// Runs the command on `input`, producing its stdout.
    ///
    /// Input and output are [`Bytes`]: refcounted shared slices. Taking
    /// `Bytes` by value lets pass-through implementations return the
    /// input (or a slice of it) without copying, and lets executors hand
    /// split pieces to worker threads as refcount bumps.
    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError>;

    /// True when the command consumes its standard input. `cat file.txt`,
    /// `paste a b` and friends do not; pipelines treat them as sources.
    fn reads_stdin(&self) -> bool {
        true
    }

    /// Prefix bound: `Some(n)` when the command's output is fully
    /// determined by the first `n` *complete* lines of its standard input
    /// — it never observes anything past them. `head -n k` and `sed kq`
    /// qualify; `sed kd` (needs the tail), `tail` (needs the end), and
    /// everything else do not. `None` (the default) means the command may
    /// read to end-of-input.
    ///
    /// This is the early-exit signal: a streaming executor can stop
    /// feeding such a command the moment `n` complete lines exist and
    /// cancel everything upstream (the paper-corpus
    /// `… | sort -nr | head -n 1` shape). The contract is semantic, not
    /// advisory — `run` on any stream holding at least `n` newline
    /// terminated lines must return exactly what `run` on the full stream
    /// would.
    fn line_bound(&self) -> Option<usize> {
        None
    }
}

/// A parsed command: argv plus its boxed implementation.
pub struct Command {
    argv: Vec<String>,
    imp: Box<dyn UnixCommand>,
}

impl Command {
    /// Wraps a user-provided [`UnixCommand`] implementation.
    ///
    /// This is the paper's headline extension point: KumQuat "immediately
    /// work[s] with new commands ... without the need to manually develop
    /// new combiners". A downstream crate implements `UnixCommand` for its
    /// own stream processor, wraps it here, and hands it to
    /// [`kq_synth::synthesize`] — no registry changes needed.
    ///
    /// `argv` is only used for display and shell re-emission; it should
    /// round-trip to an executable command line when shell emission is
    /// wanted.
    pub fn custom(argv: Vec<String>, imp: Box<dyn UnixCommand>) -> Command {
        assert!(!argv.is_empty(), "custom commands need a program name");
        Command { argv, imp }
    }

    /// The words of the command line.
    pub fn argv(&self) -> &[String] {
        &self.argv
    }

    /// The program name (`argv[0]`).
    pub fn program(&self) -> &str {
        &self.argv[0]
    }

    /// The original command line, re-quoted for display.
    pub fn display(&self) -> String {
        self.imp.display()
    }

    /// Runs the command on `input` (the zero-copy byte plane).
    pub fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        self.imp.run(input, ctx)
    }

    /// Owned-string compatibility shim over [`Command::run`]: copies the
    /// input into a fresh buffer and the output into a `String`. Tests and
    /// synthesis probes (which run on tiny generated streams) use this;
    /// the executors stay on [`Command::run`].
    pub fn run_str(&self, input: &str, ctx: &ExecContext) -> Result<String, CmdError> {
        self.imp
            .run(Bytes::from(input), ctx)
            .map(Bytes::into_string)
    }

    /// See [`UnixCommand::reads_stdin`].
    pub fn reads_stdin(&self) -> bool {
        self.imp.reads_stdin()
    }

    /// See [`UnixCommand::line_bound`]. Always `None` for commands that do
    /// not read their standard input (a file-operand `head big.txt` is a
    /// source; the bound applies to the file, not the pipe).
    pub fn line_bound(&self) -> Option<usize> {
        if self.imp.reads_stdin() {
            self.imp.line_bound()
        } else {
            None
        }
    }
}

impl fmt::Debug for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Command({})", self.display())
    }
}

/// Parses a single command line (no pipes) into a runnable [`Command`].
///
/// Accepts leading `VAR=value` environment assignments (they select
/// behaviour only for `LC_COLLATE=C`, which is our default collation
/// anyway) and dispatches on the program name.
pub fn parse_command(line: &str) -> Result<Command, CmdError> {
    let words = split_words(line).map_err(|e| CmdError::new("sh", e))?;
    from_argv(&words)
}

/// Builds a runnable [`Command`] from pre-split argv words.
pub fn from_argv(words: &[String]) -> Result<Command, CmdError> {
    // Skip leading VAR=VALUE assignments (e.g. `LC_COLLATE=C comm ...`).
    let mut start = 0;
    while start < words.len()
        && words[start].contains('=')
        && !words[start].starts_with('-')
        && words[start].split('=').next().is_some_and(|name| {
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        })
        && words[start].find('=').unwrap() > 0
    {
        start += 1;
    }
    let argv: Vec<String> = words[start..].to_vec();
    if argv.is_empty() {
        return Err(CmdError::new("sh", "empty command"));
    }
    let prog = argv[0].as_str();
    let rest = &argv[1..];
    let imp: Box<dyn UnixCommand> = match prog {
        // `cat -n` is line numbering, not concatenation.
        "cat" if rest.first().is_some_and(|a| a == "-n") && rest.len() == 1 => {
            Box::new(extras::NlCmd::cat_n())
        }
        "cat" => Box::new(CatCmd::new(rest)),
        "nl" => Box::new(extras::NlCmd::parse(rest)?),
        "tac" => Box::new(extras::TacCmd),
        "fold" => Box::new(extras::FoldCmd::parse(rest)?),
        "expand" => Box::new(extras::ExpandCmd),
        "shuf" => Box::new(extras::ShufCmd),
        "tr" => Box::new(tr::TrCmd::parse(rest)?),
        "sort" => Box::new(sort::SortCmd::parse(rest)?),
        "uniq" => Box::new(uniq::UniqCmd::parse(rest)?),
        "grep" => Box::new(grep::GrepCmd::parse(rest)?),
        "sed" => Box::new(sed::SedCmd::parse(rest)?),
        "cut" => Box::new(cut::CutCmd::parse(rest)?),
        "head" => Box::new(headtail::HeadCmd::parse(rest)?),
        "tail" => Box::new(headtail::TailCmd::parse(rest)?),
        "wc" => Box::new(wc::WcCmd::parse(rest)?),
        "comm" => Box::new(comm::CommCmd::parse(rest)?),
        "awk" | "gawk" => Box::new(awk::AwkCmd::parse(rest)?),
        "xargs" => Box::new(xargs::XargsCmd::parse(rest)?),
        "col" => Box::new(textutils::ColCmd::parse(rest)?),
        "rev" => Box::new(textutils::RevCmd),
        "fmt" => Box::new(textutils::FmtCmd::parse(rest)?),
        "iconv" => Box::new(textutils::IconvCmd::parse(rest)?),
        "paste" => Box::new(multi::PasteCmd::parse(rest)?),
        "diff" => Box::new(multi::DiffCmd::parse(rest)?),
        "ls" => Box::new(multi::LsCmd),
        "mkfifo" | "rm" => Box::new(multi::NoopCmd {
            line: argv.join(" "),
        }),
        other => {
            return Err(CmdError::new(other, "unknown command"));
        }
    };
    Ok(Command { argv, imp })
}

/// `cat` — concatenates its file arguments, or copies stdin when invoked
/// with no arguments (or with `-`).
struct CatCmd {
    files: Vec<String>,
}

impl CatCmd {
    fn new(args: &[String]) -> CatCmd {
        CatCmd {
            files: args.to_vec(),
        }
    }
}

impl UnixCommand for CatCmd {
    fn display(&self) -> String {
        if self.files.is_empty() {
            "cat".to_owned()
        } else {
            format!("cat {}", self.files.join(" "))
        }
    }

    fn reads_stdin(&self) -> bool {
        self.files.is_empty() || self.files.iter().any(|f| f == "-")
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        if self.files.is_empty() {
            // Pure pass-through: the refcount bump *is* the copy.
            return Ok(input);
        }
        let mut out = Rope::new();
        for f in &self.files {
            if f == "-" {
                out.push(input.clone());
            } else {
                match ctx.vfs.read_bytes(f) {
                    Some(content) => out.push(content),
                    None => {
                        return Err(CmdError::new(
                            "cat",
                            format!("{f}: No such file or directory"),
                        ))
                    }
                }
            }
        }
        Ok(out.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExecContext {
        let vfs = Vfs::default();
        vfs.write("a.txt", "alpha\n");
        vfs.write("b.txt", "beta\n");
        ExecContext::with_vfs(vfs)
    }

    #[test]
    fn cat_copies_stdin() {
        let c = parse_command("cat").unwrap();
        assert_eq!(c.run_str("x\ny\n", &ctx()).unwrap(), "x\ny\n");
        assert!(c.reads_stdin());
    }

    #[test]
    fn cat_reads_files() {
        let c = parse_command("cat a.txt b.txt").unwrap();
        assert_eq!(c.run_str("", &ctx()).unwrap(), "alpha\nbeta\n");
        assert!(!c.reads_stdin());
    }

    #[test]
    fn cat_missing_file_errors() {
        let c = parse_command("cat nope.txt").unwrap();
        assert!(c.run_str("", &ctx()).is_err());
    }

    #[test]
    fn env_assignment_prefix_is_skipped() {
        let c = parse_command("LC_COLLATE=C sort").unwrap();
        assert_eq!(c.program(), "sort");
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(parse_command("frobnicate -x").is_err());
    }

    #[test]
    fn empty_command_is_an_error() {
        assert!(parse_command("").is_err());
        assert!(parse_command("   ").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let c = parse_command("grep -c foo").unwrap();
        assert_eq!(c.display(), "grep -c foo");
    }

    #[test]
    fn foreign_bytes_error_identically_piped_and_as_file_operand() {
        // The two input doors must agree: piped foreign bytes have always
        // been a hard error; file operands used to degrade lossily via
        // `Vfs::read` and now hard-error through the same validation.
        let vfs = Vfs::new();
        let foreign: Vec<u8> = vec![0xff, 0xfe, b'x', b'\n'];
        vfs.write("/foreign", Bytes::from(foreign.clone()));
        vfs.write("/clean", "a\nb\n");
        let ctx = ExecContext::with_vfs(vfs);

        // Piped path.
        let sort = parse_command("sort").unwrap();
        let piped = sort.run(Bytes::from(foreign), &ctx).unwrap_err();
        assert!(piped.message.contains("not valid UTF-8"), "{piped}");

        // File-operand paths, one per parsing command.
        for line in [
            "sort /foreign",
            "comm - /foreign",
            "paste /foreign",
            "diff /clean /foreign",
        ] {
            let cmd = parse_command(line).unwrap();
            let err = cmd.run(Bytes::from("a\n"), &ctx).unwrap_err();
            assert!(
                err.message.contains("not valid UTF-8"),
                "{line:?} should hard-error like the piped path, got: {err}"
            );
        }

        // Clean files still read fine through the validated door.
        let cmd = parse_command("sort /clean").unwrap();
        assert_eq!(cmd.run(Bytes::new(), &ctx).unwrap(), "a\nb\n");
    }
}
