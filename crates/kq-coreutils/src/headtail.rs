//! `head` and `tail` — line-window commands.
//!
//! `head` supports `-n N`, the historical `-N`, and the 10-line default.
//! `tail` supports `-n N` (last N lines), and the from-line forms `+N` /
//! `-n +N` (everything starting at line N) — the latter being Table 9's
//! `tail +2`/`tail +3`, for which no combiner exists.

use crate::{CmdError, ExecContext, UnixCommand};

/// The `head` command.
pub struct HeadCmd {
    n: usize,
    file: Option<String>,
    display: String,
}

impl HeadCmd {
    /// Parses `head` arguments.
    pub fn parse(args: &[String]) -> Result<HeadCmd, CmdError> {
        let mut n = 10usize;
        let mut file: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "-n" {
                let v = it.next().ok_or_else(|| CmdError::new("head", "missing count"))?;
                n = v
                    .parse()
                    .map_err(|_| CmdError::new("head", format!("invalid count {v:?}")))?;
            } else if let Some(body) = a.strip_prefix("-n") {
                n = body
                    .parse()
                    .map_err(|_| CmdError::new("head", format!("invalid count {body:?}")))?;
            } else if let Some(body) = a.strip_prefix('-') {
                n = body
                    .parse()
                    .map_err(|_| CmdError::new("head", format!("invalid option {a}")))?;
            } else if file.is_none() {
                file = Some(a.clone());
            } else {
                return Err(CmdError::new("head", "at most one file operand"));
            }
        }
        let display = if args.is_empty() {
            "head".to_owned()
        } else {
            format!("head {}", args.join(" "))
        };
        Ok(HeadCmd { n, file, display })
    }
}

impl UnixCommand for HeadCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn reads_stdin(&self) -> bool {
        self.file.is_none()
    }

    fn run(&self, input: &str, ctx: &ExecContext) -> Result<String, CmdError> {
        let content;
        let input = match &self.file {
            Some(f) => {
                content = ctx.vfs.read(f).ok_or_else(|| {
                    CmdError::new("head", format!("{f}: No such file or directory"))
                })?;
                content.as_str()
            }
            None => input,
        };
        let mut out = String::new();
        for (i, line) in kq_stream::lines_of(input).enumerate() {
            if i >= self.n {
                break;
            }
            out.push_str(line);
            out.push('\n');
        }
        Ok(out)
    }
}

enum TailMode {
    /// Last N lines.
    LastN(usize),
    /// From line N (1-based) to the end — `tail +N`.
    FromLine(usize),
}

/// The `tail` command.
pub struct TailCmd {
    mode: TailMode,
    file: Option<String>,
    display: String,
}

impl TailCmd {
    /// Parses `tail` arguments.
    pub fn parse(args: &[String]) -> Result<TailCmd, CmdError> {
        let mut mode = TailMode::LastN(10);
        let mut file: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let spec: &str = if a == "-n" {
                it.next()
                    .ok_or_else(|| CmdError::new("tail", "missing count"))?
            } else if let Some(body) = a.strip_prefix("-n") {
                body
            } else if a.starts_with('+') {
                a
            } else if let Some(body) = a.strip_prefix('-') {
                // Historical "tail -5".
                body
            } else if file.is_none() {
                file = Some(a.clone());
                continue;
            } else {
                return Err(CmdError::new("tail", "at most one file operand"));
            };
            mode = if let Some(from) = spec.strip_prefix('+') {
                TailMode::FromLine(from.parse().map_err(|_| {
                    CmdError::new("tail", format!("invalid line number {spec:?}"))
                })?)
            } else {
                TailMode::LastN(spec.parse().map_err(|_| {
                    CmdError::new("tail", format!("invalid count {spec:?}"))
                })?)
            };
        }
        let display = if args.is_empty() {
            "tail".to_owned()
        } else {
            format!("tail {}", args.join(" "))
        };
        Ok(TailCmd { mode, file, display })
    }
}

impl UnixCommand for TailCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn reads_stdin(&self) -> bool {
        self.file.is_none()
    }

    fn run(&self, input: &str, ctx: &ExecContext) -> Result<String, CmdError> {
        let content;
        let input = match &self.file {
            Some(f) => {
                content = ctx.vfs.read(f).ok_or_else(|| {
                    CmdError::new("tail", format!("{f}: No such file or directory"))
                })?;
                content.as_str()
            }
            None => input,
        };
        let lines: Vec<&str> = kq_stream::lines_of(input).collect();
        let start = match self.mode {
            TailMode::LastN(n) => lines.len().saturating_sub(n),
            TailMode::FromLine(n) => n.saturating_sub(1),
        };
        let mut out = String::new();
        for line in &lines[start.min(lines.len())..] {
            out.push_str(line);
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn head_default_ten() {
        let input: String = (1..=15).map(|i| format!("{i}\n")).collect();
        let expect: String = (1..=10).map(|i| format!("{i}\n")).collect();
        assert_eq!(run("head", &input), expect);
    }

    #[test]
    fn head_n_forms() {
        let input = "1\n2\n3\n4\n";
        assert_eq!(run("head -n 2", input), "1\n2\n");
        assert_eq!(run("head -n2", input), "1\n2\n");
        assert_eq!(run("head -2", input), "1\n2\n");
        assert_eq!(run("head -15", input), input);
        assert_eq!(run("head -n 1", input), "1\n");
    }

    #[test]
    fn head_zero() {
        assert_eq!(run("head -n 0", "a\nb\n"), "");
    }

    #[test]
    fn tail_last_n() {
        let input = "1\n2\n3\n4\n";
        assert_eq!(run("tail -n 1", input), "4\n");
        assert_eq!(run("tail -n 2", input), "3\n4\n");
        assert_eq!(run("tail -2", input), "3\n4\n");
        assert_eq!(run("tail -n 10", input), input);
    }

    #[test]
    fn tail_from_line() {
        let input = "1\n2\n3\n4\n";
        assert_eq!(run("tail +2", input), "2\n3\n4\n");
        assert_eq!(run("tail -n +3", input), "3\n4\n");
        assert_eq!(run("tail +1", input), input);
        assert_eq!(run("tail +9", input), "");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("head -n").is_err());
        assert!(parse_command("head -x").is_err());
        assert!(parse_command("tail -n x").is_err());
        assert!(parse_command("head a b").is_err());
    }
}
