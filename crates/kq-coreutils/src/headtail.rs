//! `head` and `tail` — line-window commands.
//!
//! `head` supports `-n N`, the historical `-N`, and the 10-line default.
//! `tail` supports `-n N` (last N lines), and the from-line forms `+N` /
//! `-n +N` (everything starting at line N) — the latter being Table 9's
//! `tail +2`/`tail +3`, for which no combiner exists.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};

/// The `head` command.
pub struct HeadCmd {
    n: usize,
    file: Option<String>,
    display: String,
}

impl HeadCmd {
    /// Parses `head` arguments.
    pub fn parse(args: &[String]) -> Result<HeadCmd, CmdError> {
        let mut n = 10usize;
        let mut file: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "-n" {
                let v = it
                    .next()
                    .ok_or_else(|| CmdError::new("head", "missing count"))?;
                n = v
                    .parse()
                    .map_err(|_| CmdError::new("head", format!("invalid count {v:?}")))?;
            } else if let Some(body) = a.strip_prefix("-n") {
                n = body
                    .parse()
                    .map_err(|_| CmdError::new("head", format!("invalid count {body:?}")))?;
            } else if let Some(body) = a.strip_prefix('-') {
                n = body
                    .parse()
                    .map_err(|_| CmdError::new("head", format!("invalid option {a}")))?;
            } else if file.is_none() {
                file = Some(a.clone());
            } else {
                return Err(CmdError::new("head", "at most one file operand"));
            }
        }
        let display = if args.is_empty() {
            "head".to_owned()
        } else {
            format!("head {}", args.join(" "))
        };
        Ok(HeadCmd { n, file, display })
    }
}

impl UnixCommand for HeadCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn reads_stdin(&self) -> bool {
        self.file.is_none()
    }

    fn line_bound(&self) -> Option<usize> {
        // The first n lines determine the whole output; with a file
        // operand stdin is ignored entirely (Command::line_bound already
        // masks that case, but the answer is honest either way).
        self.file.is_none().then_some(self.n)
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let stream = match &self.file {
            Some(f) => ctx
                .vfs
                .read_bytes(f)
                .ok_or_else(|| CmdError::new("head", format!("{f}: No such file or directory")))?,
            None => input,
        };
        // The first n lines are a prefix slice of the input: zero-copy
        // unless the window ends on an unterminated final line (which the
        // stream model terminates, requiring one small copy).
        match line_offset(stream.as_bytes(), self.n) {
            Window::At(end) => Ok(stream.slice(0..end)),
            Window::PastTerminated => Ok(stream),
            Window::PastUnterminated => Ok(terminate(&stream)),
        }
    }
}

/// Where the `n`-th line boundary falls in `bytes`.
enum Window {
    /// Byte offset just after the `n`-th newline.
    At(usize),
    /// Fewer than `n` lines and the input is newline-terminated (or empty).
    PastTerminated,
    /// Fewer than `n` lines with an unterminated final line.
    PastUnterminated,
}

fn line_offset(bytes: &[u8], n: usize) -> Window {
    if n == 0 {
        return Window::At(0);
    }
    let mut seen = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            seen += 1;
            if seen == n {
                return Window::At(i + 1);
            }
        }
    }
    if bytes.last().is_some_and(|&b| b != b'\n') {
        Window::PastUnterminated
    } else {
        Window::PastTerminated
    }
}

/// Copies `stream` with a final newline appended (the stream-model
/// normalization the line-window commands apply to unterminated input).
/// Valid text goes through `String` so the result keeps the known-UTF-8
/// fast path; foreign bytes stay bytes instead of panicking.
fn terminate(stream: &Bytes) -> Bytes {
    match stream.to_str() {
        Ok(text) => {
            let mut out = String::with_capacity(text.len() + 1);
            out.push_str(text);
            out.push('\n');
            Bytes::from(out)
        }
        Err(_) => {
            let mut out = Vec::with_capacity(stream.len() + 1);
            out.extend_from_slice(stream.as_bytes());
            out.push(b'\n');
            Bytes::from(out)
        }
    }
}

enum TailMode {
    /// Last N lines.
    LastN(usize),
    /// From line N (1-based) to the end — `tail +N`.
    FromLine(usize),
}

/// The `tail` command.
pub struct TailCmd {
    mode: TailMode,
    file: Option<String>,
    display: String,
}

impl TailCmd {
    /// Parses `tail` arguments.
    pub fn parse(args: &[String]) -> Result<TailCmd, CmdError> {
        let mut mode = TailMode::LastN(10);
        let mut file: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let spec: &str = if a == "-n" {
                it.next()
                    .ok_or_else(|| CmdError::new("tail", "missing count"))?
            } else if let Some(body) = a.strip_prefix("-n") {
                body
            } else if a.starts_with('+') {
                a
            } else if let Some(body) = a.strip_prefix('-') {
                // Historical "tail -5".
                body
            } else if file.is_none() {
                file = Some(a.clone());
                continue;
            } else {
                return Err(CmdError::new("tail", "at most one file operand"));
            };
            mode = if let Some(from) = spec.strip_prefix('+') {
                TailMode::FromLine(
                    from.parse().map_err(|_| {
                        CmdError::new("tail", format!("invalid line number {spec:?}"))
                    })?,
                )
            } else {
                TailMode::LastN(
                    spec.parse()
                        .map_err(|_| CmdError::new("tail", format!("invalid count {spec:?}")))?,
                )
            };
        }
        let display = if args.is_empty() {
            "tail".to_owned()
        } else {
            format!("tail {}", args.join(" "))
        };
        Ok(TailCmd {
            mode,
            file,
            display,
        })
    }
}

impl UnixCommand for TailCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn reads_stdin(&self) -> bool {
        self.file.is_none()
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let stream = match &self.file {
            Some(f) => ctx
                .vfs
                .read_bytes(f)
                .ok_or_else(|| CmdError::new("tail", format!("{f}: No such file or directory")))?,
            None => input,
        };
        let start_line = match self.mode {
            TailMode::LastN(n) => {
                // Only the last-N form needs the total line count (one
                // O(n) byte scan); `tail +N` indexes from the front.
                let newlines = stream.count_newlines();
                let total =
                    newlines + usize::from(stream.as_bytes().last().is_some_and(|&b| b != b'\n'));
                total.saturating_sub(n)
            }
            TailMode::FromLine(n) => n.saturating_sub(1),
        };
        // The suffix starting at `start_line` is a slice of the input:
        // zero-copy unless the final line is unterminated (which the
        // stream model terminates, requiring one small copy).
        let start = match line_offset(stream.as_bytes(), start_line) {
            Window::At(off) => off,
            Window::PastTerminated | Window::PastUnterminated => stream.len(),
        };
        let suffix = stream.slice(start..stream.len());
        if suffix.is_empty() || suffix.ends_with_newline() {
            Ok(suffix)
        } else {
            Ok(terminate(&suffix))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn head_default_ten() {
        let input: String = (1..=15).map(|i| format!("{i}\n")).collect();
        let expect: String = (1..=10).map(|i| format!("{i}\n")).collect();
        assert_eq!(run("head", &input), expect);
    }

    #[test]
    fn head_n_forms() {
        let input = "1\n2\n3\n4\n";
        assert_eq!(run("head -n 2", input), "1\n2\n");
        assert_eq!(run("head -n2", input), "1\n2\n");
        assert_eq!(run("head -2", input), "1\n2\n");
        assert_eq!(run("head -15", input), input);
        assert_eq!(run("head -n 1", input), "1\n");
    }

    #[test]
    fn head_zero() {
        assert_eq!(run("head -n 0", "a\nb\n"), "");
    }

    #[test]
    fn tail_last_n() {
        let input = "1\n2\n3\n4\n";
        assert_eq!(run("tail -n 1", input), "4\n");
        assert_eq!(run("tail -n 2", input), "3\n4\n");
        assert_eq!(run("tail -2", input), "3\n4\n");
        assert_eq!(run("tail -n 10", input), input);
    }

    #[test]
    fn tail_from_line() {
        let input = "1\n2\n3\n4\n";
        assert_eq!(run("tail +2", input), "2\n3\n4\n");
        assert_eq!(run("tail -n +3", input), "3\n4\n");
        assert_eq!(run("tail +1", input), input);
        assert_eq!(run("tail +9", input), "");
    }

    #[test]
    fn head_tail_windows_are_zero_copy() {
        let input = Bytes::from("1\n2\n3\n4\n");
        let ctx = ExecContext::default();
        let head = parse_command("head -n 2").unwrap();
        let out = head.run(input.clone(), &ctx).unwrap();
        assert_eq!(out, "1\n2\n");
        assert!(out.shares_buffer(&input), "head window must be a slice");
        let tail = parse_command("tail -n 2").unwrap();
        let out = tail.run(input.clone(), &ctx).unwrap();
        assert_eq!(out, "3\n4\n");
        assert!(out.shares_buffer(&input), "tail window must be a slice");
    }

    #[test]
    fn head_tail_unterminated_input_normalizes() {
        // The pre-refactor implementations emitted every line with a
        // trailing newline; the sliced fast path must preserve that.
        assert_eq!(run("head -n 3", "a\nb"), "a\nb\n");
        assert_eq!(run("tail -n 1", "a\nb"), "b\n");
        assert_eq!(run("tail +2", "a\nb"), "b\n");
        assert_eq!(run("head -n 1", "a\nb"), "a\n");
        assert_eq!(run("tail -n 5", ""), "");
        assert_eq!(run("head -n 5", ""), "");
    }

    #[test]
    fn head_signals_its_line_bound() {
        assert_eq!(parse_command("head -n 3").unwrap().line_bound(), Some(3));
        assert_eq!(parse_command("head -15").unwrap().line_bound(), Some(15));
        assert_eq!(parse_command("head").unwrap().line_bound(), Some(10));
        assert_eq!(parse_command("head -n 0").unwrap().line_bound(), Some(0));
        // A file operand makes head a source: the bound applies to the
        // file, never to the (ignored) pipe.
        assert_eq!(
            parse_command("head -n 3 /f.txt").unwrap().line_bound(),
            None
        );
        // tail needs the end of the stream: never prefix-bounded.
        assert_eq!(parse_command("tail -n 1").unwrap().line_bound(), None);
        assert_eq!(parse_command("tail +2").unwrap().line_bound(), None);
    }

    #[test]
    fn line_bound_contract_holds_on_prefixes() {
        // The semantic contract: run on any stream holding >= n complete
        // lines equals run on the full stream.
        let full = "a\nb\nc\nd\ne\n";
        let cmd = parse_command("head -n 2").unwrap();
        let ctx = ExecContext::default();
        let whole = cmd.run_str(full, &ctx).unwrap();
        let prefix = cmd.run_str("a\nb\n", &ctx).unwrap();
        assert_eq!(whole, prefix);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("head -n").is_err());
        assert!(parse_command("head -x").is_err());
        assert!(parse_command("tail -n x").is_err());
        assert!(parse_command("head a b").is_err());
    }
}
