//! `wc` — line/word/byte counting.
//!
//! GNU prints a bare number for a single count read from stdin (`wc -l <
//! file` → `"42\n"`) and space-separated padded columns for the default
//! triple. The corpus uses `wc -l`, `wc -w`, and `wc -c`; the synthesized
//! combiner for all of them is `(back '\n' add)`.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Count {
    Lines,
    Words,
    Bytes,
}

/// The `wc` command.
pub struct WcCmd {
    selected: Vec<Count>,
    display: String,
}

impl WcCmd {
    /// Parses `wc` arguments.
    pub fn parse(args: &[String]) -> Result<WcCmd, CmdError> {
        let mut selected = Vec::new();
        for a in args {
            let Some(flags) = a.strip_prefix('-') else {
                return Err(CmdError::new("wc", "file operands are not supported"));
            };
            for f in flags.chars() {
                let c = match f {
                    'l' => Count::Lines,
                    'w' => Count::Words,
                    'c' => Count::Bytes,
                    other => return Err(CmdError::new("wc", format!("unknown flag -{other}"))),
                };
                if !selected.contains(&c) {
                    selected.push(c);
                }
            }
        }
        if selected.is_empty() {
            selected = vec![Count::Lines, Count::Words, Count::Bytes];
        } else {
            // Output order is fixed (lines, words, bytes) regardless of
            // flag order, as in GNU.
            selected.sort_by_key(|c| match c {
                Count::Lines => 0,
                Count::Words => 1,
                Count::Bytes => 2,
            });
        }
        let display = if args.is_empty() {
            "wc".to_owned()
        } else {
            format!("wc {}", args.join(" "))
        };
        Ok(WcCmd { selected, display })
    }

    fn count(input: &str, what: Count) -> usize {
        match what {
            Count::Lines => kq_stream::count_delim('\n', input),
            Count::Words => input.split_ascii_whitespace().count(),
            Count::Bytes => input.len(),
        }
    }
}

impl UnixCommand for WcCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "wc")?;
        let text = || -> Result<String, CmdError> {
            let counts: Vec<usize> = self
                .selected
                .iter()
                .map(|&c| Self::count(input, c))
                .collect();
            let mut out = String::new();
            if counts.len() == 1 {
                out.push_str(&counts[0].to_string());
            } else {
                // GNU pads multi-column stdin output to 7 columns.
                for (i, c) in counts.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&format!("{c:>7}"));
                }
            }
            out.push('\n');
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;
    use proptest::prelude::*;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn line_count_bare() {
        assert_eq!(run("wc -l", "a\nb\nc\n"), "3\n");
        assert_eq!(run("wc -l", ""), "0\n");
        // An unterminated final line is not counted (GNU counts '\n's).
        assert_eq!(run("wc -l", "a\nb"), "1\n");
    }

    #[test]
    fn word_count() {
        assert_eq!(run("wc -w", "one two\n three\n"), "3\n");
    }

    #[test]
    fn byte_count() {
        assert_eq!(run("wc -c", "abc\n"), "4\n");
    }

    #[test]
    fn default_triple_padded() {
        assert_eq!(run("wc", "ab cd\n"), "      1       2       6\n");
    }

    #[test]
    fn flag_order_normalized() {
        assert_eq!(run("wc -cl", "hi\n"), run("wc -lc", "hi\n"));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse_command("wc -m").is_err());
        assert!(parse_command("wc file").is_err());
    }

    proptest! {
        #[test]
        fn prop_line_count_additive(
            a in proptest::collection::vec("[a-z ]{0,6}", 0..20),
            b in proptest::collection::vec("[a-z ]{0,6}", 0..20),
        ) {
            // The divide-and-conquer property that makes (back '\n' add)
            // the correct combiner for wc -l.
            let s1: String = a.iter().map(|l| format!("{l}\n")).collect();
            let s2: String = b.iter().map(|l| format!("{l}\n")).collect();
            let n = |s: &str| run("wc -l", s).trim().parse::<usize>().unwrap();
            prop_assert_eq!(n(&format!("{}{}", s1, s2)), n(&s1) + n(&s2));
        }
    }
}
