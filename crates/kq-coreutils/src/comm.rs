//! `comm` — compare two sorted files line by line.
//!
//! Supports the column-suppression flags (`-1`, `-2`, `-3`, combined as in
//! `-23`). `-` denotes standard input. Like GNU `comm --check-order` (and
//! like the behaviour KumQuat's preprocessing probes rely on), unsorted
//! input is an error: the paper's spell/set-diff benchmarks only succeed on
//! the sorted probe stream, which tells the synthesizer to generate sorted
//! inputs for these commands.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};

/// The `comm` command.
pub struct CommCmd {
    suppress1: bool,
    suppress2: bool,
    suppress3: bool,
    file1: String,
    file2: String,
    display: String,
}

impl CommCmd {
    /// Parses `comm` arguments.
    pub fn parse(args: &[String]) -> Result<CommCmd, CmdError> {
        let mut suppress = [false; 3];
        let mut files: Vec<&String> = Vec::new();
        for a in args {
            if a != "-" && a.starts_with('-') {
                for c in a[1..].chars() {
                    match c {
                        '1' => suppress[0] = true,
                        '2' => suppress[1] = true,
                        '3' => suppress[2] = true,
                        other => {
                            return Err(CmdError::new("comm", format!("unknown flag -{other}")))
                        }
                    }
                }
            } else {
                files.push(a);
            }
        }
        if files.len() != 2 {
            return Err(CmdError::new("comm", "expected exactly two files"));
        }
        Ok(CommCmd {
            suppress1: suppress[0],
            suppress2: suppress[1],
            suppress3: suppress[2],
            file1: files[0].clone(),
            file2: files[1].clone(),
            display: format!("comm {}", args.join(" ")),
        })
    }

    fn read_input(&self, name: &str, stdin: &str, ctx: &ExecContext) -> Result<String, CmdError> {
        if name == "-" {
            Ok(stdin.to_owned())
        } else {
            crate::read_file_str(ctx, name, "comm")?
                .ok_or_else(|| CmdError::new("comm", format!("{name}: No such file or directory")))
        }
    }
}

fn check_sorted(lines: &[&str], which: usize) -> Result<(), CmdError> {
    for w in lines.windows(2) {
        if w[0].as_bytes() > w[1].as_bytes() {
            return Err(CmdError::new(
                "comm",
                format!("file {which} is not in sorted order"),
            ));
        }
    }
    Ok(())
}

impl UnixCommand for CommCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn reads_stdin(&self) -> bool {
        self.file1 == "-" || self.file2 == "-"
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "comm")?;
        let text = || -> Result<String, CmdError> {
            let c1 = self.read_input(&self.file1, input, ctx)?;
            let c2 = self.read_input(&self.file2, input, ctx)?;
            let l1: Vec<&str> = kq_stream::lines_of(&c1).collect();
            let l2: Vec<&str> = kq_stream::lines_of(&c2).collect();
            check_sorted(&l1, 1)?;
            check_sorted(&l2, 2)?;

            // Column indentation mirrors GNU: each *printed* column to the left
            // of the current one contributes one tab.
            let col2_prefix = if self.suppress1 { "" } else { "\t" };
            let col3_prefix = match (self.suppress1, self.suppress2) {
                (false, false) => "\t\t",
                (true, true) => "",
                _ => "\t",
            };

            let mut out = String::new();
            let (mut i, mut j) = (0, 0);
            while i < l1.len() || j < l2.len() {
                let ord = match (l1.get(i), l2.get(j)) {
                    (Some(a), Some(b)) => a.as_bytes().cmp(b.as_bytes()),
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (None, None) => break,
                };
                match ord {
                    std::cmp::Ordering::Less => {
                        if !self.suppress1 {
                            out.push_str(l1[i]);
                            out.push('\n');
                        }
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        if !self.suppress2 {
                            out.push_str(col2_prefix);
                            out.push_str(l2[j]);
                            out.push('\n');
                        }
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        if !self.suppress3 {
                            out.push_str(col3_prefix);
                            out.push_str(l1[i]);
                            out.push('\n');
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_command, Vfs};

    fn ctx() -> ExecContext {
        let vfs = Vfs::new();
        vfs.write("dict", "apple\nbanana\ncherry\n");
        ExecContext::with_vfs(vfs)
    }

    #[test]
    fn spellcheck_form() {
        // Lines in stdin but not in the dictionary: the spell benchmark.
        let c = parse_command("comm -23 - dict").unwrap();
        let out = c.run_str("apple\nbanan\nzebra\n", &ctx()).unwrap();
        assert_eq!(out, "banan\nzebra\n");
    }

    #[test]
    fn unsorted_stdin_is_error() {
        let c = parse_command("comm -23 - dict").unwrap();
        let err = c.run_str("zebra\napple\n", &ctx()).unwrap_err();
        assert!(err.message.contains("not in sorted order"), "{err}");
    }

    #[test]
    fn unsorted_file_is_error() {
        let vfs = Vfs::new();
        vfs.write("bad", "b\na\n");
        let ctx = ExecContext::with_vfs(vfs);
        let c = parse_command("comm -23 - bad").unwrap();
        assert!(c.run_str("a\n", &ctx).is_err());
    }

    #[test]
    fn three_column_output_with_tabs() {
        let vfs = Vfs::new();
        vfs.write("f2", "b\nc\n");
        let ctx = ExecContext::with_vfs(vfs);
        let c = parse_command("comm - f2").unwrap();
        assert_eq!(c.run_str("a\nb\n", &ctx).unwrap(), "a\n\t\tb\n\tc\n");
    }

    #[test]
    fn common_only() {
        let vfs = Vfs::new();
        vfs.write("f2", "b\nc\n");
        let ctx = ExecContext::with_vfs(vfs);
        let c = parse_command("comm -12 - f2").unwrap();
        assert_eq!(c.run_str("a\nb\n", &ctx).unwrap(), "b\n");
    }

    #[test]
    fn reads_stdin_detection() {
        let vfs = Vfs::new();
        vfs.write("x", "");
        vfs.write("y", "");
        let c = parse_command("comm x y").unwrap();
        assert!(!c.reads_stdin());
        assert_eq!(
            c.run_str("ignored", &ExecContext::with_vfs(vfs)).unwrap(),
            ""
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("comm -23 -").is_err());
        assert!(parse_command("comm -q a b").is_err());
    }
}
