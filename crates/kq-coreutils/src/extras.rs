//! Commands beyond the paper's corpus, added to exercise DSL operators the
//! corpus rarely reaches and to document fresh no-combiner cases:
//!
//! * [`NlCmd`] (`nl`, and `cat -n` via [`crate::parse_command`]) — line
//!   numbering. `cat -n` numbers every line, so its combiner is
//!   `(offset '\t' add)`: the representative `g_oa` of Definition B.11,
//!   otherwise seen only for `xargs wc -l`. GNU `nl` leaves empty lines
//!   unnumbered as a 7-space gutter, which falls outside `L(offset)`, so
//!   `nl` synthesizes only `rerun` — a nice demonstration that formatting
//!   details decide combinability.
//! * [`TacCmd`] (`tac`) — line reversal. Its combiner is the *swapped*
//!   concatenation `(concat b a)`: `tac(x1 ++ x2) = tac(x2) ++ tac(x1)`.
//!   This is the only command whose correct combiner requires the
//!   argument-order swap that the enumerator adds to every candidate.
//! * [`FoldCmd`] (`fold -w N`) and [`ExpandCmd`] (`expand`) — per-line
//!   maps; plain `concat`.
//! * [`ShufCmd`] (`shuf`) — deliberately nondeterministic. KumQuat's model
//!   requires deterministic commands; `shuf` makes the synthesizer observe
//!   inconsistent outputs and eliminate every candidate (failure
//!   injection for Algorithm 1).

use crate::{Bytes, CmdError, ExecContext, UnixCommand};
use std::sync::atomic::{AtomicU64, Ordering};

/// Line-numbering style shared by `nl` and `cat -n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberStyle {
    /// `cat -n`: number every line.
    AllLines,
    /// GNU `nl` default (`-b t`): number non-empty lines; empty lines get
    /// a 7-space gutter and no separator tab.
    NonEmpty,
}

/// `nl` / `cat -n` — prefix lines with a 6-wide right-aligned number and a
/// tab separator, GNU-style.
pub struct NlCmd {
    style: NumberStyle,
    display: String,
}

impl NlCmd {
    /// Parses `nl` arguments. Supports the default body typing and the
    /// explicit `-b a` (all lines) / `-b t` (non-empty) forms.
    pub fn parse(args: &[String]) -> Result<NlCmd, CmdError> {
        let mut style = NumberStyle::NonEmpty;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let spec = if a == "-b" {
                it.next()
                    .ok_or_else(|| CmdError::new("nl", "missing -b style"))?
                    .as_str()
            } else if let Some(body) = a.strip_prefix("-b") {
                body
            } else {
                return Err(CmdError::new("nl", format!("unsupported option {a}")));
            };
            style = match spec {
                "a" => NumberStyle::AllLines,
                "t" => NumberStyle::NonEmpty,
                other => {
                    return Err(CmdError::new(
                        "nl",
                        format!("unsupported body type {other}"),
                    ))
                }
            };
        }
        let display = if args.is_empty() {
            "nl".to_owned()
        } else {
            format!("nl {}", args.join(" "))
        };
        Ok(NlCmd { style, display })
    }

    /// The `cat -n` numbering behaviour.
    pub fn cat_n() -> NlCmd {
        NlCmd {
            style: NumberStyle::AllLines,
            display: "cat -n".to_owned(),
        }
    }

    /// Numbers `input` according to the style.
    pub fn number(&self, input: &str) -> String {
        let mut out = String::with_capacity(input.len() + input.len() / 4);
        let mut n = 0u64;
        for line in kq_stream::lines_of(input) {
            if self.style == NumberStyle::NonEmpty && line.is_empty() {
                // GNU nl: unnumbered lines get a 7-character gutter.
                out.push_str("       \n");
                continue;
            }
            n += 1;
            out.push_str(&format!("{n:>6}\t{line}\n"));
        }
        out
    }
}

impl UnixCommand for NlCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "nl")?;
        let text = || -> Result<String, CmdError> { Ok(self.number(input)) };
        text().map(Bytes::from)
    }
}

/// `tac` — print lines in reverse order.
pub struct TacCmd;

impl UnixCommand for TacCmd {
    fn display(&self) -> String {
        "tac".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "tac")?;
        let text = || -> Result<String, CmdError> {
            let lines: Vec<&str> = kq_stream::lines_of(input).collect();
            let mut out = String::with_capacity(input.len());
            for line in lines.iter().rev() {
                out.push_str(line);
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

/// `fold -w N` — break lines longer than N characters (no word wrap).
pub struct FoldCmd {
    width: usize,
}

impl FoldCmd {
    /// Parses `fold` arguments (`-w N`, `-wN`).
    pub fn parse(args: &[String]) -> Result<FoldCmd, CmdError> {
        let mut width = 80usize;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let spec: &str = if a == "-w" {
                it.next()
                    .ok_or_else(|| CmdError::new("fold", "missing width"))?
            } else if let Some(body) = a.strip_prefix("-w") {
                body
            } else {
                return Err(CmdError::new("fold", format!("unsupported option {a}")));
            };
            width = spec
                .parse()
                .map_err(|_| CmdError::new("fold", format!("invalid width {spec:?}")))?;
            if width == 0 {
                return Err(CmdError::new("fold", "width must be positive"));
            }
        }
        Ok(FoldCmd { width })
    }
}

impl UnixCommand for FoldCmd {
    fn display(&self) -> String {
        format!("fold -w{}", self.width)
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "fold")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            for line in kq_stream::lines_of(input) {
                let chars: Vec<char> = line.chars().collect();
                if chars.is_empty() {
                    out.push('\n');
                    continue;
                }
                for chunk in chars.chunks(self.width) {
                    out.extend(chunk.iter());
                    out.push('\n');
                }
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

/// `expand` — convert tabs to spaces at 8-column tab stops.
pub struct ExpandCmd;

impl UnixCommand for ExpandCmd {
    fn display(&self) -> String {
        "expand".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "expand")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            for line in kq_stream::lines_of(input) {
                let mut col = 0usize;
                for c in line.chars() {
                    if c == '\t' {
                        let stop = (col / 8 + 1) * 8;
                        while col < stop {
                            out.push(' ');
                            col += 1;
                        }
                    } else {
                        out.push(c);
                        col += 1;
                    }
                }
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

/// Process-wide counter making every `shuf` run observably different.
static SHUF_RUNS: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);

/// `shuf` — permute input lines pseudo-randomly. Every invocation uses a
/// fresh seed (like real `shuf` seeding from the OS), so repeated runs on
/// the same input differ: the command violates KumQuat's determinism
/// assumption by design.
pub struct ShufCmd;

impl UnixCommand for ShufCmd {
    fn display(&self) -> String {
        "shuf".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "shuf")?;
        let text = || -> Result<String, CmdError> {
            let mut lines: Vec<&str> = kq_stream::lines_of(input).collect();
            // xorshift* seeded from the run counter: cheap, deterministic per
            // call index, different across calls.
            let mut state = SHUF_RUNS.fetch_add(1, Ordering::Relaxed) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in (1..lines.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                lines.swap(i, j);
            }
            let mut out = String::with_capacity(input.len());
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn cat_n_numbers_every_line() {
        assert_eq!(
            run("cat -n", "a\n\nb\n"),
            "     1\ta\n     2\t\n     3\tb\n"
        );
    }

    #[test]
    fn nl_skips_empty_lines_gnu_style() {
        // Verified against GNU nl: unnumbered lines are a 7-space gutter.
        assert_eq!(run("nl", "a\n\nb\n"), "     1\ta\n       \n     2\tb\n");
    }

    #[test]
    fn nl_b_a_numbers_everything() {
        assert_eq!(run("nl -b a", "a\n\n"), "     1\ta\n     2\t\n");
    }

    #[test]
    fn nl_rejects_unknown_options() {
        assert!(parse_command("nl -s:").is_err());
        assert!(parse_command("nl -b q").is_err());
    }

    #[test]
    fn cat_n_offset_add_property() {
        // The divide-and-conquer shape: numbering the concatenation equals
        // numbering the halves and offsetting the second by the first's
        // final count — exactly `(offset '\t' add)`.
        let x1 = "p\nq\n";
        let x2 = "r\n";
        let y12 = run("cat -n", &format!("{x1}{x2}"));
        assert_eq!(y12, "     1\tp\n     2\tq\n     3\tr\n");
    }

    #[test]
    fn tac_reverses_lines() {
        assert_eq!(run("tac", "x\ny\nz\n"), "z\ny\nx\n");
        assert_eq!(run("tac", ""), "");
    }

    #[test]
    fn tac_swapped_concat_property() {
        // tac(x1 ++ x2) == tac(x2) ++ tac(x1) — the swapped concat.
        let x1 = "a\nb\n";
        let x2 = "c\nd\n";
        let whole = run("tac", &format!("{x1}{x2}"));
        let stitched = format!("{}{}", run("tac", x2), run("tac", x1));
        assert_eq!(whole, stitched);
    }

    #[test]
    fn fold_breaks_long_lines() {
        assert_eq!(run("fold -w3", "abcdefgh\n"), "abc\ndef\ngh\n");
        assert_eq!(run("fold -w3", "ab\n"), "ab\n");
        assert_eq!(run("fold -w3", "\n"), "\n");
    }

    #[test]
    fn fold_rejects_zero_width() {
        assert!(parse_command("fold -w0").is_err());
    }

    #[test]
    fn expand_tabs_to_stops() {
        assert_eq!(run("expand", "a\tb\n"), "a       b\n");
        assert_eq!(run("expand", "abcdefgh\ti\n"), "abcdefgh        i\n");
        assert_eq!(run("expand", "no tabs\n"), "no tabs\n");
    }

    #[test]
    fn shuf_permutes_and_differs_across_runs() {
        let input: String = (0..64).map(|i| format!("line{i}\n")).collect();
        let a = run("shuf", &input);
        let b = run("shuf", &input);
        // Same multiset of lines...
        let sort = |s: &str| {
            let mut v: Vec<&str> = s.lines().collect();
            v.sort_unstable();
            v.join("\n")
        };
        assert_eq!(sort(&a), sort(&input));
        // ...but (with overwhelming probability) different order per run.
        assert_ne!(a, b, "two shuf runs produced identical permutations");
    }
}
