//! Multi-input and filesystem commands: `paste`, `diff`, `ls`, and the
//! no-op housekeeping commands (`mkfifo`, `rm`).
//!
//! These are the commands the paper *excludes* from combiner synthesis
//! ("commands that process multiple input streams" and "commands that do
//! not process data streams") but which the benchmark scripts still execute.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};

/// `paste f1 f2 ...` — join corresponding lines with tabs. Exhausted files
/// contribute empty fields, as in GNU.
pub struct PasteCmd {
    files: Vec<String>,
}

impl PasteCmd {
    /// Parses `paste` arguments (file names; `-` reads stdin).
    pub fn parse(args: &[String]) -> Result<PasteCmd, CmdError> {
        if args.is_empty() {
            return Err(CmdError::new("paste", "expected file operands"));
        }
        Ok(PasteCmd {
            files: args.to_vec(),
        })
    }
}

impl UnixCommand for PasteCmd {
    fn display(&self) -> String {
        format!("paste {}", self.files.join(" "))
    }

    fn reads_stdin(&self) -> bool {
        self.files.iter().any(|f| f == "-")
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "paste")?;
        let text = || -> Result<String, CmdError> {
            let mut contents = Vec::with_capacity(self.files.len());
            for f in &self.files {
                if f == "-" {
                    contents.push(input.to_owned());
                } else {
                    contents.push(crate::read_file_str(ctx, f, "paste")?.ok_or_else(|| {
                        CmdError::new("paste", format!("{f}: No such file or directory"))
                    })?);
                }
            }
            let columns: Vec<Vec<&str>> = contents
                .iter()
                .map(|c| kq_stream::lines_of(c).collect())
                .collect();
            let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
            let mut out = String::new();
            for r in 0..rows {
                for (ci, col) in columns.iter().enumerate() {
                    if ci > 0 {
                        out.push('\t');
                    }
                    out.push_str(col.get(r).copied().unwrap_or(""));
                }
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

/// `diff f1 f2` — a normal-format diff. The corpus only inspects whether
/// outputs differ (and pipes the result onward), so a straightforward
/// longest-common-subsequence hunk printer suffices.
pub struct DiffCmd {
    file1: String,
    file2: String,
}

impl DiffCmd {
    /// Parses `diff` arguments.
    pub fn parse(args: &[String]) -> Result<DiffCmd, CmdError> {
        let files: Vec<&String> = args
            .iter()
            .filter(|a| !a.starts_with('-') || *a == "-")
            .collect();
        if files.len() != 2 {
            return Err(CmdError::new("diff", "expected exactly two files"));
        }
        Ok(DiffCmd {
            file1: files[0].clone(),
            file2: files[1].clone(),
        })
    }
}

impl UnixCommand for DiffCmd {
    fn display(&self) -> String {
        format!("diff {} {}", self.file1, self.file2)
    }

    fn reads_stdin(&self) -> bool {
        self.file1 == "-" || self.file2 == "-"
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "diff")?;
        let text = || -> Result<String, CmdError> {
            let read = |name: &str| -> Result<String, CmdError> {
                if name == "-" {
                    Ok(input.to_owned())
                } else {
                    crate::read_file_str(ctx, name, "diff")?.ok_or_else(|| {
                        CmdError::new("diff", format!("{name}: No such file or directory"))
                    })
                }
            };
            let c1 = read(&self.file1)?;
            let c2 = read(&self.file2)?;
            let a: Vec<&str> = kq_stream::lines_of(&c1).collect();
            let b: Vec<&str> = kq_stream::lines_of(&c2).collect();
            Ok(normal_diff(&a, &b))
        };
        text().map(Bytes::from)
    }
}

/// Produces `diff`-style normal output (`NcM`, `<`, `---`, `>`). Uses a
/// simple common-prefix/suffix trim with one replace hunk in the middle —
/// not minimal like GNU's Myers diff, but well-formed and empty exactly
/// when the inputs are equal.
fn normal_diff(a: &[&str], b: &[&str]) -> String {
    let mut lo = 0;
    while lo < a.len() && lo < b.len() && a[lo] == b[lo] {
        lo += 1;
    }
    let mut ahi = a.len();
    let mut bhi = b.len();
    while ahi > lo && bhi > lo && a[ahi - 1] == b[bhi - 1] {
        ahi -= 1;
        bhi -= 1;
    }
    if lo == ahi && lo == bhi {
        return String::new();
    }
    let range = |lo: usize, hi: usize| -> String {
        if hi == lo {
            // Empty side of an add/delete: the line *before* the change.
            format!("{lo}")
        } else if hi - lo == 1 {
            format!("{}", lo + 1)
        } else {
            format!("{},{}", lo + 1, hi)
        }
    };
    let mut out = String::new();
    let (del, add) = (lo < ahi, lo < bhi);
    let op = match (del, add) {
        (true, true) => 'c',
        (true, false) => 'd',
        (false, true) => 'a',
        (false, false) => unreachable!("handled above"),
    };
    out.push_str(&format!("{}{}{}\n", range(lo, ahi), op, range(lo, bhi)));
    for line in &a[lo..ahi] {
        out.push_str("< ");
        out.push_str(line);
        out.push('\n');
    }
    if del && add {
        out.push_str("---\n");
    }
    for line in &b[lo..bhi] {
        out.push_str("> ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// `ls` — lists the virtual filesystem, one path per line.
pub struct LsCmd;

impl UnixCommand for LsCmd {
    fn display(&self) -> String {
        "ls".to_owned()
    }

    fn reads_stdin(&self) -> bool {
        false
    }

    fn run(&self, _input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let mut out = String::new();
        for p in ctx.vfs.paths() {
            out.push_str(&p);
            out.push('\n');
        }
        Ok(Bytes::from(out))
    }
}

/// `mkfifo`/`rm` — housekeeping commands with no stream effect.
pub struct NoopCmd {
    /// The original command line, kept for display.
    pub line: String,
}

impl UnixCommand for NoopCmd {
    fn display(&self) -> String {
        self.line.clone()
    }

    fn reads_stdin(&self) -> bool {
        false
    }

    fn run(&self, _input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        Ok(Bytes::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_command, Vfs};

    fn ctx() -> ExecContext {
        let vfs = Vfs::new();
        vfs.write("w1", "a\nb\nc\n");
        vfs.write("w2", "x\ny\n");
        ExecContext::with_vfs(vfs)
    }

    #[test]
    fn paste_joins_with_tabs() {
        let c = parse_command("paste w1 w2").unwrap();
        assert_eq!(c.run_str("", &ctx()).unwrap(), "a\tx\nb\ty\nc\t\n");
        assert!(!c.reads_stdin());
    }

    #[test]
    fn paste_stdin_column() {
        let c = parse_command("paste - w2").unwrap();
        assert_eq!(c.run_str("1\n2\n", &ctx()).unwrap(), "1\tx\n2\ty\n");
        assert!(c.reads_stdin());
    }

    #[test]
    fn diff_equal_files_is_empty() {
        let vfs = Vfs::new();
        vfs.write("f1", "same\nlines\n");
        vfs.write("f2", "same\nlines\n");
        let c = parse_command("diff f1 f2").unwrap();
        assert_eq!(c.run_str("", &ExecContext::with_vfs(vfs)).unwrap(), "");
    }

    #[test]
    fn diff_reports_changed_hunk() {
        let vfs = Vfs::new();
        vfs.write("f1", "a\nB\nc\n");
        vfs.write("f2", "a\nX\nc\n");
        let c = parse_command("diff f1 f2").unwrap();
        assert_eq!(
            c.run_str("", &ExecContext::with_vfs(vfs)).unwrap(),
            "2c2\n< B\n---\n> X\n"
        );
    }

    #[test]
    fn diff_pure_addition() {
        let vfs = Vfs::new();
        vfs.write("f1", "a\n");
        vfs.write("f2", "a\nb\n");
        let c = parse_command("diff f1 f2").unwrap();
        let out = c.run_str("", &ExecContext::with_vfs(vfs)).unwrap();
        assert_eq!(out, "1a2\n> b\n");
    }

    #[test]
    fn ls_lists_vfs() {
        let c = parse_command("ls").unwrap();
        assert_eq!(c.run_str("", &ctx()).unwrap(), "w1\nw2\n");
    }

    #[test]
    fn noop_commands_swallow_input() {
        let c = parse_command("rm -f temp").unwrap();
        assert_eq!(c.run_str("anything\n", &ctx()).unwrap(), "");
        assert!(!c.reads_stdin());
    }
}
