//! `xargs` — build and run commands from standard input.
//!
//! The corpus uses three forms, all operating on file-name input streams:
//! `xargs cat` (concatenate the named files), `xargs file` (describe each
//! file), and `xargs -L 1 wc -l` (line-count each file, one invocation per
//! input line). Missing files are errors — KumQuat's preprocessing feeds
//! `xargs` commands a word list, a sorted word list, and a file-name list,
//! and relies on the first two failing so it knows to generate file names.

use crate::{Bytes, CmdError, ExecContext, Rope, UnixCommand};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubCommand {
    Cat,
    File,
    WcL,
}

/// The `xargs` command.
pub struct XargsCmd {
    sub: SubCommand,
    display: String,
}

impl XargsCmd {
    /// Parses `xargs` arguments.
    pub fn parse(args: &[String]) -> Result<XargsCmd, CmdError> {
        let mut rest: Vec<&str> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-L" | "-n" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CmdError::new("xargs", "missing count"))?;
                    let _n: usize = v
                        .parse()
                        .map_err(|_| CmdError::new("xargs", format!("invalid count {v:?}")))?;
                    // Batching granularity does not change the output of
                    // the three corpus sub-commands; accepted and ignored.
                }
                other => rest.push(other),
            }
        }
        let sub = match rest.as_slice() {
            ["cat"] => SubCommand::Cat,
            ["file"] => SubCommand::File,
            ["wc", "-l"] => SubCommand::WcL,
            other => {
                return Err(CmdError::new(
                    "xargs",
                    format!("unsupported sub-command {other:?}"),
                ))
            }
        };
        Ok(XargsCmd {
            sub,
            display: format!("xargs {}", args.join(" ")),
        })
    }
}

impl UnixCommand for XargsCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "xargs")?;
        // xargs tokenizes on whitespace; corpus inputs are one path per
        // line with no embedded blanks.
        match self.sub {
            // `xargs cat` is the gather position of the data plane: each
            // named file joins the output rope as a refcounted slice.
            SubCommand::Cat => {
                let mut out = Rope::new();
                for path in input.split_ascii_whitespace() {
                    match ctx.vfs.read_bytes(path) {
                        Some(content) => out.push(content),
                        None => {
                            return Err(CmdError::new(
                                "cat",
                                format!("{path}: No such file or directory"),
                            ))
                        }
                    }
                }
                Ok(out.into_bytes())
            }
            SubCommand::File => {
                let mut out = String::new();
                for path in input.split_ascii_whitespace() {
                    match ctx.vfs.file_type(path) {
                        Some(t) => {
                            out.push_str(path);
                            out.push_str(": ");
                            out.push_str(&t);
                            out.push('\n');
                        }
                        None => {
                            return Err(CmdError::new(
                                "file",
                                format!("{path}: cannot open (No such file or directory)"),
                            ))
                        }
                    }
                }
                Ok(Bytes::from(out))
            }
            SubCommand::WcL => {
                let mut out = String::new();
                for path in input.split_ascii_whitespace() {
                    match ctx.vfs.read_bytes(path) {
                        Some(content) => {
                            let n = content.count_newlines();
                            out.push_str(&format!("{n} {path}\n"));
                        }
                        None => {
                            return Err(CmdError::new(
                                "wc",
                                format!("{path}: No such file or directory"),
                            ))
                        }
                    }
                }
                Ok(Bytes::from(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_command, Vfs};

    fn ctx() -> ExecContext {
        let vfs = Vfs::new();
        vfs.write("/bin/a.sh", "#!/bin/sh\necho one\n");
        vfs.write("/doc/b.txt", "line\nline\nline\n");
        ExecContext::with_vfs(vfs)
    }

    #[test]
    fn xargs_cat_concatenates() {
        let c = parse_command("xargs cat").unwrap();
        let out = c.run_str("/bin/a.sh\n/doc/b.txt\n", &ctx()).unwrap();
        assert_eq!(out, "#!/bin/sh\necho one\nline\nline\nline\n");
    }

    #[test]
    fn xargs_cat_missing_file_errors() {
        let c = parse_command("xargs cat").unwrap();
        // This is the probe behaviour preprocessing depends on: plain words
        // are not files.
        assert!(c.run_str("hello\nworld\n", &ctx()).is_err());
    }

    #[test]
    fn xargs_file_describes() {
        let c = parse_command("xargs file").unwrap();
        let out = c.run_str("/bin/a.sh\n", &ctx()).unwrap();
        assert_eq!(
            out,
            "/bin/a.sh: POSIX shell script, ASCII text executable\n"
        );
    }

    #[test]
    fn xargs_wc_counts_lines_per_file() {
        let c = parse_command("xargs -L 1 wc -l").unwrap();
        let out = c.run_str("/doc/b.txt\n/bin/a.sh\n", &ctx()).unwrap();
        assert_eq!(out, "3 /doc/b.txt\n2 /bin/a.sh\n");
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let c = parse_command("xargs cat").unwrap();
        assert_eq!(c.run_str("", &ctx()).unwrap(), "");
    }

    #[test]
    fn unsupported_subcommand_rejected() {
        assert!(parse_command("xargs rm -rf").is_err());
        assert!(parse_command("xargs").is_err());
    }
}
