//! A tiny virtual filesystem.
//!
//! Several corpus commands consume *files* rather than their standard input:
//! `xargs cat` treats each input line as a path, `comm -23 - dict` reads a
//! dictionary, `paste words nextwords` joins two intermediate files, and
//! multi-pipeline scripts communicate through `> file` redirections. The
//! virtual filesystem keeps all of that hermetic and deterministic.
//!
//! Files carry an optional *type description* so our in-process `file(1)`
//! can report e.g. "POSIX shell script, ASCII text executable" for the
//! `shortest-scripts.sh` benchmark.

use kq_stream::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct Entry {
    content: Bytes,
    file_type: Option<String>,
}

/// An in-memory map from path to file content (plus `file(1)` type).
///
/// Reads take a read lock; script execution writes intermediate files while
/// parallel workers read inputs, hence the `RwLock`.
#[derive(Debug, Default)]
pub struct Vfs {
    files: RwLock<BTreeMap<String, Entry>>,
}

impl Vfs {
    /// Creates an empty filesystem.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    /// Writes (or overwrites) a file. Accepts anything convertible to
    /// [`Bytes`]; handing in a `Bytes` (e.g. a pipeline redirection
    /// target) stores the shared slice without copying — unless the slice
    /// pins a much larger backing buffer, in which case it is compacted
    /// so a few-byte file never retains a multi-MiB input allocation.
    pub fn write(&self, path: impl Into<String>, content: impl Into<Bytes>) {
        self.files.write().insert(
            path.into(),
            Entry {
                content: content.into().compact(),
                file_type: None,
            },
        );
    }

    /// Writes a file with an explicit `file(1)` type description. Applies
    /// the same slice compaction as [`Vfs::write`].
    pub fn write_typed(
        &self,
        path: impl Into<String>,
        content: impl Into<Bytes>,
        file_type: impl Into<String>,
    ) {
        self.files.write().insert(
            path.into(),
            Entry {
                content: content.into().compact(),
                file_type: Some(file_type.into()),
            },
        );
    }

    /// Reads a file's content as a shared byte slice: a refcount bump, no
    /// copy. This is what the executors' input gathering uses.
    pub fn read_bytes(&self, path: &str) -> Option<Bytes> {
        self.files.read().get(path).map(|e| e.content.clone())
    }

    /// Reads a file's content as an owned `String` (copies; compatibility
    /// for text-shaping call sites off the hot path — planning samples and
    /// test fixtures). Foreign byte data written through the
    /// `From<Vec<u8>>` door degrades lossily rather than panicking.
    ///
    /// Commands never read operands through this door: they go through
    /// `read_file_str`, which applies the same hard UTF-8 validation as
    /// piped input, so a foreign file and a foreign pipe fail identically.
    pub fn read(&self, path: &str) -> Option<String> {
        self.files
            .read()
            .get(path)
            .map(|e| String::from_utf8_lossy(e.content.as_bytes()).into_owned())
    }

    /// The `file(1)` description for a path: the declared type if present,
    /// a heuristic otherwise, `None` when the file does not exist.
    pub fn file_type(&self, path: &str) -> Option<String> {
        let files = self.files.read();
        let entry = files.get(path)?;
        Some(match &entry.file_type {
            Some(t) => t.clone(),
            None if entry.content.as_bytes().starts_with(b"#!") => {
                "POSIX shell script, ASCII text executable".to_owned()
            }
            None if entry.content.is_empty() => "empty".to_owned(),
            None => "ASCII text".to_owned(),
        })
    }

    /// True when the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// All paths, sorted (for `ls`).
    pub fn paths(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// True when no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let vfs = Vfs::new();
        vfs.write("/x", "hello\n");
        assert_eq!(vfs.read("/x").as_deref(), Some("hello\n"));
        assert_eq!(vfs.read("/y"), None);
        assert!(vfs.exists("/x"));
        assert!(!vfs.exists("/y"));
    }

    #[test]
    fn file_type_heuristics() {
        let vfs = Vfs::new();
        vfs.write("script", "#!/bin/sh\necho hi\n");
        vfs.write("text", "plain\n");
        vfs.write("empty", "");
        vfs.write_typed("elf", "\u{7f}ELF...", "ELF 64-bit LSB executable");
        assert_eq!(
            vfs.file_type("script").unwrap(),
            "POSIX shell script, ASCII text executable"
        );
        assert_eq!(vfs.file_type("text").unwrap(), "ASCII text");
        assert_eq!(vfs.file_type("empty").unwrap(), "empty");
        assert_eq!(vfs.file_type("elf").unwrap(), "ELF 64-bit LSB executable");
        assert_eq!(vfs.file_type("missing"), None);
    }

    #[test]
    fn paths_sorted() {
        let vfs = Vfs::new();
        vfs.write("b", "");
        vfs.write("a", "");
        assert_eq!(vfs.paths(), vec!["a", "b"]);
        assert_eq!(vfs.len(), 2);
        assert!(!vfs.is_empty());
    }
}
