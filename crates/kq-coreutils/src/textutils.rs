//! Small text-filter commands: `col -bx`, `rev`, `fmt -w N`, and
//! `iconv -f utf-8 -t ascii//translit`.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};

/// `col -bx` — process backspaces (keeping the last character written to
/// each column) and expand tabs to spaces. The spell benchmark uses it to
/// flatten troff-style emboldening.
pub struct ColCmd {
    no_backspaces: bool,
    expand_tabs: bool,
}

impl ColCmd {
    /// Parses `col` arguments.
    pub fn parse(args: &[String]) -> Result<ColCmd, CmdError> {
        let mut no_backspaces = false;
        let mut expand_tabs = false;
        for a in args {
            let Some(flags) = a.strip_prefix('-') else {
                return Err(CmdError::new("col", format!("unexpected operand {a}")));
            };
            for f in flags.chars() {
                match f {
                    'b' => no_backspaces = true,
                    'x' => expand_tabs = true,
                    other => return Err(CmdError::new("col", format!("unknown flag -{other}"))),
                }
            }
        }
        Ok(ColCmd {
            no_backspaces,
            expand_tabs,
        })
    }
}

impl UnixCommand for ColCmd {
    fn display(&self) -> String {
        let mut s = String::from("col");
        if self.no_backspaces || self.expand_tabs {
            s.push_str(" -");
            if self.no_backspaces {
                s.push('b');
            }
            if self.expand_tabs {
                s.push('x');
            }
        }
        s
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "col")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            for line in kq_stream::lines_of(input) {
                let mut cols: Vec<char> = Vec::with_capacity(line.len());
                for c in line.chars() {
                    match c {
                        '\u{8}' if self.no_backspaces => {
                            cols.pop();
                        }
                        '\t' if self.expand_tabs => {
                            let next_stop = (cols.len() / 8 + 1) * 8;
                            while cols.len() < next_stop {
                                cols.push(' ');
                            }
                        }
                        '\r' => {}
                        other => cols.push(other),
                    }
                }
                out.extend(cols);
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

/// `rev` — reverse the characters of every line.
pub struct RevCmd;

impl UnixCommand for RevCmd {
    fn display(&self) -> String {
        "rev".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "rev")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            for line in kq_stream::lines_of(input) {
                out.extend(line.chars().rev());
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

/// `fmt -w N` — greedy word-wrap to width N. With `-w1`, every word lands
/// on its own line (the unix50 tokenizer idiom).
pub struct FmtCmd {
    width: usize,
}

impl FmtCmd {
    /// Parses `fmt` arguments (`-w N`, `-wN`, `-N`).
    pub fn parse(args: &[String]) -> Result<FmtCmd, CmdError> {
        let mut width = 75usize;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let spec: &str = if a == "-w" {
                it.next()
                    .ok_or_else(|| CmdError::new("fmt", "missing width"))?
            } else if let Some(body) = a.strip_prefix("-w") {
                body
            } else if let Some(body) = a.strip_prefix('-') {
                body
            } else {
                return Err(CmdError::new("fmt", format!("unexpected operand {a}")));
            };
            width = spec
                .parse()
                .map_err(|_| CmdError::new("fmt", format!("invalid width {spec:?}")))?;
        }
        Ok(FmtCmd { width })
    }
}

impl UnixCommand for FmtCmd {
    fn display(&self) -> String {
        format!("fmt -w{}", self.width)
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "fmt")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            let mut line_len = 0usize;
            for line in kq_stream::lines_of(input) {
                if line.trim().is_empty() {
                    if line_len > 0 {
                        out.push('\n');
                        line_len = 0;
                    }
                    out.push('\n');
                    continue;
                }
                for word in line.split_ascii_whitespace() {
                    let wlen = word.chars().count();
                    if line_len == 0 {
                        out.push_str(word);
                        line_len = wlen;
                    } else if line_len + 1 + wlen <= self.width {
                        out.push(' ');
                        out.push_str(word);
                        line_len += 1 + wlen;
                    } else {
                        out.push('\n');
                        out.push_str(word);
                        line_len = wlen;
                    }
                }
            }
            if line_len > 0 {
                out.push('\n');
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

/// `iconv -f utf-8 -t ascii//translit` — transliterate Latin accents to
/// ASCII; characters without a transliteration become `?` as GNU does.
pub struct IconvCmd;

impl IconvCmd {
    /// Parses `iconv` arguments; only the utf-8 → ascii//translit pair the
    /// corpus uses is supported.
    pub fn parse(args: &[String]) -> Result<IconvCmd, CmdError> {
        let mut from: Option<&str> = None;
        let mut to: Option<&str> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-f" => from = it.next().map(String::as_str),
                "-t" => to = it.next().map(String::as_str),
                other => {
                    return Err(CmdError::new(
                        "iconv",
                        format!("unexpected operand {other}"),
                    ))
                }
            }
        }
        match (from, to) {
            (Some(f), Some(t))
                if f.eq_ignore_ascii_case("utf-8")
                    && t.to_ascii_lowercase().starts_with("ascii") =>
            {
                Ok(IconvCmd)
            }
            _ => Err(CmdError::new(
                "iconv",
                "only -f utf-8 -t ascii//translit is supported",
            )),
        }
    }
}

fn translit(c: char) -> Option<&'static str> {
    Some(match c {
        'á' | 'à' | 'â' | 'ä' | 'ã' | 'å' => "a",
        'é' | 'è' | 'ê' | 'ë' => "e",
        'í' | 'ì' | 'î' | 'ï' => "i",
        'ó' | 'ò' | 'ô' | 'ö' | 'õ' => "o",
        'ú' | 'ù' | 'û' | 'ü' => "u",
        'ý' | 'ÿ' => "y",
        'ñ' => "n",
        'ç' => "c",
        'Á' | 'À' | 'Â' | 'Ä' | 'Ã' | 'Å' => "A",
        'É' | 'È' | 'Ê' | 'Ë' => "E",
        'Í' | 'Ì' | 'Î' | 'Ï' => "I",
        'Ó' | 'Ò' | 'Ô' | 'Ö' | 'Õ' => "O",
        'Ú' | 'Ù' | 'Û' | 'Ü' => "U",
        'Ñ' => "N",
        'Ç' => "C",
        'ß' => "ss",
        'æ' => "ae",
        'Æ' => "AE",
        'œ' => "oe",
        'Œ' => "OE",
        '“' | '”' => "\"",
        '‘' | '’' => "'",
        '–' | '—' => "-",
        '…' => "...",
        _ => return None,
    })
}

impl UnixCommand for IconvCmd {
    fn display(&self) -> String {
        "iconv -f utf-8 -t ascii//translit".to_owned()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "iconv")?;
        let text = || -> Result<String, CmdError> {
            let mut out = String::with_capacity(input.len());
            for c in input.chars() {
                if c.is_ascii() {
                    out.push(c);
                } else if let Some(t) = translit(c) {
                    out.push_str(t);
                } else {
                    out.push('?');
                }
            }
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn col_strips_backspace_overstrikes() {
        // troff bold: "b\bbo\bol\bld\bd" renders as "bold".
        assert_eq!(run("col -bx", "b\u{8}bo\u{8}ol\u{8}ld\u{8}d\n"), "bold\n");
    }

    #[test]
    fn col_expands_tabs() {
        assert_eq!(run("col -bx", "a\tb\n"), "a       b\n");
        assert_eq!(run("col -bx", "abcdefgh\ti\n"), "abcdefgh        i\n");
    }

    #[test]
    fn rev_reverses_each_line() {
        assert_eq!(run("rev", "abc\nxy\n"), "cba\nyx\n");
        assert_eq!(run("rev", "\n"), "\n");
    }

    #[test]
    fn fmt_w1_puts_each_word_on_a_line() {
        assert_eq!(run("fmt -w1", "one two three\n"), "one\ntwo\nthree\n");
        assert_eq!(run("fmt -w 1", "a b\n"), "a\nb\n");
    }

    #[test]
    fn fmt_wraps_greedily() {
        assert_eq!(run("fmt -w7", "aa bb cc dd\n"), "aa bb\ncc dd\n");
    }

    #[test]
    fn iconv_transliterates() {
        assert_eq!(run("iconv -f utf-8 -t ascii//translit", "café\n"), "cafe\n");
        assert_eq!(
            run("iconv -f utf-8 -t ascii//translit", "naïve — déjà\n"),
            "naive - deja\n"
        );
        assert_eq!(run("iconv -f utf-8 -t ascii//translit", "λ\n"), "?\n");
    }

    #[test]
    fn iconv_rejects_other_charsets() {
        assert!(parse_command("iconv -f latin1 -t utf-8").is_err());
    }
}
