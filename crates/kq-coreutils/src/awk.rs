//! `awk` — a purpose-built interpreter for the AWK subset appearing in the
//! KumQuat corpus (Table 10): pattern/action items with field references,
//! `NF`, `length`, numeric/string comparisons, `print` lists, field
//! assignment (`{$1=$1};1` — the whitespace normalizer), `-v` variable
//! presets (only `OFS` is used), and the bare `1` truthy pattern.
//!
//! AWK's string/number duality is honoured where the corpus depends on it:
//! comparing a field against a numeric constant coerces numerically
//! (`"$1 >= 1000"` on `uniq -c` output), while string-vs-string compares
//! byte-wise.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(f64),
    Str(String),
    /// `$e` — field reference; `$0` is the whole record.
    Field(Box<Expr>),
    /// `NF` — number of fields.
    Nf,
    /// `length` — length of `$0`.
    Length,
    /// A scalar variable (e.g. `OFS`, or an unset user variable).
    Var(String),
    Compare(CmpOp, Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Ge,
    Le,
    Gt,
    Lt,
}

#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    /// `print` with an (optionally empty) expression list.
    Print(Vec<Expr>),
    /// `$n = expr` or `var = expr`.
    Assign(Target, Expr),
    /// `var += expr` (numeric accumulation; fields coerce to numbers).
    AddAssign(Target, Expr),
}

#[derive(Debug, Clone, PartialEq)]
enum Target {
    Field(Expr),
    Var(String),
}

/// Which phase of the run an item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    /// Once, before any input line.
    Begin,
    /// Per input line (the default).
    Main,
    /// Once, after the last input line.
    End,
}

#[derive(Debug, Clone, PartialEq)]
struct Item {
    section: Section,
    pattern: Option<Expr>,
    action: Option<Vec<Stmt>>,
}

/// The `awk` command.
pub struct AwkCmd {
    items: Vec<Item>,
    presets: Vec<(String, String)>,
    display: String,
}

impl AwkCmd {
    /// Parses `awk [-v var=val]... 'program'`.
    pub fn parse(args: &[String]) -> Result<AwkCmd, CmdError> {
        let mut presets = Vec::new();
        let mut program: Option<&String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "-v" {
                let kv = it
                    .next()
                    .ok_or_else(|| CmdError::new("awk", "missing -v assignment"))?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| CmdError::new("awk", "malformed -v assignment"))?;
                presets.push((k.to_owned(), unescape(v)));
            } else if program.is_none() {
                program = Some(a);
            } else {
                return Err(CmdError::new("awk", "file operands are not supported"));
            }
        }
        let text = program.ok_or_else(|| CmdError::new("awk", "missing program"))?;
        let items = parse_program(text)?;
        let mut display = String::from("awk");
        for a in args {
            display.push(' ');
            if a.contains(' ') || a.contains('$') || a.contains('{') {
                display.push('\'');
                display.push_str(a);
                display.push('\'');
            } else {
                display.push_str(a);
            }
        }
        Ok(AwkCmd {
            items,
            presets,
            display,
        })
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some(o) => out.push(o),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

// ---- lexer ----

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Dollar,
    Num(f64),
    Str(String),
    Ident(String),
    Op(CmpOp),
    Assign,
    AddAssign,
    Comma,
    Semi,
    LBrace,
    RBrace,
}

fn lex(text: &str) -> Result<Vec<Tok>, CmdError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' => i += 1,
            '$' => {
                toks.push(Tok::Dollar);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        s.push(match chars[i + 1] {
                            't' => '\t',
                            'n' => '\n',
                            o => o,
                        });
                        i += 2;
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                if i >= chars.len() {
                    return Err(CmdError::new("awk", "unterminated string"));
                }
                i += 1;
                toks.push(Tok::Str(s));
            }
            '=' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Op(CmpOp::Eq));
                i += 2;
            }
            '+' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::AddAssign);
                i += 2;
            }
            '=' => {
                toks.push(Tok::Assign);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Op(CmpOp::Ne));
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Op(CmpOp::Ge));
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Op(CmpOp::Le));
                i += 2;
            }
            '>' => {
                toks.push(Tok::Op(CmpOp::Gt));
                i += 1;
            }
            '<' => {
                toks.push(Tok::Op(CmpOp::Lt));
                i += 1;
            }
            d if d.is_ascii_digit() || d == '.' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok::Num(text.parse().map_err(|_| {
                    CmdError::new("awk", format!("bad number {text:?}"))
                })?));
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(CmdError::new(
                    "awk",
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(toks)
}

// ---- parser ----

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

fn parse_program(text: &str) -> Result<Vec<Item>, CmdError> {
    let mut p = Parser {
        toks: lex(text)?,
        pos: 0,
    };
    let mut items = Vec::new();
    loop {
        while p.peek() == Some(&Tok::Semi) {
            p.pos += 1;
        }
        if p.peek().is_none() {
            break;
        }
        items.push(p.parse_item()?);
    }
    if items.is_empty() {
        return Err(CmdError::new("awk", "empty program"));
    }
    Ok(items)
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn err(&self, msg: &str) -> CmdError {
        CmdError::new("awk", format!("{msg} (token {})", self.pos))
    }

    fn parse_item(&mut self) -> Result<Item, CmdError> {
        let section = match self.peek() {
            Some(Tok::Ident(name)) if name == "BEGIN" => {
                self.pos += 1;
                Section::Begin
            }
            Some(Tok::Ident(name)) if name == "END" => {
                self.pos += 1;
                Section::End
            }
            _ => Section::Main,
        };
        if section != Section::Main && self.peek() != Some(&Tok::LBrace) {
            return Err(self.err("BEGIN/END must be followed by an action"));
        }
        let pattern = if self.peek() != Some(&Tok::LBrace) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let action = if self.peek() == Some(&Tok::LBrace) {
            self.pos += 1;
            let mut stmts = Vec::new();
            loop {
                while self.peek() == Some(&Tok::Semi) {
                    self.pos += 1;
                }
                if self.peek() == Some(&Tok::RBrace) {
                    self.pos += 1;
                    break;
                }
                if self.peek().is_none() {
                    return Err(self.err("unterminated action"));
                }
                stmts.push(self.parse_stmt()?);
            }
            Some(stmts)
        } else {
            None
        };
        if pattern.is_none() && action.is_none() {
            return Err(self.err("expected pattern or action"));
        }
        Ok(Item {
            section,
            pattern,
            action,
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CmdError> {
        if self.peek() == Some(&Tok::Ident("print".to_owned())) {
            self.pos += 1;
            let mut exprs = Vec::new();
            if !matches!(self.peek(), None | Some(Tok::Semi) | Some(Tok::RBrace)) {
                exprs.push(self.parse_expr()?);
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    exprs.push(self.parse_expr()?);
                }
            }
            return Ok(Stmt::Print(exprs));
        }
        // Assignment: target '=' expr
        let target = match self.peek() {
            Some(Tok::Dollar) => {
                self.pos += 1;
                Target::Field(self.parse_primary()?)
            }
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Target::Var(name)
            }
            _ => return Err(self.err("expected statement")),
        };
        match self.peek() {
            Some(Tok::Assign) => {
                self.pos += 1;
                let value = self.parse_expr()?;
                Ok(Stmt::Assign(target, value))
            }
            Some(Tok::AddAssign) => {
                self.pos += 1;
                let value = self.parse_expr()?;
                Ok(Stmt::AddAssign(target, value))
            }
            _ => Err(self.err("expected '=' or '+=' in assignment")),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, CmdError> {
        let lhs = self.parse_primary()?;
        if let Some(Tok::Op(op)) = self.peek() {
            let op = *op;
            self.pos += 1;
            let rhs = self.parse_primary()?;
            return Ok(Expr::Compare(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, CmdError> {
        match self.peek().cloned() {
            Some(Tok::Dollar) => {
                self.pos += 1;
                let idx = self.parse_primary()?;
                Ok(Expr::Field(Box::new(idx)))
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "NF" => Ok(Expr::Nf),
                    "length" => Ok(Expr::Length),
                    _ => Ok(Expr::Var(name)),
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

// ---- evaluation ----

/// An AWK value with the string/number duality.
#[derive(Debug, Clone)]
enum Value {
    Num(f64),
    Str(String),
    /// A field that looks numeric: compares numerically against numbers.
    StrNum(String, f64),
}

impl Value {
    fn as_num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::StrNum(_, n) => *n,
            Value::Str(s) => numeric_prefix(s),
        }
    }

    fn as_str(&self) -> String {
        match self {
            Value::Num(n) => format_num(*n),
            Value::Str(s) | Value::StrNum(s, _) => s.clone(),
        }
    }

    fn truthy(&self) -> bool {
        match self {
            Value::Num(n) => *n != 0.0,
            Value::StrNum(_, n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }
}

fn numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let mut end = 0;
    let bytes = t.as_bytes();
    if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
        end += 1;
    }
    while end < bytes.len() && (bytes[end].is_ascii_digit() || bytes[end] == b'.') {
        end += 1;
    }
    t[..end].parse().unwrap_or(0.0)
}

fn looks_numeric(s: &str) -> bool {
    let t = s.trim();
    !t.is_empty() && t.parse::<f64>().is_ok()
}

fn format_num(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e16 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// A record being processed: `$0` plus its field decomposition.
struct Record {
    line: String,
    fields: Vec<String>,
}

impl Record {
    fn new(line: &str) -> Record {
        Record {
            line: line.to_owned(),
            fields: line.split_ascii_whitespace().map(str::to_owned).collect(),
        }
    }

    fn field(&self, n: usize) -> &str {
        if n == 0 {
            &self.line
        } else {
            self.fields.get(n - 1).map(String::as_str).unwrap_or("")
        }
    }

    fn set_field(&mut self, n: usize, value: String, ofs: &str) {
        if n == 0 {
            self.line = value;
            self.fields = self
                .line
                .split_ascii_whitespace()
                .map(str::to_owned)
                .collect();
            return;
        }
        if self.fields.len() < n {
            self.fields.resize(n, String::new());
        }
        self.fields[n - 1] = value;
        self.line = self.fields.join(ofs);
    }
}

struct Interp<'a> {
    vars: HashMap<String, String>,
    items: &'a [Item],
}

impl Interp<'_> {
    fn ofs(&self) -> String {
        self.vars
            .get("OFS")
            .cloned()
            .unwrap_or_else(|| " ".to_owned())
    }

    fn eval(&self, expr: &Expr, rec: &Record) -> Value {
        match expr {
            Expr::Num(n) => Value::Num(*n),
            Expr::Str(s) => Value::Str(s.clone()),
            Expr::Nf => Value::Num(rec.fields.len() as f64),
            Expr::Length => Value::Num(rec.line.chars().count() as f64),
            Expr::Var(name) => {
                let v = self.vars.get(name).cloned().unwrap_or_default();
                if looks_numeric(&v) {
                    let n = numeric_prefix(&v);
                    Value::StrNum(v, n)
                } else {
                    Value::Str(v)
                }
            }
            Expr::Field(idx) => {
                let n = self.eval(idx, rec).as_num().max(0.0) as usize;
                let s = rec.field(n);
                if looks_numeric(s) {
                    Value::StrNum(s.to_owned(), numeric_prefix(s))
                } else {
                    Value::Str(s.to_owned())
                }
            }
            Expr::Compare(op, lhs, rhs) => {
                let l = self.eval(lhs, rec);
                let r = self.eval(rhs, rec);
                let numeric = matches!(l, Value::Num(_) | Value::StrNum(..))
                    && matches!(r, Value::Num(_) | Value::StrNum(..));
                let ord = if numeric {
                    l.as_num().partial_cmp(&r.as_num())
                } else {
                    Some(l.as_str().cmp(&r.as_str()))
                };
                let Some(ord) = ord else {
                    return Value::Num(0.0);
                };
                let hit = match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => !ord.is_eq(),
                    CmpOp::Ge => ord.is_ge(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Lt => ord.is_lt(),
                };
                Value::Num(if hit { 1.0 } else { 0.0 })
            }
        }
    }

    fn run_line(&mut self, line: &str, out: &mut String) {
        self.run_items(Section::Main, line, out);
    }

    fn run_items(&mut self, section: Section, line: &str, out: &mut String) {
        let mut rec = Record::new(line);
        for item in self.items {
            if item.section != section {
                continue;
            }
            let selected = match &item.pattern {
                Some(p) => self.eval(p, &rec).truthy(),
                None => true,
            };
            if !selected {
                continue;
            }
            match &item.action {
                None => {
                    out.push_str(&rec.line);
                    out.push('\n');
                }
                Some(stmts) => {
                    for stmt in stmts {
                        match stmt {
                            Stmt::Print(exprs) => {
                                if exprs.is_empty() {
                                    out.push_str(&rec.line);
                                } else {
                                    let ofs = self.ofs();
                                    let parts: Vec<String> =
                                        exprs.iter().map(|e| self.eval(e, &rec).as_str()).collect();
                                    out.push_str(&parts.join(&ofs));
                                }
                                out.push('\n');
                            }
                            Stmt::Assign(target, value) => {
                                let v = self.eval(value, &rec).as_str();
                                match target {
                                    Target::Field(idx) => {
                                        let n = self.eval(idx, &rec).as_num().max(0.0) as usize;
                                        let ofs = self.ofs();
                                        rec.set_field(n, v, &ofs);
                                    }
                                    Target::Var(name) => {
                                        self.vars.insert(name.clone(), v);
                                    }
                                }
                            }
                            Stmt::AddAssign(target, value) => {
                                let add = self.eval(value, &rec).as_num();
                                match target {
                                    Target::Field(idx) => {
                                        let n = self.eval(idx, &rec).as_num().max(0.0) as usize;
                                        let cur = numeric_prefix(rec.field(n));
                                        let ofs = self.ofs();
                                        rec.set_field(n, format_num(cur + add), &ofs);
                                    }
                                    Target::Var(name) => {
                                        let cur = self
                                            .vars
                                            .get(name)
                                            .map(|v| numeric_prefix(v))
                                            .unwrap_or(0.0);
                                        self.vars.insert(name.clone(), format_num(cur + add));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

impl UnixCommand for AwkCmd {
    fn display(&self) -> String {
        self.display.clone()
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, "awk")?;
        let text = || -> Result<String, CmdError> {
            let mut interp = Interp {
                vars: self.presets.iter().cloned().collect(),
                items: &self.items,
            };
            let mut out = String::with_capacity(input.len());
            interp.run_items(Section::Begin, "", &mut out);
            let mut last = "";
            for line in kq_stream::lines_of(input) {
                interp.run_line(line, &mut out);
                last = line;
            }
            // In END, `$0` holds the last record read (as in GNU awk).
            interp.run_items(Section::End, last, &mut out);
            Ok(out)
        };
        text().map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_command;

    fn run(cmd: &str, input: &str) -> String {
        parse_command(cmd)
            .unwrap()
            .run_str(input, &ExecContext::default())
            .unwrap()
    }

    #[test]
    fn numeric_threshold_pattern() {
        // poets 8.2_1: keep uniq -c lines with count >= 1000.
        let input = "   1500 the\n     30 ox\n   1000 a\n";
        assert_eq!(
            run(r#"awk "\$1 >= 1000""#, input),
            "   1500 the\n   1000 a\n"
        );
    }

    #[test]
    fn pattern_with_print_action() {
        // poets find_anagrams: print the word when its count >= 2.
        let input = "      2 abc\n      1 xyz\n";
        assert_eq!(run(r#"awk "\$1 >= 2 {print \$2}""#, input), "abc\n");
    }

    #[test]
    fn length_patterns() {
        assert_eq!(
            run(r#"awk "length >= 16""#, "short\nabcdefghijklmnop\n"),
            "abcdefghijklmnop\n"
        );
        assert_eq!(run("awk 'length <= 2'", "ab\nabc\na\n"), "ab\na\n");
    }

    #[test]
    fn whitespace_normalizer() {
        // unix50 19.sh: `{$1=$1};1` squeezes runs of blanks.
        assert_eq!(run(r#"awk "{\$1=\$1};1""#, "  a   b\tc \n"), "a b c\n");
        // Empty lines survive as empty lines.
        assert_eq!(run(r#"awk "{\$1=\$1};1""#, "\n"), "\n");
    }

    #[test]
    fn print_reordered_fields_with_ofs() {
        let input = "3 bus\n";
        assert_eq!(
            run(r#"awk -v OFS="\t" "{print \$2,\$1}""#, input),
            "bus\t3\n"
        );
    }

    #[test]
    fn print_field_and_whole_record() {
        // unix50 14.sh: prefix each line with its second field.
        assert_eq!(run(r#"awk "{print \$2, \$0}""#, "a b c\n"), "b a b c\n");
    }

    #[test]
    fn print_nf() {
        assert_eq!(run("awk '{print NF}'", "a b c\n\nx\n"), "3\n0\n1\n");
    }

    #[test]
    fn equality_pattern_with_two_prints() {
        let input = "2 x y\n3 p q\n2 m n\n";
        assert_eq!(
            run(r#"awk "\$1 == 2 {print \$2, \$3}""#, input),
            "x y\nm n\n"
        );
    }

    #[test]
    fn string_comparison_is_bytewise() {
        assert_eq!(run(r#"awk "\$1 == \"b\"""#, "a 1\nb 2\n"), "b 2\n");
    }

    #[test]
    fn bare_one_prints_everything() {
        assert_eq!(run("awk 1", "x\ny\n"), "x\ny\n");
    }

    #[test]
    fn field_index_expression() {
        assert_eq!(run("awk '{print $NF}'", "a b c\n"), "c\n");
    }

    #[test]
    fn end_sum_reducer() {
        // The classic column summer: output is a bare total.
        assert_eq!(
            run(
                "awk '{s += $1} END {print s}'",
                "3
4
5
"
            ),
            "12
"
        );
        // Non-numeric fields coerce to 0, as in GNU awk.
        assert_eq!(
            run(
                "awk '{s += $1} END {print s}'",
                "2 x
zz
"
            ),
            "2
"
        );
        // No input lines: s is unset, printing an empty line.
        assert_eq!(run("awk '{s += $1} END {print s}'", ""), "\n");
    }

    #[test]
    fn end_sum_is_divide_and_conquer_addable() {
        // The property that makes bare `add` the correct combiner.
        let f = |input: &str| run("awk '{s += $1} END {print s}'", input);
        let y1: i64 = f("1\n2\n").trim().parse().unwrap();
        let y2: i64 = f("30\n9\n").trim().parse().unwrap();
        let y12: i64 = f("1\n2\n30\n9\n").trim().parse().unwrap();
        assert_eq!(y12, y1 + y2);
    }

    #[test]
    fn begin_runs_before_input() {
        assert_eq!(
            run("awk 'BEGIN {print \"hdr\"} {print $1}'", "a b\n"),
            "hdr\na\n"
        );
    }

    #[test]
    fn end_sees_last_record() {
        assert_eq!(run("awk 'END {print $1}'", "a\nb\nlast x\n"), "last\n");
    }

    #[test]
    fn add_assign_on_field() {
        assert_eq!(run("awk '{$1 += 10};1'", "5 x\n"), "15 x\n");
    }

    #[test]
    fn begin_end_require_action() {
        assert!(parse_command("awk 'BEGIN'").is_err());
        assert!(parse_command("awk 'END >= 2'").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_command("awk").is_err());
        assert!(parse_command("awk '{print $1'").is_err());
        assert!(parse_command("awk '@'").is_err());
    }
}
