//! Optional external-process backend: run the *real* system binary for a
//! command line and capture its stdout, for cross-validating the
//! in-process implementations against GNU coreutils.
//!
//! KumQuat proper never needs this — the synthesizer treats commands as
//! black boxes either way — but it keeps the substrate honest: the
//! `gnu_validation` integration tests (ignored by default, run with
//! `KQ_VALIDATE_GNU=1 cargo test -- --ignored`) diff our outputs against
//! the host's binaries over shared inputs.

use crate::{Bytes, CmdError, ExecContext, UnixCommand};
use std::io::Write;
use std::process::{Command as OsCommand, Stdio};

/// A command executed by spawning the real binary.
pub struct ExternalCommand {
    argv: Vec<String>,
}

impl ExternalCommand {
    /// Wraps pre-split argv words. The first word is the binary name,
    /// resolved through `PATH`.
    pub fn new(argv: &[String]) -> Result<ExternalCommand, CmdError> {
        if argv.is_empty() {
            return Err(CmdError::new("sh", "empty external command"));
        }
        Ok(ExternalCommand {
            argv: argv.to_vec(),
        })
    }

    /// Convenience: parse a shell line into an external command.
    pub fn parse(line: &str) -> Result<ExternalCommand, CmdError> {
        let words = crate::split_words(line).map_err(|e| CmdError::new("sh", e))?;
        ExternalCommand::new(&words)
    }
}

impl UnixCommand for ExternalCommand {
    fn display(&self) -> String {
        self.argv.join(" ")
    }

    fn run(&self, input: Bytes, _ctx: &ExecContext) -> Result<Bytes, CmdError> {
        let input = crate::input_str(&input, &self.argv[0])?;
        let text = || -> Result<String, CmdError> {
            let name = &self.argv[0];
            let mut child = OsCommand::new(name)
                .args(&self.argv[1..])
                .env("LC_ALL", "C")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .map_err(|e| CmdError::new(name.clone(), format!("spawn failed: {e}")))?;
            child
                .stdin
                .as_mut()
                .expect("stdin piped")
                .write_all(input.as_bytes())
                .map_err(|e| CmdError::new(name.clone(), format!("stdin write failed: {e}")))?;
            let output = child
                .wait_with_output()
                .map_err(|e| CmdError::new(name.clone(), format!("wait failed: {e}")))?;
            if !output.status.success() && output.stdout.is_empty() {
                return Err(CmdError::new(
                    name.clone(),
                    String::from_utf8_lossy(&output.stderr).trim().to_owned(),
                ));
            }
            String::from_utf8(output.stdout)
                .map_err(|_| CmdError::new(name.clone(), "non-UTF8 output"))
        };
        text().map(Bytes::from)
    }
}

/// True when GNU cross-validation was requested via `KQ_VALIDATE_GNU=1`.
pub fn gnu_validation_enabled() -> bool {
    std::env::var("KQ_VALIDATE_GNU")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Commands whose in-process and GNU outputs must agree byte-for-byte
    /// on this input. Only runs when the host opts in (the binaries and
    /// their versions are host-dependent).
    #[test]
    fn cross_validate_against_host_binaries() {
        if !gnu_validation_enabled() {
            eprintln!("set KQ_VALIDATE_GNU=1 to cross-validate against host binaries");
            return;
        }
        let input = "the Quick\nbrown fox\nthe Quick\n\njumps! over 42 dogs\n";
        let ctx = ExecContext::default();
        for line in [
            "tr A-Z a-z",
            r"tr -cs A-Za-z '\n'",
            "sort",
            "sort -rn",
            "uniq",
            "uniq -c",
            "wc -l",
            "grep -c the",
            "cut -d ' ' -f 1",
            "head -n 2",
            "tail -n 2",
            "rev",
            "sed s/the/THE/",
        ] {
            let ours = crate::parse_command(line).unwrap().run_str(input, &ctx);
            let theirs = ExternalCommand::parse(line)
                .unwrap()
                .run(Bytes::from(input), &ctx)
                .map(Bytes::into_string);
            match (ours, theirs) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "divergence for {line}"),
                (a, b) => panic!("{line}: ours {a:?} vs GNU {b:?}"),
            }
        }
    }
}
