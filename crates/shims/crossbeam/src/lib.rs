//! Minimal API-compatible stand-in for the parts of `crossbeam` the
//! workspace uses: `channel::{bounded, unbounded}` MPMC channels with
//! clonable senders *and receivers*, blocking `send`, a blocking
//! receiver iterator that terminates when every sender is gone, and
//! `deque::{Injector, Worker, Stealer}` — the work-stealing task queues
//! behind the dataflow scheduler.
//!
//! The implementations are `Mutex<VecDeque>`-based — not lock-free like
//! the real crossbeam, but the executors move chunk *handles* (refcounted
//! byte slices) and tiny task descriptors through them, so queue
//! throughput is nowhere near the bottleneck.

/// MPMC channels (`crossbeam::channel` subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half. Clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half. Clonable (MPMC: each value goes to one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so iterators finish.
                // The notify must happen while holding the queue mutex:
                // without it, a receiver that has checked `senders` but not
                // yet parked in `wait` would miss this wakeup and block
                // forever. Holding the lock serializes with that window
                // (the receiver is either pre-check, and will observe the
                // decremented counter, or already parked, and will be
                // woken).
                let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked senders so they can error
                // out. Same lock-before-notify requirement as above.
                let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// True when every receiver has been dropped (a subsequent `send`
        /// would fail). Lets producers with batched sends — e.g. a
        /// combiner that only transmits at end-of-input — notice a
        /// downstream teardown early and stop consuming.
        pub fn is_disconnected(&self) -> bool {
            self.inner.receivers.load(Ordering::SeqCst) == 0
        }

        /// The number of values currently queued (racy, advisory only —
        /// matches `crossbeam::channel::Sender::len`). Telemetry uses the
        /// value observed right after a `send` to track peak occupancy.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// True when no value is queued (racy, advisory only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocks until the value is enqueued; errors when every receiver
        /// has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.inner.not_full.wait(queue).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// The number of values currently queued (racy, advisory only —
        /// matches `crossbeam::channel::Receiver::len`).
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// True when no value is queued (racy, advisory only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocks for the next value; `None` when the channel is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Option<T> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Some(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return None;
                }
                queue = self.inner.not_empty.wait(queue).expect("channel poisoned");
            }
        }

        /// A blocking iterator over received values; ends at disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// A channel that holds at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }
}

/// Work-stealing deques (`crossbeam::deque` subset): a global [`Injector`]
/// plus one [`Worker`] per scheduler thread, each exposing a [`Stealer`]
/// handle to its siblings. Non-blocking by design — an empty pop/steal
/// returns immediately and the *caller* decides whether to park — which is
/// exactly the contract the dataflow scheduler's idle protocol needs.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, mirroring crossbeam's three-way result.
    /// This shim's `Mutex` queues never conflict, so [`Steal::Retry`] is
    /// never produced here — but callers loop on it, keeping them correct
    /// against the real lock-free implementation too.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// A concurrent operation interfered; try again.
        Retry,
    }

    /// A FIFO global queue every worker can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        /// Takes a task from the front.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when no task is queued (racy, advisory only).
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }

    /// A worker-owned queue: the owner pushes and pops at the front
    /// (FIFO here, like `Worker::new_fifo()`), thieves steal from the
    /// back via the [`Stealer`] handle.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A FIFO worker queue (matches `crossbeam::deque::Worker::new_fifo`).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues a task on the owner's side.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        /// Dequeues the owner's next task.
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// A handle siblings use to steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: self.queue.clone(),
            }
        }
    }

    /// The thief-side handle of a [`Worker`] queue. Clonable.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: self.queue.clone(),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the back of the owner's queue (the
        /// oldest-first end stays with the owner, minimizing contention).
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn deque_owner_and_thief_drain_everything() {
        let injector = Injector::new();
        let local = Worker::new_fifo();
        let stealer = local.stealer();
        for i in 0..10 {
            injector.push(i);
            local.push(100 + i);
        }
        let mut got = Vec::new();
        while let Steal::Success(t) = injector.steal() {
            got.push(t);
        }
        while let Some(t) = local.pop() {
            got.push(t);
        }
        assert_eq!(stealer.steal(), Steal::Empty);
        got.sort_unstable();
        let want: Vec<i32> = (0..10).chain(100..110).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn deque_steal_races_with_owner() {
        let local = Worker::new_fifo();
        let stealer = local.stealer();
        for i in 0..1000 {
            local.push(i);
        }
        let stolen = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let mut n = 0usize;
                loop {
                    match stealer.steal() {
                        Steal::Success(_) => n += 1,
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
                n
            });
            let mut popped = 0usize;
            while local.pop().is_some() {
                popped += 1;
            }
            (handle.join().unwrap(), popped)
        });
        assert_eq!(stolen.0 + stolen.1, 1000, "every task taken exactly once");
    }

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::bounded::<usize>(2);
        let (otx, orx) = channel::unbounded::<usize>();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let rx = rx.clone();
                let otx = otx.clone();
                scope.spawn(move || {
                    for v in rx.iter() {
                        otx.send(v * 2).unwrap();
                    }
                });
            }
            drop(rx);
            drop(otx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got: Vec<usize> = orx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
