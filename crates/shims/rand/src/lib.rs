//! Minimal API-compatible stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`, plus a seedable
//! [`rngs::SmallRng`]. The generator is SplitMix64 — statistically fine
//! for workload synthesis and input fuzzing, deterministic per seed, and
//! emphatically not cryptographic (neither is the real `SmallRng`).

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)` (`hi` inclusive when `inclusive`).
    fn sample_between<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`]. Generic over the element
/// type so integer literals infer from the call site, as with real rand.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Converts raw generator output into a uniform value.
    fn from_u64(v: u64) -> Self;
}

impl Standard for f64 {
    fn from_u64(v: u64) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_u64(v: u64) -> f32 {
        (v >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn from_u64(v: u64) -> u64 {
        v
    }
}

impl Standard for u32 {
    fn from_u64(v: u64) -> u32 {
        (v >> 32) as u32
    }
}

impl Standard for bool {
    fn from_u64(v: u64) -> bool {
        v & 1 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The raw 64-bit generator step.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T` (`rng.gen::<f64>()` etc.).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A uniform value in `range` (`0..n` or `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small fast non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng {
                // Avoid the all-zero fixed point and decorrelate tiny seeds.
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
