//! Minimal API-compatible stand-in for `criterion`.
//!
//! No statistics machinery — each benchmark runs a short calibrated batch
//! and reports the mean wall-clock per iteration (plus throughput when
//! declared). Good enough to compare implementations in the same process;
//! not a replacement for real criterion's outlier analysis.
//!
//! Environment knobs: `KQ_BENCH_TARGET_MS` (sampling budget per benchmark,
//! default 300) and `KQ_BENCH_QUICK=1` (single-iteration smoke mode, used
//! by CI to validate the bench binaries without burning minutes).

use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

fn target_budget() -> Duration {
    let ms = std::env::var("KQ_BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

fn quick_mode() -> bool {
    std::env::var("KQ_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    /// Mean duration of one iteration, filled by `iter`/`iter_batched`.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            mean: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine`, auto-scaling the iteration count to the budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if quick_mode() {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.mean = t0.elapsed();
            self.iters = 1;
            return;
        }
        // Calibrate with one iteration, then size the batch to the budget.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let budget = target_budget();
        let n = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t0 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.mean = t0.elapsed() / (n as u32);
        self.iters = n + 1;
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let reps: u64 = if quick_mode() { 1 } else { 16 };
        let mut total = Duration::ZERO;
        for _ in 0..reps {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed();
        }
        self.mean = total / (reps as u32);
        self.iters = reps;
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, name: &str, mean: Duration, throughput: Option<Throughput>) {
    let qualified = if group.is_empty() {
        name.to_owned()
    } else {
        format!("{group}/{name}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if mean > Duration::ZERO => {
            let per_sec = b as f64 / mean.as_secs_f64();
            format!("  {:.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) if mean > Duration::ZERO => {
            format!("  {:.0} elem/s", e as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{qualified:<50} time: {:>12}{rate}", human(mean));
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.mean, self.throughput);
        self.criterion
            .results
            .push((format!("{}/{id}", self.name), bencher.mean));
        self
    }

    /// Ends the group (no-op; output is incremental).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// `(qualified name, mean)` for every benchmark run.
    pub results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report("", &id.to_string(), bencher.mean, None);
        self.results.push((id.to_string(), bencher.mean));
        self
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export mirroring criterion's `black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("KQ_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.results.len(), 1);
    }
}
