//! Minimal API-compatible stand-in for `parking_lot`, backed by
//! `std::sync`. Locks do not poison: a panic while holding the lock simply
//! releases it, matching parking_lot's observable behaviour.

use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s non-poisoning `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared read access, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s non-poisoning `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, ignoring poison.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(*m.lock(), "ab");
    }
}
