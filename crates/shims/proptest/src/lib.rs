//! Minimal API-compatible stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, and `boxed`;
//! * strategies for numeric ranges, tuples, [`Just`], `prop_oneof!`,
//!   `collection::vec`, and `&str` regex-lite patterns of the form
//!   `"[class]{m,n}"`;
//! * the [`proptest!`] macro plus `prop_assert!`, `prop_assert_eq!`,
//!   and `prop_assume!`.
//!
//! Shrinking is not implemented: a failing case panics with the generated
//! inputs in the message (the tests embed them via format strings), which
//! is enough to reproduce deterministically — generation is seeded per
//! test from a fixed constant, so failures replay exactly.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The glob import used by the tests: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Number of cases per property, overridable with `PROPTEST_CASES`.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}
