//! The tiny test runner behind the [`proptest!`](crate::proptest) macro.

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert!`-style failure; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A skip verdict.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// A failure verdict.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the default fixed seed.
    pub fn new() -> TestRng {
        TestRng::with_seed(0x5EED_CAFE_F00D_D1CE)
    }

    /// A generator with an explicit seed.
    pub fn with_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound = 0` returns 0).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

impl Default for TestRng {
    fn default() -> Self {
        TestRng::new()
    }
}

/// `prop_assume!`: skip the case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!`: fail the case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!`: fail the case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// `prop_assert_ne!`: fail the case when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`crate::cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::new();
                let cases = $crate::cases();
                let mut ran = 0usize;
                let mut attempts = 0usize;
                while ran < cases && attempts < cases * 16 {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let verdict: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } Ok(()) })();
                    match verdict {
                        Ok(()) => ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed after {} cases: {}",
                                   stringify!($name), ran, msg);
                        }
                    }
                }
            }
        )+
    };
}
