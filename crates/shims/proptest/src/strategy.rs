//! Value-generation strategies (the `proptest::strategy` subset).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no shrinking: `sample` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps each generated value to a *strategy* and samples from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive values: `f` receives a strategy for the current
    /// level and returns the next level; levels are stacked `depth` times
    /// with a coin flip between recursing and bottoming out at the leaf.
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = f(level).boxed();
            let base = leaf.clone();
            level = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.next_u64() & 1 == 0 {
                    base.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            });
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng: &mut TestRng| inner.sample(rng))
    }
}

/// Strategies behind shared references sample like their referent.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: self.sampler.clone(),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy {
            sampler: Rc::new(f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between equally typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

macro_rules! impl_numeric_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_numeric_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `&str` regex-lite patterns: a sequence of atoms, each an optional
/// `{m,n}`-repeated character class (`[a-z0-9 ,]`, with `x-y` ranges and
/// `\n`/`\t`/`\\` escapes), a `.` (printable ASCII), or a literal
/// character. This covers every pattern the workspace's tests use;
/// anything else panics loudly.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported test pattern {self:?} (shim supports class/dot/literal atoms with {{m,n}})"));
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.lo + rng.below(atom.hi - atom.lo + 1);
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    lo: usize,
    hi: usize,
}

fn parse_class(class: &[char]) -> Option<Vec<char>> {
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = match class[i] {
            '\\' => {
                i += 1;
                match class.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => *other,
                }
            }
            other => other,
        };
        // `a-z` range (a trailing `-` is a literal).
        if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
            let end = class[i + 2];
            for v in c as u32..=end as u32 {
                chars.push(char::from_u32(v)?);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    if chars.is_empty() {
        None
    } else {
        Some(chars)
    }
}

fn parse_reps(chars: &[char], i: &mut usize) -> Option<(usize, usize)> {
    if chars.get(*i) != Some(&'{') {
        return Some((1, 1));
    }
    let close = chars[*i..].iter().position(|&c| c == '}')? + *i;
    let body: String = chars[*i + 1..close].iter().collect();
    *i = close + 1;
    match body.split_once(',') {
        Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
        None => {
            let n: usize = body.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

fn parse_pattern(pattern: &str) -> Option<Vec<Atom>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..].iter().position(|&c| c == ']')? + i;
                let set = parse_class(&chars[i + 1..close])?;
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '\\' => {
                i += 1;
                let c = match chars.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => *other,
                };
                i += 1;
                vec![c]
            }
            other => {
                i += 1;
                vec![other]
            }
        };
        let (lo, hi) = parse_reps(&chars, &mut i)?;
        if lo > hi {
            return None;
        }
        atoms.push(Atom { chars: set, lo, hi });
    }
    Some(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parsing() {
        let atoms = parse_pattern("[a-c,\\n]{0,4}").unwrap();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].chars, vec!['a', 'b', 'c', ',', '\n']);
        assert_eq!((atoms[0].lo, atoms[0].hi), (0, 4));
        let atoms = parse_pattern("[ -~]{1,2}").unwrap();
        assert_eq!(atoms[0].chars.len(), 95); // printable ASCII
                                              // Class + literal suffix, and a bare dot atom.
        let atoms = parse_pattern("[a-z]{1,3}\n").unwrap();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[1].chars, vec!['\n']);
        let atoms = parse_pattern(".{0,4}").unwrap();
        assert!(atoms[0].chars.contains(&'x'));
        // Plain literals are a sequence of single-char atoms.
        let atoms = parse_pattern("ab").unwrap();
        assert_eq!(atoms.len(), 2);
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::new();
        for _ in 0..200 {
            let s = "[a-z]{2,5}".sample(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn union_and_map() {
        let mut rng = TestRng::new();
        let s = prop_oneof![Just(1u8), Just(2u8)].prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(c) => 1 + depth(c),
            }
        }
        let strat = Just(Tree::Leaf)
            .prop_recursive(3, 8, 1, |inner| inner.prop_map(|c| Tree::Node(Box::new(c))));
        let mut rng = TestRng::new();
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut rng)) <= 3);
        }
    }
}
