//! Minimal API-compatible stand-in for the `libc` crate.
//!
//! Declares exactly the memory-mapping surface `kq-io` and the
//! `kq-stream` mmap backing use: `mmap`/`munmap`/`madvise` and their
//! constants, with the type aliases matching the real crate so a swap to
//! crates.io `libc` is a drop-in. The symbols resolve against the system
//! C library every Rust binary already links.
//!
//! Constant values are the Linux ABI ones (this workspace's only build
//! and CI target); the whole module is `cfg(unix)` so non-unix builds of
//! dependent crates fall back to their heap paths at compile time.

#![allow(non_camel_case_types)]
#![warn(missing_docs)]

/// C `void` (opaque); pointers to it are untyped memory addresses.
pub use std::ffi::c_void;

/// C `int`.
pub type c_int = i32;
/// C `size_t`.
pub type size_t = usize;
/// C `off_t` (file offset; 64-bit on every supported target).
pub type off_t = i64;

/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Private copy-on-write mapping (we never write, so never copied).
pub const MAP_PRIVATE: c_int = 2;
/// `mmap` error sentinel: `(void *) -1`.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// `madvise` hint: expect random page references (read-ahead is disabled,
/// so a fault maps only the touched page instead of a window around it).
pub const MADV_RANDOM: c_int = 1;
/// `madvise` hint: expect sequential page references (read-ahead grows,
/// pages behind the scan become eviction candidates sooner).
pub const MADV_SEQUENTIAL: c_int = 2;
/// `madvise` hint: the range is no longer needed. For a read-only
/// file-backed mapping this drops the resident pages; a later touch
/// faults them back in from the file.
pub const MADV_DONTNEED: c_int = 4;

/// `flock` operation: shared (reader) lock.
pub const LOCK_SH: c_int = 1;
/// `flock` operation: exclusive (writer) lock.
pub const LOCK_EX: c_int = 2;
/// `flock` operation: release the lock.
pub const LOCK_UN: c_int = 8;

#[cfg(unix)]
extern "C" {
    /// Maps `len` bytes of the object behind `fd` at `offset` into the
    /// address space. Returns [`MAP_FAILED`] on error (errno is set).
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;

    /// Unmaps `[addr, addr+len)`. Returns 0 on success, -1 on error.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;

    /// Advises the kernel about expected access to `[addr, addr+len)`.
    /// Returns 0 on success, -1 on error (advice is best-effort; callers
    /// here ignore failures).
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;

    /// Applies or removes an advisory lock on the open file behind `fd`
    /// ([`LOCK_SH`]/[`LOCK_EX`]/[`LOCK_UN`]; blocks until granted).
    /// Advisory: only other `flock` callers observe it. The lock rides
    /// the *open file description*, so closing the fd releases it.
    /// Returns 0 on success, -1 on error.
    pub fn flock(fd: c_int, operation: c_int) -> c_int;
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn map_and_unmap_a_real_file() {
        // Round-trip the raw surface against a real file so a wrong
        // constant or signature fails here, not inside kq-stream's Drop.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("libc-shim-test-{}", std::process::id()));
        std::fs::write(&path, b"hello mapped world\n").unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let fd = std::os::unix::io::AsRawFd::as_raw_fd(&file);
        let len = 19usize;
        unsafe {
            let ptr = mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, fd, 0);
            assert_ne!(ptr, MAP_FAILED, "mmap failed");
            assert_eq!(madvise(ptr, len, MADV_SEQUENTIAL), 0);
            let bytes = std::slice::from_raw_parts(ptr as *const u8, len);
            assert_eq!(bytes, b"hello mapped world\n");
            assert_eq!(munmap(ptr, len), 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flock_round_trip_and_exclusion() {
        use std::os::unix::io::AsRawFd;
        let path = std::env::temp_dir().join(format!("libc-shim-flock-{}", std::process::id()));
        std::fs::write(&path, b"lock me\n").unwrap();
        let a = std::fs::File::open(&path).unwrap();
        let b = std::fs::File::open(&path).unwrap();
        unsafe {
            assert_eq!(flock(a.as_raw_fd(), LOCK_EX), 0);
            // A second shared lock on another descriptor must block, so
            // prove exclusion from a thread that only succeeds after the
            // unlock below.
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            let fd_b = b.as_raw_fd();
            let t = std::thread::spawn(move || {
                assert_eq!(flock(fd_b, LOCK_SH), 0);
                tx.send(()).unwrap();
                flock(fd_b, LOCK_UN);
            });
            // Blocked while we hold the exclusive lock.
            assert!(rx
                .recv_timeout(std::time::Duration::from_millis(100))
                .is_err());
            assert_eq!(flock(a.as_raw_fd(), LOCK_UN), 0);
            rx.recv_timeout(std::time::Duration::from_secs(10))
                .expect("shared lock must be granted after unlock");
            t.join().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
