//! Temp-file spill runs: how a bounded-memory fold writes a sorted run to
//! disk and gets it back as a demand-paged [`Bytes`].
//!
//! A [`RunWriter`] is a buffered temp file under a caller-chosen directory
//! (`kq-spill-<pid>-<seq>.run`; the sequence number is process-global, so
//! concurrent folds sharing one directory never collide). `finish()`
//! flushes, memory-maps the file through the same `PROT_READ/MAP_PRIVATE`
//! path the ingest door uses (with `MADV_RANDOM` rather than the ingest
//! door's `MADV_SEQUENTIAL`: the k-way merge interleaves fine-grained
//! reads across many runs, and read-ahead would fault large windows of
//! every run resident at once), and — crucially — **unlinks
//! the file immediately**. On unix the mapping keeps the inode alive, so
//! the bytes stay readable (and evictable: consumed pages can be dropped
//! with `madvise` and refault from disk), while the directory entry is
//! already gone. Cleanup is therefore automatic on *every* exit path —
//! success, error, panic, early-exit cancellation — with no tracking list:
//! the kernel reclaims the blocks when the last slice of the map drops. A
//! writer dropped before `finish()` (the abandoned-run path) unlinks its
//! file in `Drop`. The only way to leak a run file is `SIGKILL` between
//! `create` and either exit, which no userspace policy can defend against;
//! stale leftovers from a killed process are identifiable by the pid in
//! the name.

use crate::Bytes;
use std::fs::{self, File};
use std::io::{self, BufWriter, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global run counter: two folds spilling into the same directory
/// (one per barrier stage under the dataflow scheduler) must never race to
/// the same name, so uniqueness cannot be per-writer state.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A sorted run being spilled to a temp file. Write line-aligned text with
/// [`RunWriter::write`], then call [`RunWriter::finish`] to get the run
/// back as a mapped (or, on mapping failure, heap) [`Bytes`]; dropping an
/// unfinished writer deletes the file.
#[derive(Debug)]
pub struct RunWriter {
    /// `Some` until `finish()` takes it; `Drop` keys the abandoned-run
    /// unlink off this.
    inner: Option<BufWriter<File>>,
    path: PathBuf,
    written: usize,
}

impl RunWriter {
    /// Opens a fresh uniquely-named run file under `dir` (created if
    /// missing).
    pub fn create(dir: &Path) -> io::Result<RunWriter> {
        fs::create_dir_all(dir)?;
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("kq-spill-{}-{seq}.run", std::process::id()));
        // Read access is required too: `finish()` maps (or re-reads) the
        // same fd. create_new guards against clobbering a stale leftover.
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(RunWriter {
            inner: Some(BufWriter::new(file)),
            path,
            written: 0,
        })
    }

    /// Appends a text fragment to the run.
    pub fn write(&mut self, fragment: &str) -> io::Result<()> {
        self.inner
            .as_mut()
            .expect("write after finish")
            .write_all(fragment.as_bytes())?;
        self.written += fragment.len();
        Ok(())
    }

    /// Bytes written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes, maps the run back as demand-paged [`Bytes`] (heap read if
    /// mapping is unavailable), and unlinks the file — see the module docs
    /// for why unlink-after-map makes cleanup automatic.
    pub fn finish(mut self) -> io::Result<Bytes> {
        let mut writer = self.inner.take().expect("finish called twice");
        writer.flush()?;
        let mut file = writer.into_inner().map_err(|e| e.into_error())?;
        let _ = fs::remove_file(&self.path);
        let bytes = if self.written == 0 {
            Bytes::new()
        } else {
            #[cfg(unix)]
            let mapped = crate::map_file(&file, self.written, crate::MapAdvice::Random);
            #[cfg(not(unix))]
            let mapped: Option<Bytes> = None;
            match mapped {
                Some(b) => b,
                None => {
                    file.seek(io::SeekFrom::Start(0))?;
                    crate::heap_read(file, self.written)?
                }
            }
        };
        // The writer only ever accepted `&str`, so this validation cannot
        // fail; it marks the text fast path (and, for mapped runs, walks
        // the view window-by-window with trailing release, so even the
        // validation pass stays out-of-core).
        bytes
            .into_text()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "spilled run is not UTF-8"))
    }
}

impl Drop for RunWriter {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            // Abandoned before finish (error or cancellation): the run is
            // garbage — close the fd and remove the file.
            let _ = fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("kq-spill-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn entries(&self) -> usize {
            fs::read_dir(&self.0).map(|d| d.count()).unwrap_or(0)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn roundtrip_and_unlink_on_finish() {
        let dir = TempDir::new("roundtrip");
        let mut w = RunWriter::create(&dir.0).unwrap();
        let payload = "alpha\nbeta\n".repeat(500);
        w.write(&payload[..payload.len() / 2]).unwrap();
        w.write(&payload[payload.len() / 2..]).unwrap();
        assert_eq!(w.written(), payload.len());
        assert_eq!(dir.entries(), 1, "run file exists while writing");
        let bytes = w.finish().unwrap();
        assert_eq!(dir.entries(), 0, "finish must unlink immediately");
        // The unlinked inode stays readable through the mapping.
        assert_eq!(bytes.as_bytes(), payload.as_bytes());
        assert!(bytes.to_str().is_ok(), "runs come back text-marked");
    }

    #[test]
    fn dropped_writer_removes_its_file() {
        let dir = TempDir::new("abandon");
        let mut w = RunWriter::create(&dir.0).unwrap();
        w.write("half a run\n").unwrap();
        assert_eq!(dir.entries(), 1);
        drop(w);
        assert_eq!(dir.entries(), 0, "abandoned runs must not leak");
    }

    #[test]
    fn empty_run_finishes_empty_and_clean() {
        let dir = TempDir::new("empty");
        let w = RunWriter::create(&dir.0).unwrap();
        let bytes = w.finish().unwrap();
        assert!(bytes.is_empty());
        assert_eq!(dir.entries(), 0);
    }

    #[test]
    fn concurrent_writers_in_one_directory_never_collide() {
        let dir = TempDir::new("concurrent");
        let writers: Vec<RunWriter> = (0..8).map(|_| RunWriter::create(&dir.0).unwrap()).collect();
        assert_eq!(dir.entries(), 8, "every writer got its own file");
        for (i, mut w) in writers.into_iter().enumerate() {
            w.write(&format!("run {i}\n")).unwrap();
            assert_eq!(
                w.finish().unwrap().as_bytes(),
                format!("run {i}\n").as_bytes()
            );
        }
        assert_eq!(dir.entries(), 0);
    }
}
