//! Out-of-core byte sources: how files enter the zero-copy data plane.
//!
//! Every executor in this workspace moves payloads as [`kq_stream::Bytes`]
//! — refcounted slices whose splitters operate on raw byte ranges. Until
//! this crate, the only way *into* that plane was an O(file) heap read
//! (`std::fs::read`), which bounds the working set by RAM and pays a full
//! copy before the first chunk moves. [`read_path`] instead opens an input
//! as either:
//!
//! * a **heap buffer** — one `read` into an owned `Vec`, exactly the old
//!   behavior; right for small files, and the only choice on non-unix
//!   targets or when `mmap` fails; or
//! * a **memory-mapped region** — `mmap(PROT_READ, MAP_PRIVATE)` of the
//!   whole file plus `madvise(MADV_SEQUENTIAL)`, wrapped as a
//!   [`kq_stream::MmapRegion`]-backed `Bytes`. Ingest becomes O(1) in
//!   file size: no byte is copied or touched until a splitter or command
//!   actually reads it, and the pages are demand-paged and evictable, so
//!   multi-GB corpus files flow through the existing line-aligned
//!   splitters without ever being resident all at once.
//!
//! The choice is policy, not plumbing: [`MmapMode::Auto`] maps files at or
//! above [`IngestOptions::mmap_threshold`] (default
//! [`DEFAULT_MMAP_THRESHOLD`]) and heap-reads the rest — tiny inputs are
//! cheaper to read than to map — while `On`/`Off` force one side for
//! benchmarks and differential tests.
//!
//! # Sharp edges
//!
//! * **Length snapshot / truncation (`SIGBUS`).** The mapping covers the
//!   file's length as observed at open time. A file that *grows* later is
//!   simply seen at its snapshot length; a file **truncated** under a live
//!   map raises `SIGBUS` on the first touch past the new end. This is
//!   inherent to `mmap` and documented rather than defended against —
//!   corpus inputs are not mutated mid-run. Heap ingest is immune.
//! * **Empty files** cannot be mapped (`mmap` with length 0 is `EINVAL`);
//!   they ingest as empty heap `Bytes` even under [`MmapMode::On`].
//! * **UTF-8.** Mapped bytes are not assumed to be text. [`read_path_text`]
//!   validates the whole view once (the same hard-error policy as piped
//!   foreign bytes in `kq-coreutils`) and marks the result, so later
//!   per-stage `to_str` calls are O(1); plain [`read_path`] defers the
//!   check to the consumer.
//! * **Unmap lifecycle.** The map lives as long as any `Bytes` slice of
//!   it; the last drop unmaps exactly once (see `kq_stream::bytes`).

#![warn(missing_docs)]

mod lock;
mod spill;

pub use lock::FileLock;
pub use spill::RunWriter;

use kq_stream::Bytes;
use std::fs::File;
use std::io;
use std::path::Path;

/// When to memory-map an input instead of heap-reading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MmapMode {
    /// Map files of at least [`IngestOptions::mmap_threshold`] bytes,
    /// heap-read smaller ones (the default).
    #[default]
    Auto,
    /// Always map (non-empty files; empty ones fall back to heap).
    On,
    /// Never map.
    Off,
}

impl std::str::FromStr for MmapMode {
    type Err = String;

    fn from_str(s: &str) -> Result<MmapMode, String> {
        match s {
            "auto" => Ok(MmapMode::Auto),
            "on" => Ok(MmapMode::On),
            "off" => Ok(MmapMode::Off),
            other => Err(format!("expected 'auto', 'on', or 'off', got {other:?}")),
        }
    }
}

impl std::fmt::Display for MmapMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MmapMode::Auto => "auto",
            MmapMode::On => "on",
            MmapMode::Off => "off",
        })
    }
}

/// [`MmapMode::Auto`]'s default size floor: files below 1 MiB are cheaper
/// to heap-read than to map (page-table setup plus a syscall beat a single
/// small `read` only once the copy is substantial).
pub const DEFAULT_MMAP_THRESHOLD: usize = 1 << 20;

/// Ingest policy for [`read_path`]/[`read_path_text`].
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Heap versus map decision rule.
    pub mode: MmapMode,
    /// Minimum file size [`MmapMode::Auto`] maps, in bytes.
    pub mmap_threshold: usize,
}

impl Default for IngestOptions {
    fn default() -> IngestOptions {
        IngestOptions {
            mode: MmapMode::Auto,
            mmap_threshold: DEFAULT_MMAP_THRESHOLD,
        }
    }
}

impl IngestOptions {
    /// Options with the given mode and the default threshold.
    pub fn with_mode(mode: MmapMode) -> IngestOptions {
        IngestOptions {
            mode,
            ..IngestOptions::default()
        }
    }
}

/// Opens `path` as a [`Bytes`] according to the ingest policy: a mapped
/// region (O(1), demand-paged) or a heap buffer (one full read).
///
/// Mapping failures (exotic filesystems, resource limits) fall back to the
/// heap read rather than failing the run — the map is an optimization, the
/// bytes are the contract.
pub fn read_path(path: impl AsRef<Path>, opts: &IngestOptions) -> io::Result<Bytes> {
    let path = path.as_ref();
    let file = File::open(path)?;
    // Length snapshot: the mapping (or read) covers exactly the size seen
    // here — see the module docs for the truncation caveat.
    let len = file.metadata()?.len();
    let len = usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space"))?;
    let want_map = len > 0
        && match opts.mode {
            MmapMode::On => true,
            MmapMode::Off => false,
            MmapMode::Auto => len >= opts.mmap_threshold,
        };
    if want_map {
        #[cfg(unix)]
        if let Some(mapped) = map_file(&file, len, MapAdvice::Sequential) {
            kq_trace::span("ingest", "read")
                .label("map")
                .v(len as f64)
                .done();
            return Ok(mapped);
        }
    }
    let span = kq_trace::span("ingest", "read").label("heap").v(len as f64);
    let out = heap_read(file, len);
    span.done();
    out
}

/// [`read_path`] plus a single whole-file UTF-8 validation
/// ([`Bytes::into_text`]): foreign bytes are a hard `InvalidData` error —
/// the same policy piped input gets in `kq-coreutils` — and clean text is
/// marked so later `to_str` calls across the pipeline are O(1).
pub fn read_path_text(path: impl AsRef<Path>, opts: &IngestOptions) -> io::Result<Bytes> {
    read_path(path, opts)?.into_text().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "input is not valid UTF-8".to_owned(),
        )
    })
}

/// The heap side of the policy: one `read` into an owned buffer sized by
/// the length snapshot.
pub(crate) fn heap_read(mut file: File, len: usize) -> io::Result<Bytes> {
    use std::io::Read;
    let mut buf = Vec::with_capacity(len);
    file.read_to_end(&mut buf)?;
    Ok(Bytes::from(buf))
}

/// Access-pattern hint passed to [`map_file`], forwarded to `madvise`.
#[cfg(unix)]
#[derive(Clone, Copy)]
pub(crate) enum MapAdvice {
    /// Front-to-back scan: ask for aggressive read-ahead. Right for ingest
    /// maps that one splitter walks once.
    Sequential,
    /// Fine-grained interleaved access: disable read-ahead so a fault maps
    /// only the touched page. Right for spilled runs — a k-way merge reads
    /// a few lines at a time from each of many runs, and sequential
    /// read-ahead would fault large windows of *every* run resident at
    /// once, defeating the memory bound the spill exists to provide (the
    /// run bytes are fresh in the page cache anyway, so read-ahead has no
    /// latency to hide).
    Random,
}

/// Maps the whole file read-only with the given access-pattern hint.
/// `None` on any mapping failure (the caller falls back to a heap read).
#[cfg(unix)]
pub(crate) fn map_file(file: &File, len: usize, advice: MapAdvice) -> Option<Bytes> {
    use std::os::unix::io::AsRawFd;
    // SAFETY: mapping a readable fd PROT_READ/MAP_PRIVATE is always
    // memory-safe; the failure sentinel is checked before use.
    let ptr = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            len,
            libc::PROT_READ,
            libc::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == libc::MAP_FAILED {
        return None;
    }
    // Best-effort kernel hint; see `MapAdvice` for which callers want
    // which pattern.
    let hint = match advice {
        MapAdvice::Sequential => libc::MADV_SEQUENTIAL,
        MapAdvice::Random => libc::MADV_RANDOM,
    };
    unsafe {
        libc::madvise(ptr, len, hint);
    }
    // SAFETY: `ptr` is a fresh successful mapping of exactly `len > 0`
    // bytes and nothing else will unmap it; the region's Drop does.
    let region = unsafe { kq_stream::MmapRegion::from_raw(ptr as *mut u8, len) };
    Some(Bytes::from_mmap_region(region))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempFile(PathBuf);

    impl TempFile {
        fn new(name: &str, content: &[u8]) -> TempFile {
            let path = std::env::temp_dir().join(format!("kq-io-{}-{name}", std::process::id()));
            std::fs::write(&path, content).unwrap();
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    fn opts(mode: MmapMode) -> IngestOptions {
        IngestOptions::with_mode(mode)
    }

    #[test]
    fn all_modes_read_identical_bytes() {
        let content = "alpha\nbeta\ngamma\n".repeat(100);
        let f = TempFile::new("modes", content.as_bytes());
        for mode in [MmapMode::Auto, MmapMode::On, MmapMode::Off] {
            let got = read_path(&f.0, &opts(mode)).unwrap();
            assert_eq!(got.as_bytes(), content.as_bytes(), "mode {mode}");
        }
    }

    #[cfg(unix)]
    #[test]
    fn mode_on_maps_and_mode_off_does_not() {
        let f = TempFile::new("backing", b"one\ntwo\n");
        assert!(read_path(&f.0, &opts(MmapMode::On))
            .unwrap()
            .is_mmap_backed());
        assert!(!read_path(&f.0, &opts(MmapMode::Off))
            .unwrap()
            .is_mmap_backed());
    }

    #[cfg(unix)]
    #[test]
    fn auto_threshold_picks_the_backing() {
        let small = TempFile::new("small", b"tiny\n");
        let big = TempFile::new("big", "line\n".repeat(1000).as_bytes());
        let policy = IngestOptions {
            mode: MmapMode::Auto,
            mmap_threshold: 1024,
        };
        assert!(!read_path(&small.0, &policy).unwrap().is_mmap_backed());
        assert!(read_path(&big.0, &policy).unwrap().is_mmap_backed());
    }

    #[test]
    fn empty_file_falls_back_to_heap_even_forced() {
        let f = TempFile::new("empty", b"");
        let got = read_path(&f.0, &opts(MmapMode::On)).unwrap();
        assert!(got.is_empty());
        assert!(!got.is_mmap_backed(), "zero-length files cannot be mapped");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(read_path("/no/such/kq-io-file", &IngestOptions::default()).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn slices_of_a_map_outlive_the_original_handle() {
        // The unmap must wait for the *last* reference: drop the whole-file
        // Bytes first, then read through a surviving slice.
        let content = "first\nsecond\nthird\n";
        let f = TempFile::new("lifecycle", content.as_bytes());
        let whole = read_path(&f.0, &opts(MmapMode::On)).unwrap();
        assert!(whole.is_mmap_backed());
        let pieces = whole.split_stream(2);
        assert!(pieces.iter().all(|p| p.shares_buffer(&whole)));
        drop(whole);
        let rebuilt: Vec<u8> = pieces
            .iter()
            .flat_map(|p| p.as_bytes().iter().copied())
            .collect();
        assert_eq!(rebuilt, content.as_bytes());
    }

    #[test]
    fn text_validation_is_identical_across_backings() {
        let foreign = TempFile::new("foreign", &[0xff, 0xfe, b'x', b'\n']);
        let clean = TempFile::new("clean", "ok\n".repeat(10).as_bytes());
        for mode in [MmapMode::On, MmapMode::Off] {
            let err = read_path_text(&foreign.0, &opts(mode)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "mode {mode}");
            assert!(err.to_string().contains("not valid UTF-8"));
            let ok = read_path_text(&clean.0, &opts(mode)).unwrap();
            assert_eq!(ok.as_bytes(), "ok\n".repeat(10).as_bytes());
            // The one-time validation marks the text fast path.
            assert!(ok.to_str().is_ok());
        }
    }

    #[test]
    fn mmap_mode_parses_and_rejects() {
        assert_eq!("auto".parse::<MmapMode>().unwrap(), MmapMode::Auto);
        assert_eq!("on".parse::<MmapMode>().unwrap(), MmapMode::On);
        assert_eq!("off".parse::<MmapMode>().unwrap(), MmapMode::Off);
        let err = "yes".parse::<MmapMode>().unwrap_err();
        assert!(err.contains("'auto', 'on', or 'off'"), "{err}");
    }
}
