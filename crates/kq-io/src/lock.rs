//! Advisory file locking — the workspace's one safe wrapper over
//! `flock(2)`.
//!
//! Every crate outside the I/O boundary denies `unsafe` code
//! (`tests/unsafe_inventory.rs` pins the set), so callers that need an
//! inter-process lock — the combiner cache's read-merge-write save — go
//! through this wrapper instead of calling `libc` themselves.

use std::fs::File;
use std::path::Path;

/// An advisory lock on a path, held until drop.
///
/// Locking is *best-effort*: if the lock file cannot be opened or the
/// `flock` call fails, the guard is returned unlocked ([`FileLock::held`]
/// reports which) and the caller proceeds — the combiner cache prefers a
/// rare lost-update race over refusing to save. On non-unix targets every
/// acquisition is a held no-op.
#[derive(Debug)]
pub struct FileLock {
    /// The open lock file; dropping it releases the `flock`.
    file: Option<File>,
}

impl FileLock {
    /// Blocks until the lock on `path` is granted — shared when
    /// `exclusive` is false (concurrent readers), exclusive otherwise
    /// (a writer's critical section). The lock file is created if absent
    /// and never truncated.
    #[cfg_attr(not(unix), allow(unused_variables))]
    pub fn acquire(path: &Path, exclusive: bool) -> FileLock {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = File::options().create(true).append(true).open(path).ok();
            let file = file.filter(|f| {
                let op = if exclusive {
                    libc::LOCK_EX
                } else {
                    libc::LOCK_SH
                };
                // SAFETY: a plain syscall on an fd we own.
                #[allow(unsafe_code)]
                unsafe {
                    libc::flock(f.as_raw_fd(), op) == 0
                }
            });
            FileLock { file }
        }
        #[cfg(not(unix))]
        FileLock { file: None }
    }

    /// Whether the lock was actually granted (unix) — `false` means the
    /// caller is proceeding unlocked.
    pub fn held(&self) -> bool {
        cfg!(not(unix)) || self.file.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_and_exclusive_locks_acquire_and_release() {
        let path = std::env::temp_dir().join(format!("kq-io-lock-{}.lock", std::process::id()));
        {
            let shared_a = FileLock::acquire(&path, false);
            let shared_b = FileLock::acquire(&path, false);
            assert!(shared_a.held() && shared_b.held());
        }
        // Both shared guards dropped: exclusive acquisition must not block.
        let exclusive = FileLock::acquire(&path, true);
        assert!(exclusive.held());
        drop(exclusive);
        std::fs::remove_file(&path).ok();
    }
}
