//! Printers for every table and figure of the paper's evaluation.
//!
//! Each printer takes the measurements produced by [`crate::measure_corpus`]
//! (or per-command synthesis reports) and emits the paper's table layout
//! with our measured values, quoting the paper's aggregates for
//! side-by-side comparison. Absolute times are milliseconds at our scaled-
//! down inputs (the paper's are seconds on 0.9–3.4 GB); the claims under
//! reproduction are the *shapes* — who parallelizes, what gets eliminated,
//! how speedups trend with `w`, which commands synthesize which combiners.

use crate::paper;
use crate::{fmt_ms, fmt_speedup, format_counts, ScriptMeasurement};
use kq_synth::{SynthesisOutcome, SynthesisReport};
use std::collections::BTreeMap;
use std::time::Duration;

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = xs.len() / 2;
    if xs.len().is_multiple_of(2) {
        (xs[mid - 1] + xs[mid]) / 2.0
    } else {
        xs[mid]
    }
}

/// Table 1: performance highlights for the two longest-running scripts of
/// each suite.
pub fn print_table1(ms: &[ScriptMeasurement]) {
    println!("Table 1 — performance highlights (paper's two longest scripts per suite)");
    println!(
        "{:<14} {:<16} {:>12} {:>5} | {:>9} {:>8} {:>8} | paper u16/T16",
        "benchmark", "script", "parallelized", "elim", "u1", "u16", "T16"
    );
    for row in paper::TABLE1 {
        let Some(m) = ms.iter().find(|m| m.suite == row.suite && m.id == row.id) else {
            continue;
        };
        let u16 = ScriptMeasurement::at(&m.unopt, 16).unwrap_or(m.u1);
        let t16 = ScriptMeasurement::at(&m.opt, 16).unwrap_or(m.u1);
        println!(
            "{:<14} {:<16} {:>12} {:>5} | {:>9} {:>8} {:>8} | {:>6.1}x / {:.1}x",
            m.suite,
            m.id,
            format!("{}/{}", m.parallelized().0, m.parallelized().1),
            m.eliminated(),
            fmt_ms(m.u1),
            fmt_speedup(m.u1, u16),
            fmt_speedup(m.u1, t16),
            row.u16_speedup,
            row.t16_speedup,
        );
    }
}

/// Table 3: parallelized / eliminated stage counts for every script.
pub fn print_table3(ms: &[ScriptMeasurement]) {
    println!("Table 3 — pipeline stages parallelized with synthesized combiners");
    println!(
        "{:<14} {:<22} {:<28} eliminated",
        "benchmark", "script", "parallelized"
    );
    let mut total_k = 0;
    let mut total_n = 0;
    let mut total_e = 0;
    for m in ms {
        let (k, n) = m.parallelized();
        total_k += k;
        total_n += n;
        total_e += m.eliminated();
        println!(
            "{:<14} {:<22} {:<28} {}",
            m.suite,
            m.id,
            format_counts(&m.per_statement),
            m.eliminated()
        );
    }
    println!(
        "Total: {total_k}/{total_n} stages parallelized ({:.1}%), {total_e} combiners eliminated ({:.1}%)",
        100.0 * total_k as f64 / total_n as f64,
        100.0 * total_e as f64 / total_k.max(1) as f64,
    );
    println!(
        "Paper: {}/{} stages (76.1%), {} eliminated (44.3%)",
        paper::aggregates::PARALLELIZED_STAGES,
        paper::aggregates::TOTAL_STAGES,
        paper::aggregates::ELIMINATED_COMBINERS,
    );
}

/// Table 4: `T_orig`, `u1`, `u16`, `T16` for every script.
pub fn print_table4(ms: &[ScriptMeasurement]) {
    println!("Table 4 — performance of all benchmark scripts (times in ms at scaled inputs)");
    println!(
        "{:<14} {:<22} {:>12} {:>10} {:>16} {:>16}",
        "benchmark", "script", "T_orig", "u1", "u16 (speedup)", "T16 (speedup)"
    );
    let mut u16_speedups = Vec::new();
    let mut t16_speedups = Vec::new();
    for m in ms {
        let u16 = ScriptMeasurement::at(&m.unopt, 16).unwrap_or(m.u1);
        let t16 = ScriptMeasurement::at(&m.opt, 16).unwrap_or(m.u1);
        u16_speedups.push(m.speedup(u16));
        t16_speedups.push(m.speedup(t16));
        println!(
            "{:<14} {:<22} {:>12} {:>10} {:>16} {:>16}",
            m.suite,
            m.id,
            format!("{} ({})", fmt_ms(m.t_orig), fmt_speedup(m.u1, m.t_orig)),
            fmt_ms(m.u1),
            format!("{} ({})", fmt_ms(u16), fmt_speedup(m.u1, u16)),
            format!("{} ({})", fmt_ms(t16), fmt_speedup(m.u1, t16)),
        );
    }
    println!(
        "Median speedups: u16 {:.1}x (paper {:.1}x), T16 {:.1}x (paper {:.1}x)",
        median(u16_speedups),
        paper::aggregates::MEDIAN_U16_SPEEDUP,
        median(t16_speedups),
        paper::aggregates::MEDIAN_T16_SPEEDUP,
    );
}

fn print_sweep(ms: &[ScriptMeasurement], optimized: bool) {
    let label = if optimized { "T" } else { "u" };
    println!(
        "{:<14} {:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark",
        "script",
        format!("{label}1"),
        format!("{label}2 (x)"),
        format!("{label}4 (x)"),
        format!("{label}8 (x)"),
        format!("{label}16 (x)"),
    );
    for m in ms {
        let sweep = if optimized { &m.opt } else { &m.unopt };
        let cells: Vec<String> = crate::WORKER_SWEEP
            .iter()
            .map(|&w| {
                let d = ScriptMeasurement::at(sweep, w).unwrap_or(m.u1);
                if w == 1 {
                    fmt_ms(d)
                } else {
                    format!("{} ({})", fmt_ms(d), fmt_speedup(m.u1, d))
                }
            })
            .collect();
        println!(
            "{:<14} {:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
            m.suite, m.id, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
}

/// Table 5: the unoptimized worker sweep.
pub fn print_table5(ms: &[ScriptMeasurement]) {
    println!("Table 5 — unoptimized pipelines at 1/2/4/8/16-way parallelism");
    print_sweep(ms, false);
}

/// Table 6: the optimized worker sweep.
pub fn print_table6(ms: &[ScriptMeasurement]) {
    println!("Table 6 — optimized pipelines (intermediate combiners eliminated)");
    print_sweep(ms, true);
}

/// Table 7: the long-running subset (the paper uses `u1 >= 3 min`; at our
/// scale the threshold is the corpus's 60th-percentile `u1` unless
/// `KQ_LONG_MS` overrides it).
pub fn print_table7(ms: &[ScriptMeasurement]) {
    let threshold = std::env::var("KQ_LONG_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or_else(|| {
            let mut u1s: Vec<Duration> = ms.iter().map(|m| m.u1).collect();
            u1s.sort();
            u1s[(u1s.len() * 6 / 10).min(u1s.len() - 1)]
        });
    println!(
        "Table 7 — long-running scripts (u1 >= {:.0?}; paper: u1 >= 3 min)",
        threshold
    );
    let long: Vec<&ScriptMeasurement> = ms.iter().filter(|m| m.u1 >= threshold).collect();
    let mut u16_speedups = Vec::new();
    let mut t16_speedups = Vec::new();
    println!(
        "{:<14} {:<22} {:>12} {:>5} {:>10} {:>12} {:>12}",
        "benchmark", "script", "parallelized", "elim", "u1", "u16 (x)", "T16 (x)"
    );
    for m in &long {
        let u16 = ScriptMeasurement::at(&m.unopt, 16).unwrap_or(m.u1);
        let t16 = ScriptMeasurement::at(&m.opt, 16).unwrap_or(m.u1);
        u16_speedups.push(m.speedup(u16));
        t16_speedups.push(m.speedup(t16));
        println!(
            "{:<14} {:<22} {:>12} {:>5} {:>10} {:>12} {:>12}",
            m.suite,
            m.id,
            format!("{}/{}", m.parallelized().0, m.parallelized().1),
            m.eliminated(),
            fmt_ms(m.u1),
            fmt_speedup(m.u1, u16),
            fmt_speedup(m.u1, t16),
        );
    }
    println!(
        "{} scripts; median u16 speedup {:.1}x (paper 8.5x), median T16 speedup {:.1}x (paper 11.3x)",
        long.len(),
        median(u16_speedups),
        median(t16_speedups),
    );
}

/// Table 8: census of synthesized plausible combiners.
pub fn print_table8(reports: &[SynthesisReport]) {
    println!("Table 8 — plausible combiners across all unique benchmark commands");
    let mut census: BTreeMap<String, usize> = BTreeMap::new();
    for report in reports {
        for cand in report.plausible() {
            *census.entry(cand.to_string()).or_default() += 1;
        }
    }
    let mut rows: Vec<(usize, String)> = census.into_iter().map(|(k, v)| (v, k)).collect();
    rows.sort_by(|a, b| b.cmp(a));
    println!("{:>5}  combiner (ours)", "count");
    for (count, combiner) in rows.iter().take(16) {
        println!("{count:>5}  {combiner}");
    }
    println!("\npaper's census (per script occurrence):");
    for (combiner, count) in paper::TABLE8 {
        println!("{count:>5}  {combiner}");
    }
}

/// Table 9: commands with no synthesized combiner.
pub fn print_table9(reports: &[SynthesisReport]) {
    println!("Table 9 — commands with no synthesized combiner");
    let mut ours: Vec<&SynthesisReport> = reports
        .iter()
        .filter(|r| matches!(r.outcome, SynthesisOutcome::NoCombiner { .. }))
        .collect();
    ours.sort_by_key(|r| r.command.clone());
    ours.dedup_by_key(|r| r.command.clone());
    for r in &ours {
        let counterexample = match &r.outcome {
            SynthesisOutcome::NoCombiner {
                counterexample: Some((x1, x2)),
            } => format!("counterexample x1={x1:?} x2={x2:?}"),
            _ => "all candidates eliminated".to_owned(),
        };
        let shown = if counterexample.len() > 72 {
            format!("{}…", &counterexample[..72])
        } else {
            counterexample
        };
        println!("  {:<28} {}", r.command, shown);
    }
    println!("\npaper's unsupported commands:");
    for (cmd, why) in paper::TABLE9 {
        println!("  {cmd:<28} {why}");
    }
}

/// Table 10: per-command synthesis results.
pub fn print_table10(reports: &[SynthesisReport]) {
    println!("Table 10 — synthesis results for unique command/flag combinations");
    println!(
        "{:<34} {:>28} {:>9} {:>5}  plausible",
        "command", "search space", "time", "#P"
    );
    let mut seen = std::collections::BTreeSet::new();
    let mut times = Vec::new();
    let mut synthesized = 0usize;
    let mut total = 0usize;
    for r in reports {
        if !seen.insert(r.command.clone()) {
            continue;
        }
        total += 1;
        times.push(r.elapsed.as_secs_f64());
        let plausible = r.plausible();
        if !plausible.is_empty() {
            synthesized += 1;
        }
        let listed: Vec<String> = plausible.iter().take(2).map(|c| c.to_string()).collect();
        let extra = if plausible.len() > 2 {
            format!(" +{}", plausible.len() - 2)
        } else {
            String::new()
        };
        println!(
            "{:<34} {:>28} {:>9} {:>5}  {}{}",
            truncate(&r.command, 34),
            r.space.to_string(),
            format!("{:.0?}", r.elapsed),
            plausible.len(),
            listed.join(", "),
            extra,
        );
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = if times.is_empty() {
        0.0
    } else {
        times[times.len() / 2]
    };
    println!(
        "\nSynthesized combiners for {synthesized} of {total} unique commands \
         (paper: {} of {}).",
        paper::aggregates::SYNTHESIZED_COMMANDS,
        paper::aggregates::UNIQUE_COMMANDS,
    );
    if let (Some(first), Some(last)) = (times.first(), times.last()) {
        println!(
            "Synthesis times {:.0}ms – {:.0}ms, median {:.0}ms \
             (paper: {:.0}s – {:.0}s, median {:.0}s — real processes vs. in-process calls).",
            first * 1e3,
            last * 1e3,
            med * 1e3,
            paper::aggregates::SYNTH_SECONDS.0,
            paper::aggregates::SYNTH_SECONDS.1,
            paper::aggregates::SYNTH_SECONDS.2,
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}
