//! Reference values transcribed from the paper, printed alongside our
//! measurements so every table shows "paper vs. reproduced" at a glance.

/// One Table 1 row (the two longest-running scripts per suite).
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    pub suite: &'static str,
    pub id: &'static str,
    /// `k/n` parallelized stages.
    pub parallelized: (usize, usize),
    /// Eliminated combiners.
    pub eliminated: usize,
    /// `u1 / u16` speedup.
    pub u16_speedup: f64,
    /// `u1 / T16` speedup.
    pub t16_speedup: f64,
}

/// Table 1 of the paper.
pub const TABLE1: [Table1Row; 8] = [
    Table1Row {
        suite: "analytics-mts",
        id: "2.sh",
        parallelized: (8, 8),
        eliminated: 3,
        u16_speedup: 9.3,
        t16_speedup: 13.5,
    },
    Table1Row {
        suite: "analytics-mts",
        id: "3.sh",
        parallelized: (8, 8),
        eliminated: 3,
        u16_speedup: 8.4,
        t16_speedup: 11.3,
    },
    Table1Row {
        suite: "oneliners",
        id: "set-diff.sh",
        parallelized: (5, 8),
        eliminated: 3,
        u16_speedup: 9.1,
        t16_speedup: 10.2,
    },
    Table1Row {
        suite: "oneliners",
        id: "wf.sh",
        parallelized: (4, 5),
        eliminated: 1,
        u16_speedup: 10.7,
        t16_speedup: 14.4,
    },
    Table1Row {
        suite: "poets",
        id: "4_3b.sh",
        parallelized: (4, 9),
        eliminated: 1,
        u16_speedup: 3.8,
        t16_speedup: 3.8,
    },
    Table1Row {
        suite: "poets",
        id: "8.2_2.sh",
        parallelized: (4, 9),
        eliminated: 1,
        u16_speedup: 5.2,
        t16_speedup: 10.2,
    },
    Table1Row {
        suite: "unix50",
        id: "21.sh",
        parallelized: (3, 3),
        eliminated: 1,
        u16_speedup: 11.4,
        t16_speedup: 14.9,
    },
    Table1Row {
        suite: "unix50",
        id: "23.sh",
        parallelized: (6, 6),
        eliminated: 4,
        u16_speedup: 8.8,
        t16_speedup: 19.8,
    },
];

/// Aggregate paper statistics quoted in §4 and the appendix tables.
pub mod aggregates {
    /// Total pipeline stages across the 70 scripts.
    pub const TOTAL_STAGES: usize = 427;
    /// Stages KumQuat parallelized.
    pub const PARALLELIZED_STAGES: usize = 325;
    /// Parallelized stages whose combiners were eliminated.
    pub const ELIMINATED_COMBINERS: usize = 144;
    /// Unique data-processing commands.
    pub const UNIQUE_COMMANDS: usize = 121;
    /// Commands with a synthesized combiner.
    pub const SYNTHESIZED_COMMANDS: usize = 113;
    /// Median unoptimized 16-way speedup (all scripts).
    pub const MEDIAN_U16_SPEEDUP: f64 = 5.3;
    /// Median optimized 16-way speedup (all scripts).
    pub const MEDIAN_T16_SPEEDUP: f64 = 7.1;
    /// Synthesis wall-clock range and median, in seconds (Table 10).
    pub const SYNTH_SECONDS: (f64, f64, f64) = (39.0, 331.0, 60.0);
}

/// Table 8 of the paper: how often each combiner (and its equivalents) was
/// synthesized as plausible across the benchmarks.
pub const TABLE8: [(&str, usize); 13] = [
    ("(concat a b)", 81),
    ("(rerun a b)", 22),
    ("(merge(*) a b) or (merge(*) b a)", 16),
    ("((back '\\n' add) a b) or ((back '\\n' add) b a)", 12),
    ("(rerun b a)", 8),
    ("((back '\\n' first) a b) or ((back '\\n' second) b a)", 2),
    ("(first a b) or (second b a)", 2),
    ("((fuse '\\n' first) a b) or ((fuse '\\n' second) b a)", 2),
    ("((back '\\n' second) a b) or ((back '\\n' first) b a)", 2),
    ("(second a b) or (first b a)", 2),
    ("((fuse '\\n' second) a b) or ((fuse '\\n' first) b a)", 2),
    (
        "((stitch2 ' ' add first) a b) or ((stitch2 ' ' add second) a b)",
        2,
    ),
    ("((stitch first) a b) or ((stitch second) a b)", 2),
];

/// Table 9 of the paper: the eight commands with no synthesized combiner.
pub const TABLE9: [(&str, &str); 8] = [
    (
        "awk '$1 == 2 {print $2, $3}'",
        "KumQuat did not generate inputs producing nonempty outputs",
    ),
    (
        "sed 1d",
        "no combiner exists (each piece drops its own first line)",
    ),
    ("sed 2d", "no combiner exists"),
    ("sed 3d", "no combiner exists"),
    ("sed 4d", "no combiner exists"),
    ("sed 5d", "no combiner exists"),
    (
        "tail +2",
        "no combiner exists (each piece drops its own prefix)",
    ),
    ("tail +3", "no combiner exists"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_two_rows_per_suite() {
        for suite in ["analytics-mts", "oneliners", "poets", "unix50"] {
            assert_eq!(TABLE1.iter().filter(|r| r.suite == suite).count(), 2);
        }
    }

    #[test]
    fn aggregate_ratios_consistent() {
        use aggregates::*;
        let ordered = [ELIMINATED_COMBINERS, PARALLELIZED_STAGES, TOTAL_STAGES];
        assert!(ordered.windows(2).all(|w| w[0] < w[1]), "{ordered:?}");
        let synth = [SYNTHESIZED_COMMANDS, UNIQUE_COMMANDS];
        assert!(synth[0] <= synth[1]);
    }
}
