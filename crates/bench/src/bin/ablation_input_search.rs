//! Ablation of Algorithm 2's gradient-guided shape search versus uniformly
//! random mutation: does following the elimination gradient converge with
//! fewer observations (the paper's §3.2 design rationale)?

use kq_coreutils::{parse_command, ExecContext};
use kq_synth::{synthesize, SynthesisConfig};

fn main() {
    let commands = [
        "wc -l",
        "uniq",
        "uniq -c",
        "sort -rn",
        "tr A-Z a-z",
        r"tr -cs A-Za-z '\n'",
        "grep -c light",
        "sed 1d",
    ];
    println!("Ablation — gradient-guided vs. random input-shape search");
    println!(
        "{:<24} {:>14} {:>14} {:>10} {:>10}  outcome match",
        "command", "obs (gradient)", "obs (random)", "t grad", "t rand"
    );
    for cmd in commands {
        let command = parse_command(cmd).unwrap();
        let ctx = ExecContext::default();
        let gradient = synthesize(&command, &ctx, &SynthesisConfig::default());
        let random_cfg = SynthesisConfig {
            use_gradient: false,
            ..SynthesisConfig::default()
        };
        let random = synthesize(&command, &ctx, &random_cfg);
        let same = gradient
            .plausible()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            == random
                .plausible()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>();
        println!(
            "{:<24} {:>14} {:>14} {:>10} {:>10}  {}",
            cmd,
            gradient.observations,
            random.observations,
            format!("{:.0?}", gradient.elapsed),
            format!("{:.0?}", random.elapsed),
            if same { "yes" } else { "DIFFERS" },
        );
    }
}
