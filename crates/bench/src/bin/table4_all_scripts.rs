//! Regenerates Table 4: T_orig, u1, u16, T16 for all 70 scripts.

fn main() {
    let scale = kq_workloads::Scale::bench();
    let (ms, _) = kq_bench::measure_corpus(&scale, &[1, 16]);
    assert!(
        ms.iter().all(|m| m.outputs_verified),
        "a parallel output diverged"
    );
    kq_bench::tables::print_table4(&ms);
}
