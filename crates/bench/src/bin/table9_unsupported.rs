//! Regenerates Table 9: corpus commands for which no combiner exists,
//! with the counterexample inputs that eliminated the last candidates.

fn main() {
    let scale = kq_workloads::Scale {
        input_bytes: 64 * 1024,
    };
    let (_, reports) = kq_bench::measure_corpus(&scale, &[2]);
    kq_bench::tables::print_table9(&reports);
}
