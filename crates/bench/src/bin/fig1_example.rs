//! Regenerates the §2 / Figure 1 walkthrough: the word-frequency pipeline,
//! its synthesized combiners, and the unoptimized/optimized speedups.

use kq_pipeline::plan::StageMode;

fn main() {
    let scale = kq_workloads::Scale::bench();
    let script = kq_workloads::corpus()
        .iter()
        .find(|s| s.id == "wf.sh")
        .expect("wf.sh in corpus");
    let ctx = kq_coreutils::ExecContext::default();
    let env = kq_workloads::setup(script, &ctx, &scale, 1);
    let parsed = kq_pipeline::parse::parse_script(script.text, &env).unwrap();
    let sample = ctx.vfs.read(&env["IN"]).unwrap();
    let mut planner = kq_pipeline::plan::Planner::new(kq_synth::SynthesisConfig::default());
    let cut = sample[..sample.len().min(48 * 1024)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(sample.len());
    let plan = planner.plan(&parsed, &ctx, &sample[..cut]);
    println!("Figure 1 pipeline: {}", script.text);
    for (stage, planned) in parsed.statements[0]
        .stages
        .iter()
        .zip(&plan.statements[0].stages)
    {
        let mode = match &planned.mode {
            StageMode::Sequential => "sequential".to_owned(),
            StageMode::Parallel {
                combiner,
                eliminated,
            } => format!(
                "parallel, combiner {}{}",
                combiner.primary(),
                if *eliminated { " (eliminated)" } else { "" }
            ),
        };
        println!("  {:24} {mode}", stage.command.display());
    }
    let mut planner = kq_pipeline::plan::Planner::new(kq_synth::SynthesisConfig::default());
    let m = kq_bench::measure_script(script, &scale, &kq_bench::WORKER_SWEEP, &mut planner);
    assert!(m.outputs_verified);
    println!("\nu1 {}", kq_bench::fmt_ms(m.u1));
    for &w in &kq_bench::WORKER_SWEEP[1..] {
        let u = kq_bench::ScriptMeasurement::at(&m.unopt, w).unwrap();
        let t = kq_bench::ScriptMeasurement::at(&m.opt, w).unwrap();
        println!(
            "  w={w:>2}  unoptimized {} ({})   optimized {} ({})",
            kq_bench::fmt_ms(u),
            kq_bench::fmt_speedup(m.u1, u),
            kq_bench::fmt_ms(t),
            kq_bench::fmt_speedup(m.u1, t),
        );
    }
    println!("(paper at w=16 on 3 GB: 10.7x unoptimized, 14.4x optimized)");
}
