//! Regenerates Table 8: the census of synthesized plausible combiners
//! across every unique command in the corpus.

fn main() {
    let scale = kq_workloads::Scale {
        input_bytes: 64 * 1024,
    };
    let (_, reports) = kq_bench::measure_corpus(&scale, &[2]);
    kq_bench::tables::print_table8(&reports);
}
