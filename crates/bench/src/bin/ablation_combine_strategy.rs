//! Ablation of the k-way combine strategies (paper §3.5): the native
//! flat/k-way path versus a balanced pairwise tree versus the naive left
//! fold, measured as wall-clock per combine over realistic piece shapes.
//!
//! The design question: the paper implements `concat`/`merge`/`rerun`
//! natively over all `k` substreams and folds everything else pairwise.
//! This bin shows why — the left fold goes quadratic in the accumulator
//! for `concat`-shaped combiners, while the tree stays within a small
//! factor of the native path.

use kq_dsl::ast::{Candidate, RecOp, StructOp};
use kq_dsl::eval::NoRunEnv;
use kq_dsl::{combine_all_with, CombineStrategy, Delim};
use kq_stream::Bytes;
use std::time::Instant;

fn text_pieces(k: usize, bytes: usize) -> Vec<Bytes> {
    let per = bytes / k;
    (0..k)
        .map(|p| {
            let mut s = String::new();
            while s.len() < per {
                s.push_str(&format!("piece {p} line {}\n", s.len()));
            }
            Bytes::from(s)
        })
        .collect()
}

fn counted_pieces(k: usize, bytes: usize) -> Vec<Bytes> {
    let per_piece_lines = (bytes / k / 14).max(2);
    (0..k)
        .map(|p| {
            let mut s = String::new();
            for i in 0..per_piece_lines {
                let word = if i == 0 && p > 0 {
                    format!("w{:06}", (p - 1) * per_piece_lines + per_piece_lines - 1)
                } else {
                    format!("w{:06}", p * per_piece_lines + i)
                };
                s.push_str(&format!("{:>7} {word}\n", (i % 9) + 1));
            }
            Bytes::from(s)
        })
        .collect()
}

fn time_one(strategy: CombineStrategy, cand: &Candidate, pieces: &[Bytes], reps: usize) -> f64 {
    // One warmup, then the best of `reps` runs (minimum is the standard
    // robust estimator for single-machine microbenchmarks).
    combine_all_with(strategy, cand, pieces, &NoRunEnv).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = combine_all_with(strategy, cand, pieces, &NoRunEnv).unwrap();
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(out.len());
        best = best.min(dt);
    }
    best
}

fn main() {
    let bytes: usize = std::env::var("KQ_SCALE_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2_048)
        * 1024;
    println!(
        "Ablation — k-way combine strategy (input ≈ {} KiB total)",
        bytes / 1024
    );
    println!(
        "{:<10} {:>4} {:>12} {:>12} {:>12}   fold/flat",
        "combiner", "k", "flat (ms)", "tree (ms)", "fold-left"
    );
    let concat = Candidate::rec(RecOp::Concat);
    let stitch2 = Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
    for k in [2usize, 4, 8, 16, 32, 64] {
        let pieces = text_pieces(k, bytes);
        let flat = time_one(CombineStrategy::Flat, &concat, &pieces, 5);
        let tree = time_one(CombineStrategy::TreeFold, &concat, &pieces, 5);
        let fold = time_one(CombineStrategy::FoldLeft, &concat, &pieces, 5);
        println!(
            "{:<10} {:>4} {:>12.3} {:>12.3} {:>12.3}   {:>6.1}x",
            "concat",
            k,
            flat,
            tree,
            fold,
            fold / flat
        );
    }
    for k in [2usize, 4, 8, 16, 32, 64] {
        let pieces = counted_pieces(k, bytes);
        let flat = time_one(CombineStrategy::Flat, &stitch2, &pieces, 5);
        let tree = time_one(CombineStrategy::TreeFold, &stitch2, &pieces, 5);
        let fold = time_one(CombineStrategy::FoldLeft, &stitch2, &pieces, 5);
        println!(
            "{:<10} {:>4} {:>12.3} {:>12.3} {:>12.3}   {:>6.1}x",
            "stitch2",
            k,
            flat,
            tree,
            fold,
            fold / flat
        );
    }
    println!();
    println!("flat == tree for stitch2 (no native k-way path); the left fold re-copies");
    println!("the accumulator per piece and scales with k, motivating §3.5's design.");
}
