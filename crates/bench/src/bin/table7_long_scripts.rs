//! Regenerates Table 7: the long-running subset (paper: u1 >= 3 minutes;
//! here: the corpus's upper u1 quantile, or KQ_LONG_MS).

fn main() {
    let scale = kq_workloads::Scale::bench();
    let (ms, _) = kq_bench::measure_corpus(&scale, &[1, 16]);
    kq_bench::tables::print_table7(&ms);
}
