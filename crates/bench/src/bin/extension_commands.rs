//! Extension appendix to Table 10: synthesis results for commands *beyond*
//! the paper's corpus, chosen to exercise DSL regions the corpus barely
//! reaches (`offset add`, the swapped-argument candidates, top-level
//! reducers) and to document new no-combiner causes (non-idempotent
//! numbering, padded multi-columns, out-of-alphabet delimiters,
//! nondeterminism).

use kq_coreutils::{parse_command, ExecContext};
use kq_synth::{synthesize, SynthesisConfig, SynthesisOutcome};

fn main() {
    let cases: &[(&str, &str)] = &[
        ("cat -n", "offset '\\t' add — the g_oa representative"),
        ("nl -b a", "same numbering as cat -n"),
        (
            "nl",
            "gutter lines break offset; not idempotent, so no rerun",
        ),
        ("tac", "swapped concat (concat b a)"),
        ("awk '{s += $1} END {print s}'", "top-level reducer"),
        ("fold -w16", "per-line map"),
        ("expand", "per-line map"),
        ("wc", "padded multi-column output"),
        ("wc -w", "single count"),
        ("grep -n light", "':' not in the delimiter alphabet"),
        ("shuf", "nondeterministic"),
    ];
    println!("Extension commands (beyond the paper's Table 10)");
    println!(
        "{:<34} {:>9} {:>9}  plausible combiners / verdict",
        "command", "space", "time"
    );
    for (cmd, why) in cases {
        let command = match parse_command(cmd) {
            Ok(c) => c,
            Err(e) => {
                println!("{cmd:<34} parse error: {e}");
                continue;
            }
        };
        let ctx = ExecContext::default();
        let report = synthesize(&command, &ctx, &SynthesisConfig::default());
        let verdict = match &report.outcome {
            SynthesisOutcome::Synthesized(c) => c
                .plausible
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            SynthesisOutcome::NoCombiner { .. } => "NONE".to_owned(),
        };
        println!(
            "{:<34} {:>9} {:>7.0}ms  {}",
            cmd,
            report.space.total(),
            report.elapsed.as_secs_f64() * 1e3,
            verdict
        );
        println!("{:<34} {:>9} {:>9}  note: {}", "", "", "", why);
    }
}
