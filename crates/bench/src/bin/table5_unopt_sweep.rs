//! Regenerates Table 5: the unoptimized 1/2/4/8/16-way sweep.

fn main() {
    let scale = kq_workloads::Scale::bench();
    let (ms, _) = kq_bench::measure_corpus(&scale, &kq_bench::WORKER_SWEEP);
    kq_bench::tables::print_table5(&ms);
}
