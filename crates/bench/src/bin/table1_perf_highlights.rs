//! Regenerates Table 1: performance highlights for the paper's two
//! longest-running scripts per suite.

fn main() {
    let scale = kq_workloads::Scale::bench();
    let wanted: Vec<(&str, &str)> = kq_bench::paper::TABLE1
        .iter()
        .map(|r| (r.suite, r.id))
        .collect();
    let mut planner = kq_pipeline::plan::Planner::new(kq_synth::SynthesisConfig::default());
    let measurements: Vec<_> = kq_workloads::corpus()
        .iter()
        .filter(|s| wanted.contains(&(s.suite.dir(), s.id)))
        .map(|s| kq_bench::measure_script(s, &scale, &kq_bench::WORKER_SWEEP, &mut planner))
        .collect();
    assert!(measurements.iter().all(|m| m.outputs_verified));
    kq_bench::tables::print_table1(&measurements);
}
