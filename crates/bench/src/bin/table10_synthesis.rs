//! Regenerates Table 10: per-command synthesis results — search-space
//! breakdown, synthesis time, and the plausible combiner set.

fn main() {
    let scale = kq_workloads::Scale {
        input_bytes: 64 * 1024,
    };
    let (_, reports) = kq_bench::measure_corpus(&scale, &[2]);
    kq_bench::tables::print_table10(&reports);
}
