//! Regenerates Table 3: parallelized/eliminated stage counts per script.
//! Planning only needs combiners, so this runs at a small input scale.

fn main() {
    let scale = kq_workloads::Scale {
        input_bytes: 64 * 1024,
    };
    let (ms, _) = kq_bench::measure_corpus(&scale, &[4]);
    kq_bench::tables::print_table3(&ms);
}
