//! Ablation: combine placement on a simulated cluster.
//!
//! KumQuat's combiners are associative over adjacent pieces, so a
//! distributed shell (POSH/PaSh-style) can either gather every piece
//! output to the coordinator and combine once (*central*) or combine
//! per node and ship only the shrunken results (*hierarchical*). This
//! bin measures real pipelines in-process, then replays the measured
//! piece/combine costs on commodity clusters of 2–8 nodes.
//!
//! Expected shape: pipelines ending in shrinking combiners (word counts,
//! uniq -c tallies) gain from hierarchical combining; pure-concat
//! pipelines tie (nothing shrinks).

use kq_coreutils::ExecContext;
use kq_pipeline::dist::{distributed_time, ClusterParams, CombinePlacement};
use kq_pipeline::exec::run_parallel_measured;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use kq_workloads::inputs::gutenberg_text;
use std::collections::HashMap;

fn main() {
    let kb = std::env::var("KQ_SCALE_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2_048);
    let input = gutenberg_text(kb * 1024, 99);

    let pipelines: &[(&str, &str)] = &[
        (
            "word-frequency (shrinking: uniq -c)",
            r"cat /in.txt | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn",
        ),
        (
            "match count (shrinking: wc -l)",
            "cat /in.txt | grep the | wc -l",
        ),
        (
            "dedup (shrinking: sort -u)",
            r"cat /in.txt | tr -cs A-Za-z '\n' | sort -u",
        ),
        ("lowercase (concat: no shrink)", "cat /in.txt | tr A-Z a-z"),
    ];

    println!(
        "Ablation — distributed combine placement ({} KiB input, 1 Gbit/s, 100 µs RTT/2)",
        kb
    );
    println!(
        "{:<38} {:>5} {:>12} {:>12} {:>8} {:>12}",
        "pipeline", "nodes", "central", "hierarchical", "speedup", "net saved"
    );

    for (name, text) in pipelines {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", &input);
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, kq_workloads::planning_sample(&input, 16_000));

        for nodes in [2usize, 4, 8] {
            let workers_per_node = 4;
            // Measure with one piece per cluster slot, elimination off so
            // every stage records its combine cost.
            let measured =
                run_parallel_measured(&script, &plan, &ctx, nodes * workers_per_node, false)
                    .expect("measured run");
            let cluster = ClusterParams::commodity(nodes, workers_per_node);
            let central = distributed_time(&measured.timings, &cluster, CombinePlacement::Central);
            let hier =
                distributed_time(&measured.timings, &cluster, CombinePlacement::Hierarchical);
            println!(
                "{:<38} {:>5} {:>12.1?} {:>12.1?} {:>7.2}x {:>9} KiB",
                name,
                nodes,
                central.wall,
                hier.wall,
                central.wall.as_secs_f64() / hier.wall.as_secs_f64().max(1e-9),
                (central.net_bytes.saturating_sub(hier.net_bytes)) / 1024,
            );
        }
    }
    println!();
    println!("hierarchical combining wins two ways: combine work parallelizes across");
    println!("nodes (word-frequency), and piece outputs that overlap across pieces");
    println!("(sort -u) shrink before they travel; concat pipelines tie on both.");
}
