//! Regenerates the Figure 5 ablation: combining after every stage versus
//! eliminating intermediate combiners, on the corpus scripts with the
//! most eliminated combiners.

fn main() {
    let scale = kq_workloads::Scale::bench();
    let mut planner = kq_pipeline::plan::Planner::new(kq_synth::SynthesisConfig::default());
    println!("Figure 5 — intermediate-combiner elimination ablation (w = 16)");
    println!(
        "{:<14} {:<22} {:>5} {:>12} {:>12} {:>9}",
        "benchmark", "script", "elim", "u16", "T16", "T16/u16"
    );
    let mut rows: Vec<_> = kq_workloads::corpus()
        .iter()
        .map(|s| kq_bench::measure_script(s, &scale, &[16], &mut planner))
        .filter(|m| m.eliminated() > 0)
        .collect();
    rows.sort_by_key(|m| std::cmp::Reverse(m.eliminated()));
    for m in rows.iter().take(12) {
        let u16 = kq_bench::ScriptMeasurement::at(&m.unopt, 16).unwrap();
        let t16 = kq_bench::ScriptMeasurement::at(&m.opt, 16).unwrap();
        println!(
            "{:<14} {:<22} {:>5} {:>12} {:>12} {:>8.2}x",
            m.suite,
            m.id,
            m.eliminated(),
            kq_bench::fmt_ms(u16),
            kq_bench::fmt_ms(t16),
            u16.as_secs_f64() / t16.as_secs_f64().max(1e-9),
        );
    }
}
