//! Shared measurement harness for the table/figure reproduction binaries.
//!
//! Every performance binary follows the paper's §4 protocol: stage-to-
//! completion execution, per-stage buffering, configurable per-stage
//! parallelism, and (our substitution for the 80-core testbed) the
//! measured-cost scheduler of `kq_pipeline::sim` to turn unbiased piece
//! timings into `w`-way virtual wall-clock.
//!
//! Input scale defaults to `Scale::bench()` (2 MiB per script, override
//! with `KQ_SCALE_KB`).

#![deny(unsafe_code)]

pub mod paper;
pub mod tables;

use kq_coreutils::ExecContext;
use kq_pipeline::exec::{run_parallel_measured, run_serial};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::sim::{optimized_time, pipelined_time, staged_time, SimParams};
use kq_synth::{SynthesisConfig, SynthesisReport};
use kq_workloads::{setup, BenchmarkScript, Scale};
use std::time::Duration;

/// The worker counts the paper sweeps (Tables 5/6).
pub const WORKER_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Performance measurements for one script.
#[derive(Debug)]
pub struct ScriptMeasurement {
    /// Suite directory name.
    pub suite: &'static str,
    /// Script id (`2.sh`).
    pub id: &'static str,
    /// Descriptive name.
    pub name: &'static str,
    /// Per-statement `(parallelized, total)` stage counts.
    pub per_statement: Vec<(usize, usize)>,
    /// Per-statement eliminated-combiner counts.
    pub eliminated_per_statement: Vec<usize>,
    /// Pipelined original-script estimate (`T_orig`).
    pub t_orig: Duration,
    /// Staged serial time (`u_1`).
    pub u1: Duration,
    /// Unoptimized times per sweep entry (`u_w`).
    pub unopt: Vec<(usize, Duration)>,
    /// Optimized times per sweep entry (`T_w`).
    pub opt: Vec<(usize, Duration)>,
    /// All parallel outputs matched the serial baseline.
    pub outputs_verified: bool,
}

impl ScriptMeasurement {
    /// Script-level `(parallelized, total)`.
    pub fn parallelized(&self) -> (usize, usize) {
        self.per_statement
            .iter()
            .fold((0, 0), |(a, b), (k, n)| (a + k, b + n))
    }

    /// Script-level eliminated count.
    pub fn eliminated(&self) -> usize {
        self.eliminated_per_statement.iter().sum()
    }

    /// Time for worker count `w` from a sweep vector.
    pub fn at(sweep: &[(usize, Duration)], w: usize) -> Option<Duration> {
        sweep.iter().find(|(sw, _)| *sw == w).map(|(_, d)| *d)
    }

    /// `u_1 / d` as a speedup factor.
    pub fn speedup(&self, d: Duration) -> f64 {
        self.u1.as_secs_f64() / d.as_secs_f64().max(1e-9)
    }
}

/// Measures one script: plans it (synthesizing combiners), runs the serial
/// baseline, and sweeps the requested worker counts in both unoptimized
/// and optimized configurations.
pub fn measure_script(
    script: &BenchmarkScript,
    scale: &Scale,
    workers: &[usize],
    planner: &mut Planner,
) -> ScriptMeasurement {
    let ctx = ExecContext::default();
    let env = setup(script, &ctx, scale, 0xBE7C);
    let parsed = parse_script(script.text, &env).expect("corpus scripts parse");
    let sample = ctx
        .vfs
        .read(env.get("IN").expect("IN set"))
        .expect("input exists");
    let sample = &sample[..sample.len().min(48 * 1024)];
    let sample = match sample.rfind('\n') {
        Some(i) => &sample[..=i],
        None => sample,
    };
    let plan = planner.plan(&parsed, &ctx, sample);

    let serial = run_serial(&parsed, &ctx).expect("serial run");
    let params1 = SimParams::with_workers(1);
    let u1 = staged_time(&serial.timings, &params1).wall;
    let t_orig = pipelined_time(&serial.timings, &params1).wall;

    let mut unopt = Vec::with_capacity(workers.len());
    let mut opt = Vec::with_capacity(workers.len());
    let mut outputs_verified = true;
    for &w in workers {
        let params = SimParams::with_workers(w);
        let u_run = run_parallel_measured(&parsed, &plan, &ctx, w, false).expect("unopt run");
        outputs_verified &= u_run.output == serial.output;
        unopt.push((w, staged_time(&u_run.timings, &params).wall));
        let t_run = run_parallel_measured(&parsed, &plan, &ctx, w, true).expect("opt run");
        outputs_verified &= t_run.output == serial.output;
        opt.push((w, optimized_time(&t_run.timings, &params).wall));
    }

    ScriptMeasurement {
        suite: script.suite.dir(),
        id: script.id,
        name: script.name,
        per_statement: plan
            .statements
            .iter()
            .map(|s| s.parallelized_counts())
            .collect(),
        eliminated_per_statement: plan
            .statements
            .iter()
            .map(|s| s.eliminated_count())
            .collect(),
        t_orig,
        u1,
        unopt,
        opt,
        outputs_verified,
    }
}

/// Measures the whole corpus with a shared synthesis cache.
pub fn measure_corpus(
    scale: &Scale,
    workers: &[usize],
) -> (Vec<ScriptMeasurement>, Vec<SynthesisReport>) {
    let mut planner = Planner::new(SynthesisConfig::default());
    let measurements = kq_workloads::corpus()
        .iter()
        .map(|script| {
            eprintln!("  measuring {}/{}", script.suite.dir(), script.id);
            measure_script(script, scale, workers, &mut planner)
        })
        .collect();
    (measurements, std::mem::take(&mut planner.reports))
}

/// Formats a `(k, n)` pair list the way Table 3 does:
/// `8/9 (3/4, 5/5)`.
pub fn format_counts(per_statement: &[(usize, usize)]) -> String {
    let (k, n) = per_statement
        .iter()
        .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));
    if per_statement.len() <= 1 {
        format!("{k}/{n}")
    } else {
        let inner: Vec<String> = per_statement
            .iter()
            .map(|(x, y)| format!("{x}/{y}"))
            .collect();
        format!("{k}/{n} ({})", inner.join(", "))
    }
}

/// Formats a duration like the tables (`41 s` in the paper; milliseconds
/// at our scale).
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

/// `x.x×` speedup formatting.
pub fn fmt_speedup(base: Duration, d: Duration) -> String {
    format!("{:.1}x", base.as_secs_f64() / d.as_secs_f64().max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_workloads::corpus;

    #[test]
    fn measure_one_script_end_to_end() {
        let script = corpus().iter().find(|s| s.id == "wf.sh").unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let m = measure_script(
            script,
            &Scale {
                input_bytes: 30_000,
            },
            &[1, 4],
            &mut planner,
        );
        assert!(m.outputs_verified);
        assert_eq!(m.parallelized(), (4, 5));
        assert_eq!(m.eliminated(), 1);
        assert_eq!(m.unopt.len(), 2);
        assert!(m.u1 > Duration::ZERO);
        assert!(m.t_orig <= m.u1);
    }

    #[test]
    fn format_counts_matches_table3_style() {
        assert_eq!(format_counts(&[(4, 5)]), "4/5");
        assert_eq!(
            format_counts(&[(0, 1), (3, 3), (2, 2)]),
            "5/6 (0/1, 3/3, 2/2)"
        );
    }
}
