//! Micro-benchmarks of combiner evaluation (Figure 6 semantics): the inner
//! loop of candidate filtering, executed millions of times per synthesis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kq_dsl::ast::{Combiner, RecOp, StructOp};
use kq_dsl::eval::{eval, NoRunEnv};
use kq_dsl::{domain, Delim};
use std::hint::black_box;

fn count_table(lines: usize, seed: u64) -> String {
    let mut out = String::new();
    for i in 0..lines {
        out.push_str(&format!(
            "{:>7} word{}\n",
            (i * seed as usize) % 900 + 1,
            i % 50
        ));
    }
    out
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("combiner_eval");
    group.sample_size(20);

    let concat = Combiner::Rec(RecOp::Concat);
    let y1 = "lorem ipsum\n".repeat(500);
    let y2 = "dolor sit\n".repeat(500);
    group.bench_function("concat_12KB", |b| {
        b.iter(|| eval(black_box(&concat), &y1, &y2, &NoRunEnv).unwrap())
    });

    let back_add = Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
    group.bench_function("back_newline_add", |b| {
        b.iter(|| eval(black_box(&back_add), "123456\n", "987654\n", &NoRunEnv).unwrap())
    });

    let stitch2 = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
    let t1 = count_table(400, 3);
    let t2 = {
        let mut t = t1.lines().last().unwrap().to_owned();
        t.push('\n');
        t.push_str(&count_table(400, 5));
        t
    };
    group.bench_function("stitch2_800_lines", |b| {
        b.iter(|| eval(black_box(&stitch2), &t1, &t2, &NoRunEnv).unwrap())
    });

    group.bench_function("stitch2_domain_check_800_lines", |b| {
        b.iter(|| {
            black_box(domain::in_domain(black_box(&stitch2), &t1))
                && black_box(domain::in_domain(black_box(&stitch2), &t2))
        })
    });

    let fuse = Combiner::Rec(RecOp::Fuse(Delim::Space, Box::new(RecOp::Add)));
    group.bench_function("fuse_space_add", |b| {
        b.iter_batched(
            || ("12 7 9 100".to_owned(), "3 3 3 3".to_owned()),
            |(a, bb)| eval(black_box(&fuse), &a, &bb, &NoRunEnv).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
