//! Adaptive versus static execution on the dataflow scheduler — the
//! closed-loop tuning layer's report card, persisted to
//! `BENCH_adaptive.json`.
//!
//! Four configurations of the same fold-heavy pipeline at w=4: the static
//! default (fixed 128 KiB chunks, fixed queue credit), auto chunk sizing
//! alone, credit rebalancing alone, and both knobs together. Alongside
//! the medians the harness records the *sort merge frontier* — the fold
//! node's task count, i.e. how many sorted runs the barrier had to k-way
//! merge. Auto chunking exists to shrink that number: the input-sized
//! base target plus online coarsening feeds the fold few large runs
//! instead of one run per 128 KiB chunk, which is asserted here (at full
//! scale) to be at most half the static frontier.
//!
//! Like the other JSON benches this reports medians of fixed-count
//! samples. Input defaults to 16 MiB (`KQ_ADAPTIVE_BENCH_KB` overrides;
//! `KQ_BENCH_QUICK=1` shrinks to 1 MiB and fewer samples for the CI
//! smoke — at that size the auto base clamps to the 128 KiB floor, so
//! the frontier assertion only runs at ≥ 8 MiB). `KQ_BENCH_OUT`
//! overrides the output path.

use kq_coreutils::ExecContext;
use kq_pipeline::exec::{run_serial, ExecutionResult};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
/// The static default the CLI uses for `--chunk-kb` (128 KiB).
const STATIC_CHUNK_BYTES: usize = 128 * 1024;
const STATIC_QUEUE_DEPTH: usize = 4;

/// A multi-segment pipeline ending in the merge barrier under test: the
/// chunk-local segment (grep|tr) rate-mismatches the splitter, giving the
/// credit controller something to observe, and the sort fold's task count
/// is the merge frontier the chunk coarsening is meant to shrink.
const SCRIPT: &str = "cat /in.txt | grep -v qqq | tr A-Z a-z | sort";

fn quick_mode() -> bool {
    std::env::var("KQ_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn input_bytes() -> usize {
    let kb = std::env::var("KQ_ADAPTIVE_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick_mode() { 1024 } else { 16 * 1024 });
    kb * 1024
}

/// Mixed-case word lines, ~32 bytes each, deterministic.
fn make_input(bytes: usize) -> String {
    let words = [
        "Apple", "dog", "CAT", "bird", "Fox", "wolf", "Pear", "yak", "Emu", "newt",
    ];
    let mut s = String::with_capacity(bytes + 64);
    let mut i = 0usize;
    while s.len() < bytes {
        s.push_str(&format!(
            "{} {} item {:04}\n",
            words[i % words.len()],
            words[(i * 7 + 3) % words.len()],
            (i * 2654435761) % 9973
        ));
        i += 1;
    }
    s
}

fn fresh_ctx(input: &str) -> ExecContext {
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", input);
    ctx
}

/// The sort fold's task count: one task per piece pushed into the merge
/// frontier (the fold is the statement's last stage).
fn sort_frontier(r: &ExecutionResult) -> u64 {
    r.timings.statements[0]
        .last()
        .and_then(|s| s.queue)
        .map(|q| q.tasks as u64)
        .expect("sort fold telemetry")
}

/// Runs `routine` `n` times and returns the median duration.
fn median_of(n: usize, mut routine: impl FnMut() -> Duration) -> (Duration, usize) {
    let mut samples: Vec<Duration> = (0..n).map(|_| routine()).collect();
    samples.sort();
    (samples[samples.len() / 2], samples.len())
}

struct BenchRow {
    name: &'static str,
    median: Duration,
    samples: usize,
    sort_frontier: u64,
    credit_shifts: u64,
}

fn main() {
    let input = make_input(input_bytes());
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(SCRIPT, &env).unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let cut = input[..input.len().min(16_384)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(input.len());
    let plan = planner.plan(&script, &fresh_ctx(&input), &input[..cut]);

    let configs: [(&'static str, ChunkSizing, QueueCredit); 4] = [
        (
            "static",
            ChunkSizing::Fixed(STATIC_CHUNK_BYTES),
            QueueCredit::Fixed(STATIC_QUEUE_DEPTH),
        ),
        (
            "auto_chunk",
            ChunkSizing::Auto,
            QueueCredit::Fixed(STATIC_QUEUE_DEPTH),
        ),
        (
            "rebalanced_credit",
            ChunkSizing::Fixed(STATIC_CHUNK_BYTES),
            QueueCredit::Auto,
        ),
        ("auto", ChunkSizing::Auto, QueueCredit::Auto),
    ];
    let opts_for = |chunk: ChunkSizing, queue: QueueCredit| DataflowOptions {
        workers: WORKERS,
        chunk,
        queue,
        fuse_streamable: true,
        spill: None,
    };

    // Correctness guard before timing anything: every configuration must
    // match serial byte-for-byte — adaptation moves chunk boundaries and
    // queue credit, never bytes.
    let serial = run_serial(&script, &fresh_ctx(&input)).unwrap();
    for (name, chunk, queue) in configs {
        let r = run_dataflow(&script, &plan, &fresh_ctx(&input), &opts_for(chunk, queue)).unwrap();
        assert_eq!(r.output, serial.output, "{name}: diverged from serial");
        let adaptive_expected =
            matches!(chunk, ChunkSizing::Auto) || matches!(queue, QueueCredit::Auto);
        assert_eq!(
            r.timings.adaptive.is_some(),
            adaptive_expected,
            "{name}: adaptive telemetry presence is wrong"
        );
    }

    let n = if quick_mode() { 3 } else { 9 };
    let mut rows: Vec<BenchRow> = Vec::new();
    for (name, chunk, queue) in configs {
        let opts = opts_for(chunk, queue);
        let mut last: Option<ExecutionResult> = None;
        let (median, samples) = median_of(n, || {
            let ctx = fresh_ctx(&input);
            let t0 = Instant::now();
            let r = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
            let dt = t0.elapsed();
            std::hint::black_box(r.output.len());
            last = Some(r);
            dt
        });
        let last = last.expect("at least one sample ran");
        let frontier = sort_frontier(&last);
        let shifts = last.timings.adaptive.map(|a| a.credit_shifts).unwrap_or(0);
        println!(
            "{:<32} median: {:>9.2} ms  (sort frontier {frontier}, {shifts} credit shift(s), {samples} samples)",
            format!("adaptive_exec/{name}"),
            median.as_secs_f64() * 1e3,
        );
        rows.push(BenchRow {
            name,
            median,
            samples,
            sort_frontier: frontier,
            credit_shifts: shifts,
        });
    }

    let frontier = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.sort_frontier)
            .unwrap()
    };
    let (static_frontier, auto_frontier) = (frontier("static"), frontier("auto"));
    // The chunk-sizing frontier is a pure function of input size and the
    // coarsening schedule — deterministic, so asserted here rather than
    // left to JSON consumers. The auto base only rises above the static
    // 128 KiB default once input/(workers×8) clears the clamp floor.
    if input.len() >= 8 * 1024 * 1024 {
        assert!(
            auto_frontier * 2 <= static_frontier,
            "auto sort frontier {auto_frontier} should be ≤ half the static {static_frontier}"
        );
    }
    println!(
        "adaptive_exec/frontier_static_over_auto    {:.2}x",
        static_frontier as f64 / auto_frontier as f64
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"input_bytes\": {},\n", input.len()));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!(
        "  \"static_chunk_bytes\": {STATIC_CHUNK_BYTES},\n"
    ));
    json.push_str(&format!(
        "  \"static_queue_depth\": {STATIC_QUEUE_DEPTH},\n"
    ));
    json.push_str("  \"benches\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"median_ms\": {:.3}, \"samples\": {}, \"sort_frontier\": {}, \"credit_shifts\": {}}}{comma}\n",
            row.name,
            row.median.as_secs_f64() * 1e3,
            row.samples,
            row.sort_frontier,
            row.credit_shifts
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"frontier_static_over_auto\": {:.3}\n",
        static_frontier as f64 / auto_frontier as f64
    ));
    json.push_str("}\n");

    let out = std::env::var("KQ_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_adaptive.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
