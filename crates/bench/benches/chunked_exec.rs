//! Static split versus chunked dynamic load balancing.
//!
//! The paper's executor assigns each worker one contiguous `1/w` slice of
//! the input. On uniform inputs that is optimal; on *skewed* inputs (here:
//! the expensive backtracking-regex lines concentrated in one region) the
//! worker holding the hot region straggles. The chunked executor hands out
//! many small chunks on demand, so the hot region spreads across workers.

use criterion::{criterion_group, criterion_main, Criterion};
use kq_coreutils::ExecContext;
use kq_pipeline::chunked::{run_chunked, ChunkedOptions};
use kq_pipeline::exec::run_parallel;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::hint::black_box;

/// A stream whose first quarter holds long lines (expensive for the
/// backtracking pattern) and the rest short ones.
fn skewed_input(lines: usize) -> String {
    let mut s = String::new();
    for i in 0..lines {
        if i < lines / 4 {
            // Long alphabetic lines: the `\(.\).*\1...` pattern backtracks.
            s.push_str(&"abcdefghij".repeat(12));
            s.push_str("xyzx\n");
        } else {
            s.push_str("ab\n");
        }
    }
    s
}

fn bench_chunked_vs_static(c: &mut Criterion) {
    let input = skewed_input(3_000);
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(r"cat /in.txt | grep '\(.\).*\1\(.\).*\2' | wc -l", &env).unwrap();
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", &input);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, &input[..input.len().min(8_192)]);

    let mut group = c.benchmark_group("executor_skewed");
    group.sample_size(10);
    for workers in [2usize, 4] {
        group.bench_function(format!("static_w{workers}"), |b| {
            b.iter(|| {
                let r = run_parallel(black_box(&script), &plan, &ctx, workers, true).unwrap();
                r.output.len()
            })
        });
        group.bench_function(format!("chunked_w{workers}"), |b| {
            let opts = ChunkedOptions {
                workers,
                chunk_bytes: 4 * 1024,
                honor_elimination: true,
            };
            b.iter(|| {
                let r = run_chunked(black_box(&script), &plan, &ctx, &opts).unwrap();
                r.output.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunked_vs_static);
criterion_main!(benches);
