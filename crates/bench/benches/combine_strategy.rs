//! Ablation: k-way combine strategies (paper §3.5, "Combining Multiple
//! Substreams").
//!
//! The paper generalizes binary combiners to `k` substreams natively for
//! `concat`/`merge`/`rerun` and "applies the combiner on two substreams
//! repeatedly until only one substream remains" for the rest. This bench
//! quantifies that design choice: the flat/native path versus a balanced
//! pairwise tree versus the naive left fold, across piece counts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kq_dsl::ast::{Candidate, RecOp, StructOp};
use kq_dsl::eval::NoRunEnv;
use kq_dsl::{combine_all_with, CombineStrategy, Delim};
use kq_stream::Bytes;
use std::hint::black_box;

/// Builds `k` uniq -c–shaped pieces totalling roughly `bytes` bytes, with
/// matching boundary keys so `stitch2` exercises its merge arm.
fn counted_pieces(k: usize, bytes: usize) -> Vec<Bytes> {
    let per_piece_lines = (bytes / k / 14).max(2);
    (0..k)
        .map(|p| {
            let mut s = String::new();
            for i in 0..per_piece_lines {
                // Repeat the boundary word between adjacent pieces.
                let word = if i == 0 && p > 0 {
                    format!("w{:04}", (p - 1) * per_piece_lines + per_piece_lines - 1)
                } else {
                    format!("w{:04}", p * per_piece_lines + i)
                };
                s.push_str(&format!("{:>7} {word}\n", (i % 9) + 1));
            }
            Bytes::from(s)
        })
        .collect()
}

/// Plain text pieces for the concat comparison.
fn text_pieces(k: usize, bytes: usize) -> Vec<Bytes> {
    let per = bytes / k;
    (0..k)
        .map(|p| {
            let mut s = String::new();
            while s.len() < per {
                s.push_str(&format!("piece {p} line {}\n", s.len()));
            }
            Bytes::from(s)
        })
        .collect()
}

fn strategies() -> [(CombineStrategy, &'static str); 3] {
    [
        (CombineStrategy::Flat, "flat"),
        (CombineStrategy::TreeFold, "tree"),
        (CombineStrategy::FoldLeft, "fold_left"),
    ]
}

fn bench_combine_strategies(c: &mut Criterion) {
    const BYTES: usize = 512 * 1024;

    let concat = Candidate::rec(RecOp::Concat);
    let mut group = c.benchmark_group("combine_strategy/concat");
    group.throughput(Throughput::Bytes(BYTES as u64));
    group.sample_size(20);
    for k in [4usize, 16, 64] {
        let pieces = text_pieces(k, BYTES);
        for (strategy, name) in strategies() {
            group.bench_function(format!("{name}_k{k}"), |b| {
                b.iter(|| {
                    combine_all_with(strategy, &concat, black_box(&pieces), &NoRunEnv)
                        .unwrap()
                        .len()
                })
            });
        }
    }
    group.finish();

    let stitch2 = Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
    let mut group = c.benchmark_group("combine_strategy/stitch2");
    group.throughput(Throughput::Bytes(BYTES as u64));
    group.sample_size(20);
    for k in [4usize, 16, 64] {
        let pieces = counted_pieces(k, BYTES);
        for (strategy, name) in strategies() {
            group.bench_function(format!("{name}_k{k}"), |b| {
                b.iter(|| {
                    combine_all_with(strategy, &stitch2, black_box(&pieces), &NoRunEnv)
                        .unwrap()
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_combine_strategies);
criterion_main!(benches);
