//! End-to-end execution of the Figure 1 word-frequency pipeline: serial
//! baseline versus the planned parallel pipeline at several worker counts.
//! Wall-clock here is real single-host execution time (total work); the
//! virtual speedup tables come from the `table*` binaries instead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kq_coreutils::ExecContext;
use kq_pipeline::exec::{run_parallel_measured, run_serial};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::SynthesisConfig;
use kq_workloads::inputs::gutenberg_text;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_wf(c: &mut Criterion) {
    let input = gutenberg_text(256 * 1024, 21);
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", input.clone());
    let env: HashMap<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
    let script = parse_script(
        r"cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c | sort -rn",
        &env,
    )
    .unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let cut = input[..48 * 1024]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(input.len());
    let plan = planner.plan(&script, &ctx, &input[..cut]);

    let mut group = c.benchmark_group("wf_pipeline_256KB");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| run_serial(black_box(&script), &ctx).unwrap().output.len())
    });
    for w in [4usize, 16] {
        group.bench_function(format!("parallel_w{w}"), |b| {
            b.iter(|| {
                run_parallel_measured(black_box(&script), &plan, &ctx, w, true)
                    .unwrap()
                    .output
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wf);
criterion_main!(benches);
