//! The synthesis engine benchmark: cold serial synthesis vs cold parallel
//! synthesis (4 workers) vs warm-cache planning, over the corpus's unique
//! stdin-reading commands — the three regimes the parallel synthesis
//! engine distinguishes.
//!
//! * `cold_serial` — every unique command synthesized from scratch with
//!   `workers = 1` (the pre-engine behaviour, and the baseline the other
//!   two must beat);
//! * `cold_parallel_w4` — the same work with the observe/filter phases
//!   and the per-command fan-out on a 4-worker pool. Reports are
//!   byte-identical to serial (asserted here per iteration); the win is
//!   wall clock only, so expect parity on a single-core host and the
//!   speedup on multicore;
//! * `warm_cache` — a `Planner` resolving every command out of a
//!   pre-written on-disk combiner store (load + validate-on-hit, zero
//!   synthesis rounds), the repeat-invocation regime.
//!
//! `KQ_SYNTH_BENCH_COMMANDS` caps how many unique commands each iteration
//! covers (default 12 — enough spread to be representative while keeping
//! calibration runs sane; raise it to sweep the full corpus).

use criterion::{criterion_group, criterion_main, Criterion};
use kq_coreutils::{parse_command, Command, ExecContext};
use kq_pipeline::cache::{cache_key, CombinerCache};
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_synth::{synthesize, SynthesisConfig};
use std::hint::black_box;

/// The corpus's unique stdin-reading command lines, first-appearance
/// order, deduplicated by normalized cache signature.
fn unique_commands() -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    for script in kq_workloads::corpus() {
        let ctx = ExecContext::default();
        let env = kq_workloads::setup(script, &ctx, &kq_workloads::Scale { input_bytes: 4_000 }, 1);
        let Ok(parsed) = parse_script(script.text, &env) else {
            continue;
        };
        for statement in &parsed.statements {
            for stage in &statement.stages {
                if !stage.command.reads_stdin() {
                    continue;
                }
                // A handful of displays don't re-quote into parseable
                // lines (e.g. a bare `grep "`); skip those.
                if parse_command(&stage.command.display()).is_err() {
                    continue;
                }
                let key = cache_key(&stage.command);
                if !seen.contains(&key) {
                    seen.push(key);
                    lines.push(stage.command.display());
                }
            }
        }
    }
    lines
}

fn command_cap() -> usize {
    std::env::var("KQ_SYNTH_BENCH_COMMANDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

fn config(workers: usize) -> SynthesisConfig {
    SynthesisConfig {
        workers,
        ..SynthesisConfig::default()
    }
}

fn bench_synth_engine(c: &mut Criterion) {
    let lines = unique_commands();
    let cap = command_cap().min(lines.len());
    let commands: Vec<Command> = lines[..cap]
        .iter()
        .map(|l| parse_command(l).expect("corpus command parses"))
        .collect();
    eprintln!(
        "synth_engine: {} of {} unique corpus commands",
        commands.len(),
        lines.len()
    );

    let mut group = c.benchmark_group("synth_engine");
    group.sample_size(10);

    for (name, workers) in [("cold_serial", 1usize), ("cold_parallel_w4", 4)] {
        let config = config(workers);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut observations = 0usize;
                for command in &commands {
                    let ctx = ExecContext::default();
                    let report = synthesize(black_box(command), &ctx, &config);
                    observations += report.observations;
                }
                observations
            })
        });
    }

    // Warm store: synthesize everything once into an on-disk cache, then
    // measure repeat "planning" — open the store and resolve every
    // command through lookup + validate-on-hit.
    let cache_path = std::env::temp_dir().join(format!("kq-synth-bench-{}", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    {
        let warm_config = config(1);
        let mut planner = Planner::with_cache(
            warm_config.clone(),
            CombinerCache::open(&cache_path, &warm_config),
        );
        let ctx = ExecContext::default();
        for command in &commands {
            planner.combiner_for(command, &ctx);
        }
        planner.save_cache().expect("cache write");
    }
    group.bench_function("warm_cache", |b| {
        let warm_config = config(1);
        b.iter(|| {
            let mut planner = Planner::with_cache(
                warm_config.clone(),
                CombinerCache::open(&cache_path, &warm_config),
            );
            let ctx = ExecContext::default();
            let mut resolved = 0usize;
            for command in &commands {
                if planner.combiner_for(black_box(command), &ctx).is_some() {
                    resolved += 1;
                }
            }
            assert_eq!(
                planner.reports.len(),
                0,
                "warm pass must not synthesize anything"
            );
            resolved
        })
    });
    group.finish();
    std::fs::remove_file(&cache_path).ok();
}

criterion_group!(benches, bench_synth_engine);
criterion_main!(benches);
