//! Overhead guard for the tracing plane: instrumentation must be free
//! when no [`kq_trace::TraceSession`] is live, and cheap when one is.
//!
//! Two measurements, persisted to `BENCH_trace.json` at the repo root:
//!
//! * **Probe cost, tracing off** — a tight loop over a fully-built span
//!   (`span(..).si(..).seq(..).v(..).done()`) with no session. This is
//!   the price every instrumentation point in the executors pays on a
//!   normal run: one relaxed atomic load and a branch. Asserted to stay
//!   in the single-digit-nanosecond range.
//! * **Dataflow run, off vs on** — the multi-statement dataflow script
//!   from `dataflow_exec.rs`'s mold, run with and without a live session
//!   (session start/finish and record collection excluded from the timed
//!   region, as a real `--trace-out` run pays them once, not per chunk).
//!   The enabled/disabled median ratio is asserted `< 1.05`.
//!
//! `KQ_BENCH_QUICK=1` shrinks the input to 1 MiB, takes one sample, and
//! skips the assertions (the CI smoke checks the plumbing, not the
//! noise-sensitive thresholds). `KQ_TRACE_BENCH_KB` overrides the input
//! size; `KQ_BENCH_OUT` overrides the output path.

use kq_coreutils::ExecContext;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const CHUNK_BYTES: usize = 64 * 1024;

/// Four statements: a fold-heavy frequency pipeline checkpointed to a
/// redirect, two independent analyses, and a reader of the redirect —
/// enough graph nodes that per-task spans dominate the record stream.
const SCRIPT: &str = "cat /in.txt | tr A-Z a-z | sort | uniq -c | sort -rn > /out/freq\n\
                      cat /in.txt | cut -d ' ' -f 1 | sort -u | wc -l\n\
                      cat /in.txt | grep dog | wc -l\n\
                      cat /out/freq | head -n 10";

fn quick_mode() -> bool {
    std::env::var("KQ_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn input_bytes() -> usize {
    let kb = std::env::var("KQ_TRACE_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick_mode() { 1024 } else { 16 * 1024 });
    kb * 1024
}

/// Mixed-case word lines, ~24 bytes each, deterministic.
fn make_input(bytes: usize) -> String {
    let words = ["Apple", "dog", "CAT", "bird", "Fox", "wolf", "Pear", "yak"];
    let mut s = String::with_capacity(bytes + 64);
    let mut i = 0usize;
    while s.len() < bytes {
        s.push_str(&format!(
            "{} {} {:04}\n",
            words[i % words.len()],
            words[(i * 7 + 3) % words.len()],
            (i * 2654435761) % 9973
        ));
        i += 1;
    }
    s
}

fn fresh_ctx(input: &str) -> ExecContext {
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", input);
    ctx
}

/// Runs `routine` (setup excluded: the closure times itself) `n` times and
/// returns the median duration.
fn median_of(n: usize, mut routine: impl FnMut() -> Duration) -> (Duration, usize) {
    let mut samples: Vec<Duration> = (0..n).map(|_| routine()).collect();
    samples.sort();
    (samples[samples.len() / 2], samples.len())
}

/// Per-call cost of a disabled instrumentation point, in nanoseconds.
fn probe_cost_off_ns() -> f64 {
    assert!(!kq_trace::enabled(), "a session leaked into the bench");
    let iters: u64 = if quick_mode() { 1_000_000 } else { 20_000_000 };
    let t0 = Instant::now();
    for i in 0..iters {
        kq_trace::span("bench", "probe")
            .si(0)
            .seq(i as usize)
            .v(i as f64)
            .done();
    }
    let dt = t0.elapsed();
    std::hint::black_box(iters);
    dt.as_nanos() as f64 / iters as f64
}

fn main() {
    let input = make_input(input_bytes());
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(SCRIPT, &env).unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let cut = input[..input.len().min(16_384)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(input.len());
    let plan = planner.plan(&script, &fresh_ctx(&input), &input[..cut]);
    let opts = DataflowOptions {
        workers: WORKERS,
        chunk: ChunkSizing::Fixed(CHUNK_BYTES),
        queue: QueueCredit::Fixed(4),
        fuse_streamable: true,
        spill: None,
    };

    let probe_ns = probe_cost_off_ns();
    println!("trace_overhead/probe_off             {probe_ns:>9.2} ns/call");

    // One untimed warmup so the off/on comparison doesn't charge cold
    // caches and first-touch page faults to whichever side runs first.
    {
        let ctx = fresh_ctx(&input);
        let r = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
        std::hint::black_box(r.output.len());
    }

    let n = if quick_mode() { 1 } else { 9 };
    let (off, off_samples) = median_of(n, || {
        let ctx = fresh_ctx(&input);
        let t0 = Instant::now();
        let r = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
        let dt = t0.elapsed();
        std::hint::black_box(r.output.len());
        dt
    });
    println!(
        "trace_overhead/dataflow_off          {:>9.2} ms  ({off_samples} samples)",
        off.as_secs_f64() * 1e3
    );

    let mut record_count = 0usize;
    let (on, on_samples) = median_of(n, || {
        let ctx = fresh_ctx(&input);
        let session = kq_trace::TraceSession::start();
        let t0 = Instant::now();
        let r = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
        let dt = t0.elapsed();
        record_count = session.finish().len();
        std::hint::black_box(r.output.len());
        dt
    });
    println!(
        "trace_overhead/dataflow_on           {:>9.2} ms  ({on_samples} samples, {record_count} records)",
        on.as_secs_f64() * 1e3
    );

    let ratio = on.as_secs_f64() / off.as_secs_f64();
    println!("trace_overhead/enabled_over_disabled {ratio:>9.3}x");

    // Hand-rolled JSON: names and floats only, nothing needing escaping.
    let json = format!(
        "{{\n  \"input_bytes\": {},\n  \"workers\": {WORKERS},\n  \"chunk_bytes\": {CHUNK_BYTES},\n  \
         \"probe_off_ns\": {probe_ns:.3},\n  \
         \"dataflow_off_ms\": {:.3},\n  \"dataflow_on_ms\": {:.3},\n  \
         \"records_per_run\": {record_count},\n  \"enabled_over_disabled\": {ratio:.4}\n}}\n",
        input.len(),
        off.as_secs_f64() * 1e3,
        on.as_secs_f64() * 1e3,
    );
    let out = std::env::var("KQ_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_trace.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    if !quick_mode() {
        // Disabled probes must stay effectively free (an atomic load and a
        // branch — single-digit ns; the bound leaves room for CI jitter).
        assert!(
            probe_ns < 25.0,
            "disabled instrumentation point costs {probe_ns:.1} ns/call"
        );
        // A live session may cost at most ~5% of dataflow wall time.
        assert!(
            ratio < 1.05,
            "tracing-enabled dataflow run is {ratio:.3}x the disabled run"
        );
        assert!(record_count > 50, "trace suspiciously small");
    }
}
