//! Bounded-memory sort: peak RSS of a big dataflow `sort` with and
//! without a `--spill-mb` budget, persisted to `BENCH_spill.json`.
//!
//! The point of spilling is a *memory* bound, not speed, so the headline
//! numbers here are `VmHWM` figures: an in-memory fold holds every
//! sorted run on the heap until the final merge (peak ~ several × input),
//! while a budgeted fold writes runs to temp files and maps them back, so
//! its peak stays O(budget + merge window) regardless of input size.
//!
//! `VmHWM` is a monotonic per-process high-water mark, so one process
//! cannot measure two configurations — the harness re-executes itself as
//! a fresh subprocess per configuration (`KQ_SPILL_CHILD`), each mapping
//! the same on-disk input (never heap-copying it) and reporting its own
//! peak plus an output checksum on stdout. The parent asserts the
//! checksums agree across configurations and against the serial oracle,
//! then writes the JSON.
//!
//! Input defaults to 256 MiB with a 64 MiB budget (`KQ_BENCH_QUICK=1`
//! shrinks to 8 MiB / 2 MiB for the CI smoke; `KQ_SPILL_BENCH_KB` /
//! `KQ_SPILL_BUDGET_KB` override). `KQ_BENCH_OUT` overrides the output
//! path.

use kq_coreutils::ExecContext;
use kq_io::{read_path_text, IngestOptions, MmapMode};
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, DataflowOptions};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

const SCRIPT: &str = "cat /in.txt | sort";
const WORKERS: usize = 4;
const CHUNK_BYTES: usize = 1 << 20;

fn quick_mode() -> bool {
    std::env::var("KQ_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn input_bytes() -> usize {
    let kb = std::env::var("KQ_SPILL_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick_mode() { 8 * 1024 } else { 256 * 1024 });
    kb * 1024
}

fn budget_bytes() -> usize {
    let kb = std::env::var("KQ_SPILL_BUDGET_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick_mode() { 2 * 1024 } else { 64 * 1024 });
    kb * 1024
}

/// Writes the benchmark input file once: ~32-byte lines with heavily
/// repeated keys and a deterministic pseudo-random tail, unsorted.
fn write_input(path: &Path, bytes: usize) {
    use std::io::Write;
    let f = std::fs::File::create(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut w = std::io::BufWriter::new(f);
    let mut i = 0usize;
    let mut written = 0usize;
    while written < bytes {
        let line = format!(
            "key {:03} item {:07} tail {:04}\n",
            (i * 131) % 499,
            (i * 2654435761) % 9999991,
            i % 7919
        );
        written += line.len();
        w.write_all(line.as_bytes()).unwrap();
        i += 1;
    }
    w.into_inner().unwrap().sync_all().unwrap();
}

/// Peak resident set of this process so far, from /proc (0 elsewhere).
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("VmHWM:"))
                .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        })
        .unwrap_or(0)
}

/// FNV-1a over the output — a checksum the parent can compare across
/// subprocesses without shipping hundreds of MiB through a pipe.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One measured configuration, run in a fresh subprocess: maps the input,
/// plans and runs the dataflow sort (with or without a spill budget), and
/// prints `CHILD <vm_hwm_kb> <millis> <runs_spilled> <checksum>`.
fn run_child(input_path: &str, budget: Option<usize>) {
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(SCRIPT, &env).unwrap();
    let ctx = ExecContext::default();
    let mapped = read_path_text(input_path, &IngestOptions::with_mode(MmapMode::On))
        .unwrap_or_else(|e| panic!("{input_path}: {e}"));
    let sample_cut = mapped.as_str()[..mapped.len().min(16_384)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let sample = mapped.as_str()[..sample_cut].to_owned();
    ctx.vfs.write("/in.txt", mapped);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, &sample);
    let opts = DataflowOptions {
        workers: WORKERS,
        chunk_bytes: CHUNK_BYTES,
        queue_depth: 4,
        fuse_streamable: true,
        spill: budget.map(|budget_bytes| kq_dsl::SpillPolicy {
            budget_bytes,
            dir: None,
        }),
    };
    let t0 = Instant::now();
    let r = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
    let millis = t0.elapsed().as_millis();
    // Peak RSS is read *before* the checksum walk: scanning the mapped
    // merge output pages it all back in, which is exactly the residency
    // the spilling run avoided during the sort itself.
    let peak = vm_hwm_kb();
    let spilled: u64 = r
        .timings
        .statements
        .iter()
        .flatten()
        .filter_map(|t| t.spill)
        .map(|sp| sp.runs_spilled)
        .sum();
    println!(
        "CHILD {peak} {millis} {spilled} {:016x}",
        fnv1a(r.output.as_bytes())
    );
}

struct ChildReport {
    vm_hwm_kb: u64,
    millis: u64,
    runs_spilled: u64,
    checksum: String,
}

/// Re-executes this binary with `KQ_SPILL_CHILD` set and parses its
/// report line.
fn spawn_child(config: &str, input_path: &Path) -> ChildReport {
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .env("KQ_SPILL_CHILD", config)
        .env("KQ_SPILL_INPUT", input_path)
        .output()
        .expect("spawn spill bench child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child {config} failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = stdout
        .lines()
        .find_map(|l| l.strip_prefix("CHILD "))
        .unwrap_or_else(|| panic!("child {config} printed no report: {stdout}"));
    let fields: Vec<&str> = report.split_whitespace().collect();
    assert_eq!(fields.len(), 4, "malformed child report: {report}");
    ChildReport {
        vm_hwm_kb: fields[0].parse().unwrap(),
        millis: fields[1].parse().unwrap(),
        runs_spilled: fields[2].parse().unwrap(),
        checksum: fields[3].to_owned(),
    }
}

fn main() {
    if let Ok(config) = std::env::var("KQ_SPILL_CHILD") {
        let input = std::env::var("KQ_SPILL_INPUT").expect("KQ_SPILL_INPUT");
        let budget = match config.as_str() {
            "in_memory" => None,
            "spill" => Some(budget_bytes()),
            other => panic!("unknown child config {other:?}"),
        };
        run_child(&input, budget);
        return;
    }

    let bytes = input_bytes();
    let budget = budget_bytes();
    let input_path: PathBuf =
        std::env::temp_dir().join(format!("kq-spill-bench-{}.txt", std::process::id()));
    write_input(&input_path, bytes);

    // Serial oracle on a small prefix-independent check would not cover
    // the full input; instead checksum the full serial sort (heap-bound,
    // but this is the parent process — its RSS is not measured).
    let serial_sum = {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(SCRIPT, &env).unwrap();
        let ctx = ExecContext::default();
        let mapped = read_path_text(&input_path, &IngestOptions::with_mode(MmapMode::On)).unwrap();
        ctx.vfs.write("/in.txt", mapped);
        let r = run_serial(&script, &ctx).unwrap();
        format!("{:016x}", fnv1a(r.output.as_bytes()))
    };

    let in_memory = spawn_child("in_memory", &input_path);
    let spill = spawn_child("spill", &input_path);
    std::fs::remove_file(&input_path).ok();

    assert_eq!(
        in_memory.checksum, serial_sum,
        "in-memory dataflow sort diverged from serial"
    );
    assert_eq!(
        spill.checksum, serial_sum,
        "spilled dataflow sort diverged from serial"
    );
    assert_eq!(in_memory.runs_spilled, 0, "unbudgeted run touched disk");
    assert!(spill.runs_spilled > 0, "budgeted run never spilled");

    for (name, r) in [("in_memory", &in_memory), ("spill", &spill)] {
        println!(
            "{:<28} peak RSS: {:>7} MiB  ({} ms, {} run(s) spilled)",
            format!("spill_fold/{name}"),
            r.vm_hwm_kb / 1024,
            r.millis,
            r.runs_spilled
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"input_bytes\": {bytes},\n"));
    json.push_str(&format!("  \"budget_bytes\": {budget},\n"));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"chunk_bytes\": {CHUNK_BYTES},\n"));
    json.push_str("  \"benches\": {\n");
    let rows = [("in_memory", &in_memory), ("spill", &spill)];
    for (i, (name, r)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{\"vm_hwm_kb\": {}, \"millis\": {}, \"runs_spilled\": {}}}{comma}\n",
            r.vm_hwm_kb, r.millis, r.runs_spilled
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = std::env::var("KQ_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_spill.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
