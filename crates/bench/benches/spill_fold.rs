//! Bounded-memory barrier folds: peak RSS of a big dataflow `sort`
//! (merge fold) and `uniq -c` (counter fold) with and without a
//! `--spill-mb` budget, persisted to `BENCH_spill.json`.
//!
//! The point of spilling is a *memory* bound, not speed, so the headline
//! numbers here are `VmHWM` figures: an in-memory fold holds every
//! sorted run (or counter-slot group) on the heap until the final merge
//! (peak ~ several × input), while a budgeted fold writes runs to temp
//! files and maps them back, so its peak stays O(budget + merge window)
//! regardless of input size. The counter configurations use a
//! distinct-heavy input (`uniq -c` output ~ input size), the worst case
//! for an accumulator that once grew on the heap regardless of budget.
//!
//! `VmHWM` is a monotonic per-process high-water mark, so one process
//! cannot measure two configurations — the harness re-executes itself as
//! a fresh subprocess per configuration (`KQ_SPILL_CHILD`), each mapping
//! the same on-disk input (never heap-copying it) and reporting its own
//! peak plus an output checksum on stdout. The parent asserts the
//! checksums agree across configurations and against the serial oracle,
//! then writes the JSON.
//!
//! Input defaults to 256 MiB with a 64 MiB budget (`KQ_BENCH_QUICK=1`
//! shrinks to 8 MiB / 2 MiB for the CI smoke; `KQ_SPILL_BENCH_KB` /
//! `KQ_SPILL_BUDGET_KB` override). `KQ_BENCH_OUT` overrides the output
//! path.

use kq_coreutils::ExecContext;
use kq_io::{read_path_text, IngestOptions, MmapMode};
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

const SORT_SCRIPT: &str = "cat /in.txt | sort";
const COUNTER_SCRIPT: &str = "cat /in.txt | uniq -c";
const WORKERS: usize = 4;
const CHUNK_BYTES: usize = 1 << 20;

fn quick_mode() -> bool {
    std::env::var("KQ_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn input_bytes() -> usize {
    let kb = std::env::var("KQ_SPILL_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick_mode() { 8 * 1024 } else { 256 * 1024 });
    kb * 1024
}

fn budget_bytes() -> usize {
    let kb = std::env::var("KQ_SPILL_BUDGET_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick_mode() { 2 * 1024 } else { 64 * 1024 });
    kb * 1024
}

/// Writes the benchmark input file once: ~32-byte lines with heavily
/// repeated keys and a deterministic pseudo-random tail, unsorted.
fn write_input(path: &Path, bytes: usize) {
    use std::io::Write;
    let f = std::fs::File::create(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut w = std::io::BufWriter::new(f);
    let mut i = 0usize;
    let mut written = 0usize;
    while written < bytes {
        let line = format!(
            "key {:03} item {:07} tail {:04}\n",
            (i * 131) % 499,
            (i * 2654435761) % 9999991,
            i % 7919
        );
        written += line.len();
        w.write_all(line.as_bytes()).unwrap();
        i += 1;
    }
    w.into_inner().unwrap().sync_all().unwrap();
}

/// Peak resident set of this process so far, from /proc (0 elsewhere).
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("VmHWM:"))
                .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        })
        .unwrap_or(0)
}

/// FNV-1a over the output — a checksum the parent can compare across
/// subprocesses without shipping hundreds of MiB through a pipe.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One measured configuration, run in a fresh subprocess: maps the input,
/// plans and runs the dataflow sort (with or without a spill budget), and
/// prints `CHILD <vm_hwm_kb> <millis> <runs_spilled> <checksum>`.
fn run_child(input_path: &str, script_text: &str, budget: Option<usize>) {
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(script_text, &env).unwrap();
    let ctx = ExecContext::default();
    let mapped = read_path_text(input_path, &IngestOptions::with_mode(MmapMode::On))
        .unwrap_or_else(|e| panic!("{input_path}: {e}"));
    let sample_cut = mapped.as_str()[..mapped.len().min(16_384)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let sample = mapped.as_str()[..sample_cut].to_owned();
    ctx.vfs.write("/in.txt", mapped);
    let mut planner = Planner::new(SynthesisConfig::default());
    let plan = planner.plan(&script, &ctx, &sample);
    let opts = DataflowOptions {
        workers: WORKERS,
        chunk: ChunkSizing::Fixed(CHUNK_BYTES),
        queue: QueueCredit::Fixed(4),
        fuse_streamable: true,
        spill: budget.map(|budget_bytes| kq_dsl::SpillPolicy {
            budget_bytes,
            dir: None,
        }),
    };
    let t0 = Instant::now();
    let r = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
    let millis = t0.elapsed().as_millis();
    // Peak RSS is read *before* the checksum walk: scanning the mapped
    // merge output pages it all back in, which is exactly the residency
    // the spilling run avoided during the sort itself.
    let peak = vm_hwm_kb();
    let spilled: u64 = r
        .timings
        .statements
        .iter()
        .flatten()
        .filter_map(|t| t.spill)
        .map(|sp| sp.runs_spilled)
        .sum();
    println!(
        "CHILD {peak} {millis} {spilled} {:016x}",
        fnv1a(r.output.as_bytes())
    );
}

struct ChildReport {
    vm_hwm_kb: u64,
    millis: u64,
    runs_spilled: u64,
    checksum: String,
}

/// Re-executes this binary with `KQ_SPILL_CHILD` set and parses its
/// report line.
fn spawn_child(config: &str, input_path: &Path) -> ChildReport {
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .env("KQ_SPILL_CHILD", config)
        .env("KQ_SPILL_INPUT", input_path)
        .output()
        .expect("spawn spill bench child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child {config} failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = stdout
        .lines()
        .find_map(|l| l.strip_prefix("CHILD "))
        .unwrap_or_else(|| panic!("child {config} printed no report: {stdout}"));
    let fields: Vec<&str> = report.split_whitespace().collect();
    assert_eq!(fields.len(), 4, "malformed child report: {report}");
    ChildReport {
        vm_hwm_kb: fields[0].parse().unwrap(),
        millis: fields[1].parse().unwrap(),
        runs_spilled: fields[2].parse().unwrap(),
        checksum: fields[3].to_owned(),
    }
}

/// Serial-oracle checksum for `script_text` over the on-disk input. Runs
/// in the parent process — its RSS is not measured.
fn serial_checksum(input_path: &Path, script_text: &str) -> String {
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(script_text, &env).unwrap();
    let ctx = ExecContext::default();
    let mapped = read_path_text(input_path, &IngestOptions::with_mode(MmapMode::On)).unwrap();
    ctx.vfs.write("/in.txt", mapped);
    let r = run_serial(&script, &ctx).unwrap();
    format!("{:016x}", fnv1a(r.output.as_bytes()))
}

fn main() {
    if let Ok(config) = std::env::var("KQ_SPILL_CHILD") {
        let input = std::env::var("KQ_SPILL_INPUT").expect("KQ_SPILL_INPUT");
        let (script_text, budget) = match config.as_str() {
            "in_memory" => (SORT_SCRIPT, None),
            "spill" => (SORT_SCRIPT, Some(budget_bytes())),
            "counter_in_memory" => (COUNTER_SCRIPT, None),
            "counter_spill" => (COUNTER_SCRIPT, Some(budget_bytes())),
            other => panic!("unknown child config {other:?}"),
        };
        run_child(&input, script_text, budget);
        return;
    }

    let bytes = input_bytes();
    let budget = budget_bytes();
    let input_path: PathBuf =
        std::env::temp_dir().join(format!("kq-spill-bench-{}.txt", std::process::id()));
    write_input(&input_path, bytes);

    let sort_sum = serial_checksum(&input_path, SORT_SCRIPT);
    let counter_sum = serial_checksum(&input_path, COUNTER_SCRIPT);

    let in_memory = spawn_child("in_memory", &input_path);
    let spill = spawn_child("spill", &input_path);
    let counter_in_memory = spawn_child("counter_in_memory", &input_path);
    let counter_spill = spawn_child("counter_spill", &input_path);
    std::fs::remove_file(&input_path).ok();

    for (name, r, want) in [
        ("in-memory sort", &in_memory, &sort_sum),
        ("spilled sort", &spill, &sort_sum),
        ("in-memory uniq -c", &counter_in_memory, &counter_sum),
        ("spilled uniq -c", &counter_spill, &counter_sum),
    ] {
        assert_eq!(&r.checksum, want, "{name} dataflow diverged from serial");
    }
    for (name, r) in [("sort", &in_memory), ("counter", &counter_in_memory)] {
        assert_eq!(r.runs_spilled, 0, "unbudgeted {name} run touched disk");
    }
    for (name, r) in [("sort", &spill), ("counter", &counter_spill)] {
        assert!(r.runs_spilled > 0, "budgeted {name} run never spilled");
    }
    // The budgeted-RSS contract, asserted at full scale where the margin
    // dwarfs allocator noise: a spilling fold must peak at least
    // input-size/4 below its in-memory twin. (Quick mode's 8 MiB input
    // leaves only a few MiB of headroom, so there the order alone is
    // recorded, not asserted.)
    if bytes >= 64 * 1024 * 1024 {
        let floor_kb = (bytes / 4 / 1024) as u64;
        for (name, heap, disk) in [
            ("sort", &in_memory, &spill),
            ("counter", &counter_in_memory, &counter_spill),
        ] {
            assert!(
                heap.vm_hwm_kb >= disk.vm_hwm_kb + floor_kb,
                "{name}: spilling saved too little RSS \
                 (in-memory {} KiB vs spill {} KiB, want ≥ {floor_kb} KiB apart)",
                heap.vm_hwm_kb,
                disk.vm_hwm_kb
            );
        }
    }

    let rows = [
        ("in_memory", &in_memory),
        ("spill", &spill),
        ("counter_in_memory", &counter_in_memory),
        ("counter_spill", &counter_spill),
    ];
    for (name, r) in rows {
        println!(
            "{:<36} peak RSS: {:>7} MiB  ({} ms, {} run(s) spilled)",
            format!("spill_fold/{name}"),
            r.vm_hwm_kb / 1024,
            r.millis,
            r.runs_spilled
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"input_bytes\": {bytes},\n"));
    json.push_str(&format!("  \"budget_bytes\": {budget},\n"));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"chunk_bytes\": {CHUNK_BYTES},\n"));
    json.push_str("  \"benches\": {\n");
    for (i, (name, r)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{\"vm_hwm_kb\": {}, \"millis\": {}, \"runs_spilled\": {}}}{comma}\n",
            r.vm_hwm_kb, r.millis, r.runs_spilled
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = std::env::var("KQ_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_spill.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
