//! Throughput of the parallel plumbing: line-boundary stream splitting and
//! the k-way sorted merge behind the `merge` combiner.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kq_coreutils::sort::merge_streams;
use kq_stream::split_stream;
use kq_workloads::inputs::gutenberg_text;
use std::hint::black_box;

fn bench_split_merge(c: &mut Criterion) {
    let text = gutenberg_text(1024 * 1024, 11);

    let mut group = c.benchmark_group("split");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(30);
    for w in [2usize, 16] {
        group.bench_function(format!("split_1MB_w{w}"), |b| {
            b.iter(|| split_stream(black_box(&text), w).len())
        });
    }
    group.finish();

    // Pre-sorted pieces for the merge benchmark.
    let mut lines: Vec<&str> = text.lines().collect();
    lines.sort_unstable();
    let sorted: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let mut group = c.benchmark_group("merge");
    group.throughput(Throughput::Bytes(sorted.len() as u64));
    group.sample_size(20);
    for w in [2usize, 8, 16] {
        let pieces: Vec<String> = {
            // Split the sorted stream round-robin so every piece stays
            // sorted (the shape parallel sort instances produce).
            let mut buckets = vec![String::new(); w];
            for (i, line) in sorted.lines().enumerate() {
                buckets[i % w].push_str(line);
                buckets[i % w].push('\n');
            }
            buckets
        };
        let refs: Vec<&str> = pieces.iter().map(String::as_str).collect();
        group.bench_function(format!("merge_1MB_w{w}"), |b| {
            b.iter(|| merge_streams(&[], black_box(&refs)).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split_merge);
criterion_main!(benches);
