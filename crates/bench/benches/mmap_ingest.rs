//! Heap read versus mmap for file ingest: the O(file) / O(1) split.
//!
//! Heap ingest (`MmapMode::Off`) pays one full copy before the first
//! chunk can move — its cost scales linearly with file size. Mapped
//! ingest (`MmapMode::On`) is a syscall plus page-table setup: no byte is
//! copied or touched, so its cost is flat across file sizes (the
//! `mapped_*` series should be size-independent and several orders of
//! magnitude below `heap_*` at the top size).
//!
//! `first_chunk/*` additionally measures ingest-to-first-chunk latency —
//! the time until a streaming pipeline can start — where the mapped path
//! only faults the first chunk's pages in.
//!
//! Run with `cargo bench -p kq-bench --bench mmap_ingest`
//! (`KQ_BENCH_QUICK=1` for the CI smoke) and record the numbers in
//! CHANGES.md when they move.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kq_io::{read_path, IngestOptions, MmapMode};
use kq_workloads::inputs::gutenberg_text;
use std::hint::black_box;
use std::path::PathBuf;

const MIB: usize = 1024 * 1024;

/// Writes a corpus-shaped file of `mib` MiB once, returning its path (the
/// bench iterations only read it).
fn corpus_file(dir: &std::path::Path, mib: usize) -> PathBuf {
    let path = dir.join(format!("ingest-{mib}mib.txt"));
    if !path.is_file() {
        std::fs::write(&path, gutenberg_text(mib * MIB, 42)).unwrap();
    }
    path
}

fn bench_ingest(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("kq-mmap-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    for mib in [4usize, 16, 64] {
        let path = corpus_file(&dir, mib);
        group.throughput(Throughput::Bytes((mib * MIB) as u64));
        group.bench_function(format!("heap_{mib}MiB"), |b| {
            b.iter(|| {
                read_path(black_box(&path), &IngestOptions::with_mode(MmapMode::Off))
                    .unwrap()
                    .len()
            })
        });
        group.bench_function(format!("mapped_{mib}MiB"), |b| {
            b.iter(|| {
                read_path(black_box(&path), &IngestOptions::with_mode(MmapMode::On))
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();

    // Ingest-to-first-chunk: how long before a streaming pipeline has its
    // first 64 KiB line-aligned chunk in hand.
    let mut group = c.benchmark_group("first_chunk");
    group.sample_size(10);
    for mode in [MmapMode::Off, MmapMode::On] {
        let path = corpus_file(&dir, 64);
        group.bench_function(format!("{mode}_64MiB"), |b| {
            b.iter(|| {
                let bytes = read_path(black_box(&path), &IngestOptions::with_mode(mode)).unwrap();
                bytes.chunks(64 * 1024).next().map(|c| c.len())
            })
        });
    }
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
