//! String path versus Bytes path for the parallel data plane.
//!
//! Before the zero-copy refactor, every stage boundary copied the stream:
//! `split_stream` returned `&str` views that executors immediately
//! re-owned (`to_owned` per piece — O(bytes)), and chunk hand-off through
//! the worker channel copied each chunk. The `Bytes` data plane replaces
//! all of that with refcounted slices: splitting N bytes into k pieces
//! allocates O(k).
//!
//! Three measurements pin the claim:
//!
//! * `split/*` — the legacy copy-per-piece split versus `Bytes::split_stream`
//!   on the same 64 MiB stream;
//! * `split_scaling/*` — Bytes split cost across 1→64 MiB inputs (flat when
//!   split is pointer arithmetic, linear when it copies);
//! * `chunked_exec/*` — the chunked executor's piece setup (split + chunk
//!   hand-off + gather) in both regimes.
//!
//! Run with `cargo bench --bench bytes_dataplane` and record the numbers
//! in CHANGES.md when they move.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kq_stream::{concat_bytes, Bytes};
use kq_workloads::inputs::gutenberg_text;
use std::hint::black_box;

const MIB: usize = 1024 * 1024;

/// The pre-refactor piece setup: line-aligned split returning borrowed
/// views, then one owned copy per piece (what `run_parallel` did before
/// the Bytes data plane).
fn legacy_split_owned(input: &str, k: usize) -> Vec<String> {
    kq_stream::split_stream(input, k)
        .into_iter()
        .map(str::to_owned)
        .collect()
}

fn legacy_chunks_owned(input: &str, target: usize) -> Vec<String> {
    kq_stream::split_chunks(input, target)
        .into_iter()
        .map(str::to_owned)
        .collect()
}

fn bench_split(c: &mut Criterion) {
    let text = gutenberg_text(64 * MIB, 11);
    let shared = Bytes::from(text.as_str());

    let mut group = c.benchmark_group("split");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(20);
    for k in [8usize, 64] {
        group.bench_function(format!("string_64MiB_k{k}"), |b| {
            b.iter(|| legacy_split_owned(black_box(&text), k).len())
        });
        group.bench_function(format!("bytes_64MiB_k{k}"), |b| {
            b.iter(|| black_box(&shared).split_stream(k).len())
        });
    }
    group.finish();
}

fn bench_split_scaling(c: &mut Criterion) {
    // The acceptance check: Bytes split cost must be independent of input
    // size (O(k) allocations; the boundary scan is the only size-linear
    // term and it touches no payload). The String path is O(bytes).
    let mut group = c.benchmark_group("split_scaling");
    group.sample_size(20);
    for mib in [1usize, 16, 64] {
        let text = gutenberg_text(mib * MIB, 7);
        let shared = Bytes::from(text.as_str());
        group.bench_function(format!("bytes_{mib}MiB_k16"), |b| {
            b.iter(|| black_box(&shared).split_stream(16).len())
        });
        group.bench_function(format!("string_{mib}MiB_k16"), |b| {
            b.iter(|| legacy_split_owned(black_box(&text), 16).len())
        });
    }
    group.finish();
}

fn bench_chunked_exec(c: &mut Criterion) {
    // Chunked-executor piece plumbing: cut the stream into 64 KiB chunks,
    // hand each through a pass-through stage, and gather the outputs in
    // order — the data movement run_chunked performs around the real
    // command work. The legacy path owns every chunk and regathers with
    // String concat; the Bytes path moves refcounted handles and regathers
    // through a rope.
    let text = gutenberg_text(64 * MIB, 23);
    let shared = Bytes::from(text.as_str());
    let chunk = 64 * 1024;

    let mut group = c.benchmark_group("chunked_exec");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(10);
    group.bench_function("string_64MiB_64KiB_chunks", |b| {
        b.iter(|| {
            let outputs: Vec<String> = legacy_chunks_owned(black_box(&text), chunk);
            outputs.concat().len()
        })
    });
    group.bench_function("bytes_64MiB_64KiB_chunks", |b| {
        b.iter(|| {
            let outputs: Vec<Bytes> = black_box(&shared).split_chunks(chunk);
            concat_bytes(&outputs).len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_split,
    bench_split_scaling,
    bench_chunked_exec
);
criterion_main!(benches);
