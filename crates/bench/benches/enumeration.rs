//! Candidate-space enumeration cost for the three per-command delimiter
//! tiers (Table 10's 2 700 / 26 404 / 110 444 candidate spaces).

use criterion::{criterion_group, criterion_main, Criterion};
use kq_dsl::{enumerate_candidates, Delim, EnumConfig};
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(20);
    for n_delims in 1..=3usize {
        let config = EnumConfig {
            delims: Delim::ALL[..n_delims].to_vec(),
            ..EnumConfig::default()
        };
        let (cands, breakdown) = enumerate_candidates(&config);
        assert_eq!(cands.len(), breakdown.total());
        group.bench_function(format!("delims_{n_delims}_{}", breakdown.total()), |b| {
            b.iter(|| enumerate_candidates(black_box(&config)).0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
